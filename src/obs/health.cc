#include "obs/health.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/headers.h"
#include "obs/json.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "sim/log.h"

namespace rosebud::obs {

namespace {

/// In-flight latency table geometry. The live population is bounded by the
/// pipeline's packet slots (rpu_count * 32) plus queue depths — a few
/// hundred — so 4096 slots keep the load factor comfortably below 10%.
constexpr size_t kInflightSlots = 4096;
constexpr size_t kProbeLimit = 16;

size_t
slot_hash(uint64_t key) {
    return size_t((key * 0x9E3779B97F4A7C15ull) >> 32);
}

uint16_t
clamp16(size_t v) {
    return uint16_t(std::min<size_t>(v, 0xFFFF));
}

std::string
trim(const std::string& s) {
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(uint8_t(s[b]))) ++b;
    while (e > b && std::isspace(uint8_t(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

}  // namespace

// ---------------------------------------------------------------------------
// Flow classification

const char*
flow_class_name(FlowClass c) {
    switch (c) {
    case FlowClass::kTcp: return "tcp";
    case FlowClass::kUdp: return "udp";
    case FlowClass::kOther: return "other";
    case FlowClass::kClassCount: break;
    }
    return "all";
}

FlowClass
classify(const net::Packet& pkt) {
    const auto& d = pkt.data;
    size_t off = pkt.hash_prepended ? 4 : 0;
    // Ethernet(14) + IPv4 header through the protocol byte at offset 23.
    if (d.size() < off + 24) return FlowClass::kOther;
    if (d[off + 12] != 0x08 || d[off + 13] != 0x00) return FlowClass::kOther;
    uint8_t proto = d[off + 23];
    if (proto == net::kIpProtoTcp) return FlowClass::kTcp;
    if (proto == net::kIpProtoUdp) return FlowClass::kUdp;
    return FlowClass::kOther;
}

// ---------------------------------------------------------------------------
// SLO parsing

namespace {

double
latency_unit_to_cycles(const std::string& unit, double v, const std::string& clause) {
    if (unit.empty() || unit == "c" || unit == "cycles") return v;
    if (unit == "ns") return v / sim::kNsPerCycle;
    if (unit == "us") return v * 1e3 / sim::kNsPerCycle;
    if (unit == "ms") return v * 1e6 / sim::kNsPerCycle;
    sim::fatal("parse_slo: unknown latency unit '" + unit + "' in clause '" + clause + "'");
    return 0;
}

}  // namespace

SloSpec
parse_slo(const std::string& text) {
    SloSpec spec;
    spec.text = trim(text);
    std::vector<std::string> clauses;
    std::string cur;
    for (char ch : text) {
        if (ch == ',' || ch == ';') {
            clauses.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    clauses.push_back(cur);

    for (const std::string& raw : clauses) {
        std::string clause = trim(raw);
        if (clause.empty()) continue;

        SloBound b;
        std::string body = clause;
        size_t colon = body.find(':');
        if (colon != std::string::npos) {
            std::string cls = trim(body.substr(0, colon));
            if (cls == "tcp") b.cls = FlowClass::kTcp;
            else if (cls == "udp") b.cls = FlowClass::kUdp;
            else if (cls == "other") b.cls = FlowClass::kOther;
            else if (cls == "all") b.cls = FlowClass::kClassCount;
            else sim::fatal("parse_slo: unknown traffic class '" + cls + "' in clause '" + clause + "'");
            body = trim(body.substr(colon + 1));
        }

        size_t le = body.find("<=");
        if (le == std::string::npos)
            sim::fatal("parse_slo: clause '" + clause + "' has no '<=' comparison");
        std::string metric = trim(body.substr(0, le));
        std::string rhs = trim(body.substr(le + 2));

        bool latency = true;
        if (metric == "latency_p50") b.kind = SloBound::Kind::kLatencyP50;
        else if (metric == "latency_p99") b.kind = SloBound::Kind::kLatencyP99;
        else if (metric == "latency_p999") b.kind = SloBound::Kind::kLatencyP999;
        else if (metric == "drop_rate") { b.kind = SloBound::Kind::kDropRate; latency = false; }
        else sim::fatal("parse_slo: unknown metric '" + metric + "' in clause '" + clause + "'");

        char* end = nullptr;
        double v = std::strtod(rhs.c_str(), &end);
        if (end == rhs.c_str())
            sim::fatal("parse_slo: clause '" + clause + "' has no numeric bound");
        std::string unit = trim(std::string(end));

        if (latency) {
            b.limit = latency_unit_to_cycles(unit, v, clause);
        } else {
            if (unit == "%") v /= 100.0;
            else if (!unit.empty())
                sim::fatal("parse_slo: unknown drop_rate unit '" + unit + "' in clause '" + clause + "'");
            b.limit = v;
        }
        spec.bounds.push_back(b);
        if (spec.bounds.size() > 32)
            sim::fatal("parse_slo: more than 32 clauses");
    }
    return spec;
}

std::string
slo_bound_text(const SloBound& b) {
    std::string out;
    if (b.cls != FlowClass::kClassCount) {
        out += flow_class_name(b.cls);
        out += ": ";
    }
    char buf[64];
    switch (b.kind) {
    case SloBound::Kind::kLatencyP50:
    case SloBound::Kind::kLatencyP99:
    case SloBound::Kind::kLatencyP999: {
        const char* name = b.kind == SloBound::Kind::kLatencyP50    ? "latency_p50"
                           : b.kind == SloBound::Kind::kLatencyP99 ? "latency_p99"
                                                                   : "latency_p999";
        std::snprintf(buf, sizeof(buf), "%s <= %.0fc", name, b.limit);
        break;
    }
    case SloBound::Kind::kDropRate:
        std::snprintf(buf, sizeof(buf), "drop_rate <= %g", b.limit);
        break;
    }
    out += buf;
    return out;
}

// ---------------------------------------------------------------------------
// HealthMonitor lifecycle

HealthMonitor::HealthMonitor(HealthConfig cfg)
    : cfg_(std::move(cfg)), recorder_(cfg_.recorder_capacity) {}

HealthMonitor::~HealthMonitor() {
    if (sys_) detach();
}

void
HealthMonitor::attach(System& sys) {
    if (sys_) detach();
    sys_ = &sys;
    uint64_t now = sys.kernel().now();
    attach_cycle_ = now;

    // Fresh accounting for this attachment.
    ingress_ = egress_ = egress_bytes_ = 0;
    for (auto& d : drops_) d = 0;
    core_faults_ = watchdog_trips_ = slo_violations_ = lost_samples_ = 0;
    lat_all_.clear();
    for (auto& h : lat_cls_) h.clear();
    epoch_all_.clear();
    for (auto& h : epoch_cls_) h.clear();
    for (auto& c : epoch_ingress_) c = 0;
    for (auto& c : epoch_drops_) c = 0;
    epoch_egress_ = 0;
    epoch_start_ = now;
    epoch_deadline_ = now + cfg_.epoch_cycles;
    verdicts_.clear();
    verdicts_.reserve(cfg_.max_verdicts);
    epochs_closed_ = 0;
    recorder_.clear();

    inflight_.assign(kInflightSlots, Inflight{});
    inflight_count_ = 0;

    unsigned n = sys.rpu_count();
    last_activity_.assign(n, now);
    busy_since_.assign(n, now);
    comp_tripped_.assign(n, 0);
    was_faulted_.assign(n, 0);
    for (unsigned i = 0; i < n; ++i) was_faulted_[i] = sys.rpu(i).core_faulted();
    trips_.clear();
    next_check_ = now + cfg_.watchdog.check_interval;
    last_egress_ = now;
    sys_tripped_ = false;

    // Metrics registry: the health layer's own counters plus mirrors of
    // the stats registry and the kernel's backlog probes.
    metrics_ = MetricsRegistry();
    metrics_.add_counter("rosebud_health_ingress_packets_total",
                         "Packets accepted at MAC ingress", "",
                         [this] { return ingress_; });
    metrics_.add_counter("rosebud_health_egress_packets_total",
                         "Packets egressed (wire + host)", "",
                         [this] { return egress_; });
    metrics_.add_counter("rosebud_health_egress_bytes_total",
                         "Wire bytes egressed (incl. FCS/preamble/IFG)", "",
                         [this] { return egress_bytes_; });
    metrics_.add_counter("rosebud_health_dropped_packets_total",
                         "Packets dropped, by drop site", "site=\"mac_rx_fifo\"",
                         [this] { return drops_[unsigned(DropSite::kMacRxFifo)]; });
    metrics_.add_counter("rosebud_health_dropped_packets_total",
                         "Packets dropped, by drop site", "site=\"firmware\"",
                         [this] { return drops_[unsigned(DropSite::kFirmware)]; });
    metrics_.add_counter("rosebud_health_watchdog_trips_total",
                         "Forward-progress watchdog trips", "",
                         [this] { return watchdog_trips_; });
    metrics_.add_counter("rosebud_health_slo_violations_total",
                         "Per-epoch SLO bound violations", "",
                         [this] { return slo_violations_; });
    metrics_.add_counter("rosebud_health_core_faults_total",
                         "RPU core fault transitions observed", "",
                         [this] { return core_faults_; });
    metrics_.add_counter("rosebud_health_lost_latency_samples_total",
                         "Latency samples dropped by in-flight-table pressure", "",
                         [this] { return lost_samples_; });
    metrics_.add_gauge("rosebud_health_inflight_packets",
                       "Packets currently between ingress and egress", "",
                       [this] { return uint64_t(inflight_count_); });
    metrics_.add_gauge("rosebud_health_epochs_closed",
                       "SLO epochs evaluated", "",
                       [this] { return epochs_closed_; });
    const double cycles_to_seconds = sim::kNsPerCycle * 1e-9;
    metrics_.add_histogram("rosebud_packet_latency_seconds",
                           "Ingress-to-egress packet latency", "cls=\"all\"",
                           &lat_all_, cycles_to_seconds);
    for (unsigned c = 0; c < kFlowClassCount; ++c) {
        metrics_.add_histogram("rosebud_packet_latency_seconds",
                               "Ingress-to-egress packet latency",
                               std::string("cls=\"") + flow_class_name(FlowClass(c)) + "\"",
                               &lat_cls_[c], cycles_to_seconds);
    }
    metrics_.set_stats(&sys.stats());
    metrics_.set_kernel(&sys.kernel());

    observer_handle_ = sys.add_packet_observer(
        [this](const char* stage, const net::Packet& pkt, sim::Cycle t) {
            on_stage(stage, pkt, t);
        });
    sys.kernel().set_health_probe(this);
    sys.host().set_reconfig_observer([this](const char* phase, unsigned rpu) {
        recorder_.record_note(FlightEventType::kReconfigPhase,
                              sys_->kernel().now(), phase, uint8_t(rpu));
    });
    sys.host().set_metrics_provider([this](host::MetricsFormat fmt) {
        return metrics_.snapshot(fmt == host::MetricsFormat::kJson
                                     ? MetricsFormat::kJson
                                     : MetricsFormat::kPrometheus);
    });
}

void
HealthMonitor::detach() {
    if (!sys_) return;
    flush_epoch();
    sys_->remove_packet_observer(observer_handle_);
    if (sys_->kernel().health_probe() == this) sys_->kernel().set_health_probe(nullptr);
    sys_->host().set_reconfig_observer({});
    sys_->host().set_metrics_provider({});
    metrics_.set_stats(nullptr);
    metrics_.set_kernel(nullptr);
    sys_ = nullptr;
}

void
HealthMonitor::note_fault(unsigned rpu, const std::string& what) {
    ++core_faults_;
    recorder_.record_note(FlightEventType::kFault,
                          sys_ ? sys_->kernel().now() : 0, what, uint8_t(rpu));
}

// ---------------------------------------------------------------------------
// Per-packet path (hot; must not allocate)

void
HealthMonitor::on_stage(const char* stage, const net::Packet& pkt, sim::Cycle now) {
    switch (stage[0]) {
    case 'm':
        if (std::strcmp(stage, "mac_rx") == 0) {
            note_ingress(pkt, now);
        } else if (std::strcmp(stage, "mac_tx") == 0) {
            note_egress(pkt, now, uint8_t(pkt.out_iface));
        } else if (std::strcmp(stage, "mac_rx_fifo_drop") == 0) {
            note_drop(pkt, now, DropSite::kMacRxFifo);
        }
        break;
    case 'f':
        if (std::strcmp(stage, "fw_send") == 0) {
            note_activity(pkt, now);
        } else if (std::strcmp(stage, "fw_drop") == 0) {
            note_drop(pkt, now, DropSite::kFirmware);
        }
        break;
    case 'h':
        if (std::strcmp(stage, "host_deliver") == 0) note_egress(pkt, now, 0xFF);
        break;
    case 'r':
        // rpu_rx_complete / rpu_egress: descriptor-level liveness.
        if (std::strcmp(stage, "rpu_rx_complete") == 0 ||
            std::strcmp(stage, "rpu_egress") == 0) {
            note_activity(pkt, now);
        }
        break;
    default:
        break;  // lb_assign, rpu_link_dispatch, loopback_reenter: ignored
    }
}

void
HealthMonitor::note_ingress(const net::Packet& pkt, uint64_t now) {
    FlowClass cls = classify(pkt);
    ++ingress_;
    ++epoch_ingress_[unsigned(cls)];
    insert_inflight(pkt.id, now, cls);
    if (cfg_.record_packets) {
        recorder_.record(FlightEventType::kIngress, now, uint8_t(pkt.in_iface),
                         clamp16(pkt.data.size()), pkt.id);
    }
}

void
HealthMonitor::note_egress(const net::Packet& pkt, uint64_t now, uint8_t port) {
    ++egress_;
    ++epoch_egress_;
    egress_bytes_ += pkt.wire_size();
    last_egress_ = now;
    uint32_t lat = 0;
    Inflight e;
    if (erase_inflight(pkt.id, &e)) {
        uint64_t cycles = now - e.cycle;
        lat = uint32_t(std::min<uint64_t>(cycles, 0xFFFFFFFFu));
        lat_all_.record(cycles);
        lat_cls_[e.cls].record(cycles);
        epoch_all_.record(cycles);
        epoch_cls_[e.cls].record(cycles);
    }
    if (cfg_.record_packets) {
        recorder_.record(FlightEventType::kEgress, now, port,
                         clamp16(pkt.data.size()), pkt.id, lat);
    }
}

void
HealthMonitor::note_drop(const net::Packet& pkt, uint64_t now, DropSite site) {
    FlowClass cls = classify(pkt);
    ++drops_[unsigned(site)];
    ++epoch_drops_[unsigned(cls)];
    if (site == DropSite::kMacRxFifo) {
        // Never saw "mac_rx": count it as offered so drop rates have the
        // right denominator.
        ++epoch_ingress_[unsigned(cls)];
    } else {
        Inflight e;
        erase_inflight(pkt.id, &e);
        note_activity(pkt, now);  // the firmware actively dropped it
    }
    if (cfg_.record_packets) {
        recorder_.record(FlightEventType::kDrop, now, uint8_t(site),
                         clamp16(pkt.data.size()), pkt.id);
    }
}

void
HealthMonitor::note_activity(const net::Packet& pkt, uint64_t now) {
    if (pkt.dest_rpu < last_activity_.size()) last_activity_[pkt.dest_rpu] = now;
}

void
HealthMonitor::insert_inflight(uint64_t id, uint64_t now, FlowClass cls) {
    uint64_t key = id + 1;  // 0 marks an empty slot; ids may be 0
    size_t mask = inflight_.size() - 1;
    size_t base = slot_hash(key) & mask;
    size_t oldest = base;
    for (size_t p = 0; p < kProbeLimit; ++p) {
        size_t i = (base + p) & mask;
        Inflight& s = inflight_[i];
        if (s.key == 0 || s.key == key) {
            if (s.key == 0) ++inflight_count_;
            s.key = key;
            s.cycle = now;
            s.cls = uint8_t(cls);
            return;
        }
        if (s.cycle < inflight_[oldest].cycle) oldest = i;
    }
    // Neighborhood full: evict the oldest sample (its latency is lost, the
    // packet is still counted in the aggregate counters).
    ++lost_samples_;
    Inflight& s = inflight_[oldest];
    s.key = key;
    s.cycle = now;
    s.cls = uint8_t(cls);
}

bool
HealthMonitor::erase_inflight(uint64_t id, Inflight* out) {
    uint64_t key = id + 1;
    size_t mask = inflight_.size() - 1;
    size_t base = slot_hash(key) & mask;
    for (size_t p = 0; p < kProbeLimit; ++p) {
        Inflight& s = inflight_[(base + p) & mask];
        if (s.key == key) {
            *out = s;
            s.key = 0;
            --inflight_count_;
            return true;
        }
    }
    ++lost_samples_;
    return false;
}

// ---------------------------------------------------------------------------
// Per-cycle path: watchdog + epoch boundaries

void
HealthMonitor::on_cycle(uint64_t completed) {
    if (completed >= next_check_) {
        next_check_ = completed + cfg_.watchdog.check_interval;
        watchdog_check(completed);
    }
    if (completed >= epoch_deadline_) close_epoch(completed);
}

void
HealthMonitor::watchdog_check(uint64_t now) {
    // Core-fault transitions (rare; polled, not evented, so the health
    // layer needs no hook inside the core).
    unsigned n = unsigned(last_activity_.size());
    for (unsigned i = 0; i < n; ++i) {
        bool f = sys_->rpu(i).core_faulted();
        if (f && !was_faulted_[i]) {
            ++core_faults_;
            recorder_.record_note(FlightEventType::kFault, now,
                                  "core fault (memory protection / illegal op)",
                                  uint8_t(i));
        }
        was_faulted_[i] = f;
    }

    // System-level forward progress: packets are in flight but nothing has
    // egressed for progress_timeout cycles.
    uint64_t egress_ref = std::max(last_egress_, attach_cycle_);
    bool stalled = inflight_count_ > 0 &&
                   now - egress_ref > cfg_.watchdog.progress_timeout;
    if (stalled && !sys_tripped_) {
        sys_tripped_ = true;
        char what[128];
        std::snprintf(what, sizeof(what),
                      "egress silent %llu cycles with %zu packets in flight",
                      (unsigned long long)(now - egress_ref), inflight_count_);
        trip(now, what, "");
    } else if (!stalled) {
        sys_tripped_ = false;
    }

    // Per-component liveness: an RPU holding packets whose firmware shows
    // no descriptor activity.
    for (unsigned i = 0; i < n; ++i) {
        uint32_t occ = sys_->rpu(i).occupancy();
        if (occ == 0) {
            busy_since_[i] = now;
            comp_tripped_[i] = 0;
            continue;
        }
        uint64_t ref = std::max(busy_since_[i], last_activity_[i]);
        if (now - ref > cfg_.watchdog.component_timeout && !comp_tripped_[i]) {
            comp_tripped_[i] = 1;
            char what[160];
            std::snprintf(what, sizeof(what),
                          "rpu%u holds %u packet(s), firmware silent %llu cycles%s",
                          i, occ, (unsigned long long)(now - ref),
                          sys_->rpu(i).core_faulted() ? " (core faulted)"
                          : sys_->rpu(i).core_halted() ? " (core halted)"
                                                       : "");
            recorder_.record_note(FlightEventType::kStallWarn, now, what, uint8_t(i));
            trip(now, what, "rpu" + std::to_string(i));
        }
    }
}

void
HealthMonitor::trip(uint64_t now, std::string what, std::string component) {
    ++watchdog_trips_;
    WatchdogTrip t;
    t.cycle = now;
    t.what = std::move(what);
    t.component = std::move(component);
    for (const auto& p : sys_->kernel().occupancy_probes()) {
        size_t occ = p.fn();
        if (occ > t.deepest_occupancy) {
            t.deepest_occupancy = occ;
            t.deepest_capacity = p.capacity;
            t.deepest_net = p.net;
        }
    }
    t.snapshot = build_snapshot(now);
    std::string note = t.what;
    if (!t.component.empty()) note += " [" + t.component + "]";
    if (!t.deepest_net.empty())
        note += " deepest=" + t.deepest_net + "(" +
                std::to_string(t.deepest_occupancy) + ")";
    recorder_.record_note(FlightEventType::kWatchdogTrip, now, note);
    if (trips_.size() < cfg_.max_trips) trips_.push_back(t);
    if (on_trip_) on_trip_(t);
    if (cfg_.watchdog.fault_on_trip)
        sim::fatal("health watchdog trip @" + std::to_string(now) + ": " + note);
}

std::string
HealthMonitor::build_snapshot(uint64_t now) const {
    std::string out;
    char line[192];
    std::snprintf(line, sizeof(line),
                  "health snapshot @%llu: inflight=%zu ingress=%llu egress=%llu "
                  "drops=%llu awake=%zu\n",
                  (unsigned long long)now, inflight_count_,
                  (unsigned long long)ingress_, (unsigned long long)egress_,
                  (unsigned long long)(drops_[0] + drops_[1]),
                  sys_->kernel().awake_count());
    out += line;
    std::snprintf(line, sizeof(line), "  last egress %llu cycles ago\n",
                  (unsigned long long)(now - std::max(last_egress_, attach_cycle_)));
    out += line;
    for (unsigned i = 0; i < sys_->rpu_count(); ++i) {
        rpu::Rpu& r = sys_->rpu(i);
        std::snprintf(line, sizeof(line),
                      "  rpu%u: occ=%u%s%s idle_for=%llu\n", i, r.occupancy(),
                      r.core_halted() ? " halted" : "",
                      r.core_faulted() ? " FAULTED" : "",
                      (unsigned long long)(now - std::max(last_activity_[i], attach_cycle_)));
        out += line;
    }

    // Deepest-backlog census over every registered FIFO/queue probe.
    std::vector<const sim::Kernel::OccupancyProbe*> ranked;
    for (const auto& p : sys_->kernel().occupancy_probes())
        if (p.fn() > 0) ranked.push_back(&p);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto* a, const auto* b) { return a->fn() > b->fn(); });
    out += "  deepest backlogs:\n";
    if (ranked.empty()) out += "    (all nets empty)\n";
    for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
        if (ranked[i]->capacity) {
            std::snprintf(line, sizeof(line), "    %-32s %zu/%zu\n",
                          ranked[i]->net.c_str(), ranked[i]->fn(),
                          ranked[i]->capacity);
        } else {
            std::snprintf(line, sizeof(line), "    %-32s %zu\n",
                          ranked[i]->net.c_str(), ranked[i]->fn());
        }
        out += line;
    }

    // Ranked stall attribution when the deep-debug telemetry is chained.
    if (deep_) {
        StallReport rep = build_stall_report(*deep_);
        out += "  stall attribution (telemetry):\n";
        for (size_t i = 0; i < rep.components.size() && i < 3; ++i) {
            const ComponentStall& c = rep.components[i];
            std::snprintf(line, sizeof(line), "    %-16s stalled=%llu starved=%llu\n",
                          c.component.c_str(), (unsigned long long)c.stalled,
                          (unsigned long long)c.starved);
            out += line;
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// SLO epochs

bool
HealthMonitor::epoch_measure(const SloBound& b, double* out) const {
    if (b.kind == SloBound::Kind::kDropRate) {
        uint64_t offered = 0, drops = 0;
        if (b.cls == FlowClass::kClassCount) {
            for (unsigned c = 0; c < kFlowClassCount; ++c) {
                offered += epoch_ingress_[c];
                drops += epoch_drops_[c];
            }
        } else {
            offered = epoch_ingress_[unsigned(b.cls)];
            drops = epoch_drops_[unsigned(b.cls)];
        }
        if (offered == 0) return false;
        *out = double(drops) / double(offered);
        return true;
    }
    const Histogram& h =
        b.cls == FlowClass::kClassCount ? epoch_all_ : epoch_cls_[unsigned(b.cls)];
    if (h.count() == 0) return false;
    double p = b.kind == SloBound::Kind::kLatencyP50    ? 0.50
               : b.kind == SloBound::Kind::kLatencyP99 ? 0.99
                                                       : 0.999;
    *out = double(h.percentile(p));
    return true;
}

void
HealthMonitor::close_epoch(uint64_t now) {
    EpochVerdict v;
    v.start = epoch_start_;
    v.end = now;
    for (unsigned c = 0; c < kFlowClassCount; ++c) {
        v.offered += epoch_ingress_[c];
        v.drops += epoch_drops_[c];
    }
    v.egress = epoch_egress_;
    v.p50 = epoch_all_.percentile(0.50);
    v.p99 = epoch_all_.percentile(0.99);
    v.p999 = epoch_all_.percentile(0.999);
    v.drop_rate = v.offered ? double(v.drops) / double(v.offered) : 0.0;

    for (size_t i = 0; i < cfg_.slo.bounds.size(); ++i) {
        double measured = 0;
        if (!epoch_measure(cfg_.slo.bounds[i], &measured)) continue;
        if (measured > cfg_.slo.bounds[i].limit) v.violations |= 1u << i;
    }
    v.pass = v.violations == 0;

    if (!v.pass) {
        // Rare path: building the verdict note allocates, the steady-state
        // (passing) path does not.
        std::string note;
        for (size_t i = 0; i < cfg_.slo.bounds.size(); ++i) {
            if (!(v.violations & (1u << i))) continue;
            double measured = 0;
            epoch_measure(cfg_.slo.bounds[i], &measured);
            if (!note.empty()) note += "; ";
            char buf[64];
            std::snprintf(buf, sizeof(buf), " (measured %g)", measured);
            note += slo_bound_text(cfg_.slo.bounds[i]) + buf;
        }
        slo_violations_ += uint64_t(__builtin_popcount(v.violations));
        recorder_.record_note(FlightEventType::kSloViolation, now, note);
    }

    if (verdicts_.size() < cfg_.max_verdicts) verdicts_.push_back(v);
    ++epochs_closed_;

    for (auto& c : epoch_ingress_) c = 0;
    for (auto& c : epoch_drops_) c = 0;
    epoch_egress_ = 0;
    epoch_all_.clear();
    for (auto& h : epoch_cls_) h.clear();
    epoch_start_ = now;
    epoch_deadline_ = now + cfg_.epoch_cycles;
}

void
HealthMonitor::flush_epoch() {
    if (!sys_) return;
    uint64_t now = sys_->kernel().now();
    // Only close when the epoch holds any evidence; an empty tail epoch
    // would dilute nothing but still burn a verdict slot.
    bool any = epoch_egress_ != 0;
    for (unsigned c = 0; c < kFlowClassCount && !any; ++c)
        any = epoch_ingress_[c] != 0 || epoch_drops_[c] != 0;
    if (any) close_epoch(now);
}

// ---------------------------------------------------------------------------
// Dump

HealthMonitor::Dump
HealthMonitor::dump() const {
    Dump d;
    char line[192];

    std::string& t = d.text;
    t += "=== production health dump ===\n";
    std::snprintf(line, sizeof(line),
                  "ingress=%llu egress=%llu drops=%llu (rx_fifo=%llu firmware=%llu) "
                  "inflight=%zu lost_samples=%llu\n",
                  (unsigned long long)ingress_, (unsigned long long)egress_,
                  (unsigned long long)(drops_[0] + drops_[1]),
                  (unsigned long long)drops_[unsigned(DropSite::kMacRxFifo)],
                  (unsigned long long)drops_[unsigned(DropSite::kFirmware)],
                  inflight_count_, (unsigned long long)lost_samples_);
    t += line;
    if (lat_all_.count()) {
        std::snprintf(line, sizeof(line),
                      "latency (cycles): p50=%llu p99=%llu p999=%llu max=%llu over %llu samples\n",
                      (unsigned long long)lat_all_.percentile(0.50),
                      (unsigned long long)lat_all_.percentile(0.99),
                      (unsigned long long)lat_all_.percentile(0.999),
                      (unsigned long long)lat_all_.max(),
                      (unsigned long long)lat_all_.count());
        t += line;
    }
    std::snprintf(line, sizeof(line),
                  "slo: \"%s\" epochs=%llu violations=%llu trips=%llu faults=%llu\n",
                  cfg_.slo.text.c_str(), (unsigned long long)epochs_closed_,
                  (unsigned long long)slo_violations_,
                  (unsigned long long)watchdog_trips_,
                  (unsigned long long)core_faults_);
    t += line;
    for (const EpochVerdict& v : verdicts_) {
        if (v.pass) continue;
        std::snprintf(line, sizeof(line),
                      "  epoch [%llu,%llu): FAIL mask=0x%x p99=%lluc drop_rate=%.4f\n",
                      (unsigned long long)v.start, (unsigned long long)v.end,
                      v.violations, (unsigned long long)v.p99, v.drop_rate);
        t += line;
    }
    for (const WatchdogTrip& trip : trips_) {
        std::snprintf(line, sizeof(line), "--- watchdog trip @%llu: %s\n",
                      (unsigned long long)trip.cycle, trip.what.c_str());
        t += line;
        t += trip.snapshot;
    }
    t += recorder_.dump_text();

    JsonWriter w;
    w.begin_object();
    w.key("counters").begin_object();
    w.key("ingress").value(ingress_);
    w.key("egress").value(egress_);
    w.key("egress_bytes").value(egress_bytes_);
    w.key("drops_mac_rx_fifo").value(drops_[unsigned(DropSite::kMacRxFifo)]);
    w.key("drops_firmware").value(drops_[unsigned(DropSite::kFirmware)]);
    w.key("core_faults").value(core_faults_);
    w.key("watchdog_trips").value(watchdog_trips_);
    w.key("slo_violations").value(slo_violations_);
    w.key("lost_samples").value(lost_samples_);
    w.key("inflight").value(uint64_t(inflight_count_));
    w.end_object();
    w.key("latency_cycles").begin_object();
    w.key("count").value(lat_all_.count());
    w.key("p50").value(lat_all_.percentile(0.50));
    w.key("p99").value(lat_all_.percentile(0.99));
    w.key("p999").value(lat_all_.percentile(0.999));
    w.key("max").value(lat_all_.max());
    w.end_object();
    w.key("slo").begin_object();
    w.key("spec").value(cfg_.slo.text);
    w.key("epochs").value(epochs_closed_);
    w.key("violations").value(slo_violations_);
    w.key("verdicts").begin_array();
    for (const EpochVerdict& v : verdicts_) {
        w.begin_object();
        w.key("start").value(v.start);
        w.key("end").value(v.end);
        w.key("offered").value(v.offered);
        w.key("egress").value(v.egress);
        w.key("drops").value(v.drops);
        w.key("p50").value(v.p50);
        w.key("p99").value(v.p99);
        w.key("p999").value(v.p999);
        w.key("drop_rate").value(v.drop_rate);
        w.key("pass").value(v.pass);
        if (v.violations) w.key("violation_mask").value(uint64_t(v.violations));
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.key("trips").begin_array();
    for (const WatchdogTrip& trip : trips_) {
        w.begin_object();
        w.key("cycle").value(trip.cycle);
        w.key("what").value(trip.what);
        w.key("component").value(trip.component);
        w.key("deepest_net").value(trip.deepest_net);
        w.key("deepest_occupancy").value(uint64_t(trip.deepest_occupancy));
        w.key("deepest_capacity").value(uint64_t(trip.deepest_capacity));
        w.key("snapshot").value(trip.snapshot);
        w.end_object();
    }
    w.end_array();
    w.key("recorder").raw(recorder_.dump_json());
    w.end_object();
    d.json = w.str();
    return d;
}

// ---------------------------------------------------------------------------
// Health sweep harness

HealthResult
run_health(const HealthSpec& spec) {
    HealthResult res;
    res.slo = parse_slo(spec.slo);
    bool captured = false;

    for (size_t si = 0; si < spec.packet_sizes.size(); ++si) {
        uint32_t size = spec.packet_sizes[si];
        PipelineSpec ps;
        ps.pipeline = spec.pipeline;
        ps.rpu_count = spec.rpu_count;
        ps.policy = spec.policy;
        ps.seed = spec.seed;
        PipelineFixture fx = build_pipeline(ps);
        System& sys = fx.system();

        HealthConfig hc = spec.health;
        hc.slo = res.slo;
        HealthMonitor mon(hc);
        std::unique_ptr<Telemetry> telem;
        if (spec.deep) {
            Telemetry::Config tc;
            tc.capture_vcd = false;
            telem = std::make_unique<Telemetry>(tc);
            telem->attach(sys);
            mon.set_stall_telemetry(telem.get());
        }
        mon.attach(sys);

        TrafficParams tp;
        tp.packet_size = size;
        tp.load = spec.load;
        tp.seed = spec.seed * 1000003u + size;
        add_traffic(fx, tp);

        sim::Cycle start = sys.kernel().now();
        if (spec.inject_stall && spec.stall_at < spec.run_cycles) {
            sys.run_cycles(spec.stall_at);
            // Wedge one RPU with the busy-loop image. The static verifier
            // rightly rejects it (unbounded loop), so the gate is lowered
            // for the load — the same path a hostile/buggy tenant image
            // would need an operator override for.
            unsigned r = spec.stall_rpu % sys.rpu_count();
            host::FirmwareCheck prev = sys.host().firmware_check();
            sys.host().set_firmware_check(host::FirmwareCheck::kOff);
            sys.rpu(r).halt();
            fwlib::Program wedge = fwlib::busy_loop();
            sys.host().load_firmware(r, wedge.image, wedge.entry);
            sys.host().boot(r);
            sys.host().set_firmware_check(prev);
            sys.run_cycles(spec.run_cycles - spec.stall_at);
        } else {
            sys.run_cycles(spec.run_cycles);
        }
        mon.flush_epoch();

        HealthRow row;
        row.packet_size = size;
        row.cycles = sys.kernel().now() - start;
        row.ingress = mon.ingress_packets();
        row.egress = mon.egress_packets();
        row.drops = mon.dropped_packets();
        double ns = double(row.cycles) * sim::kNsPerCycle;
        row.gbps = ns > 0 ? double(mon.egress_bytes()) * 8.0 / ns : 0.0;
        const Histogram& lat = mon.latency();
        row.p50_us = double(lat.percentile(0.50)) * sim::kNsPerCycle / 1e3;
        row.p99_us = double(lat.percentile(0.99)) * sim::kNsPerCycle / 1e3;
        row.p999_us = double(lat.percentile(0.999)) * sim::kNsPerCycle / 1e3;
        uint64_t offered =
            mon.ingress_packets() + mon.dropped_at(DropSite::kMacRxFifo);
        row.drop_rate = offered ? double(row.drops) / double(offered) : 0.0;
        row.epochs = mon.epochs_closed();
        row.violations = mon.slo_violations();
        row.slo_pass = mon.slo_ok();
        row.tripped = mon.watchdog_trips() > 0;
        res.rows.push_back(row);
        res.slo_ok = res.slo_ok && row.slo_pass;
        res.watchdog_tripped = res.watchdog_tripped || row.tripped;

        bool last = si + 1 == spec.packet_sizes.size();
        if ((row.tripped || last) && !captured) {
            captured = row.tripped;  // a later trip may still take over from "last"
            HealthMonitor::Dump d = mon.dump();
            res.flight_text = d.text;
            res.flight_json = d.json;
            res.metrics_prom = mon.metrics().prometheus_text();
            res.metrics_json = mon.metrics().json();
            if (row.tripped && !mon.trips().empty()) {
                const WatchdogTrip& trip = mon.trips().front();
                res.trip_summary = trip.what;
                if (!trip.component.empty())
                    res.trip_summary += " [" + trip.component + "]";
                if (!trip.deepest_net.empty()) {
                    res.trip_summary += " deepest=" + trip.deepest_net + "(" +
                                        std::to_string(trip.deepest_occupancy);
                    if (trip.deepest_capacity)
                        res.trip_summary +=
                            "/" + std::to_string(trip.deepest_capacity);
                    res.trip_summary += ")";
                }
            }
        }

        mon.detach();
        if (telem) telem->detach();
    }
    return res;
}

}  // namespace rosebud::obs
