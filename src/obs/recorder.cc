#include "obs/recorder.h"

#include <cstdio>

#include "obs/json.h"

namespace rosebud::obs {

FlightRecorder::FlightRecorder(size_t capacity)
    : ring_(capacity ? capacity : 1) {
    notes_.reserve(64);
}

void
FlightRecorder::record_note(FlightEventType type, uint64_t cycle,
                            std::string note, uint8_t a, uint16_t b,
                            uint64_t c, uint32_t d) {
    int32_t idx;
    if (notes_.size() < kMaxNotes) {
        idx = int32_t(notes_.size());
        notes_.push_back(std::move(note));
    } else {
        // The table is bounded so a pathological trip storm cannot grow
        // memory without bound; late notes share one sentinel entry.
        if (notes_.size() == kMaxNotes) notes_.push_back("<note table full>");
        idx = int32_t(kMaxNotes);
    }
    FlightEvent& e = ring_[head_];
    e.cycle = cycle;
    e.c = c;
    e.d = d;
    e.b = b;
    e.a = a;
    e.type = type;
    e.note = idx;
    advance();
}

const std::string&
FlightRecorder::note(int32_t idx) const {
    static const std::string kEmpty;
    if (idx < 0 || size_t(idx) >= notes_.size()) return kEmpty;
    return notes_[size_t(idx)];
}

const char*
FlightRecorder::type_name(FlightEventType t) {
    switch (t) {
    case FlightEventType::kIngress: return "ingress";
    case FlightEventType::kEgress: return "egress";
    case FlightEventType::kDrop: return "drop";
    case FlightEventType::kFault: return "fault";
    case FlightEventType::kReconfigPhase: return "reconfig";
    case FlightEventType::kWatchdogTrip: return "watchdog_trip";
    case FlightEventType::kSloViolation: return "slo_violation";
    case FlightEventType::kStallWarn: return "stall_warn";
    case FlightEventType::kTypeCount: break;
    }
    return "?";
}

void
FlightRecorder::clear() {
    head_ = 0;
    count_ = 0;
    recorded_ = 0;
}

std::string
FlightRecorder::dump_json() const {
    JsonWriter w;
    w.begin_object();
    w.key("capacity").value(uint64_t(capacity()));
    w.key("recorded").value(recorded());
    w.key("overwritten").value(overwritten());
    w.key("events").begin_array();
    for_each([&](const FlightEvent& e) {
        w.begin_object();
        w.key("cycle").value(e.cycle);
        w.key("type").value(type_name(e.type));
        w.key("a").value(uint64_t(e.a));
        w.key("b").value(uint64_t(e.b));
        w.key("c").value(e.c);
        w.key("d").value(uint64_t(e.d));
        if (e.note >= 0) w.key("note").value(note(e.note));
        w.end_object();
    });
    w.end_array();
    w.end_object();
    return w.str();
}

std::string
FlightRecorder::dump_text() const {
    std::string out;
    out.reserve(count_ * 64);
    char line[160];
    std::snprintf(line, sizeof(line),
                  "flight recorder: %zu/%zu events held (%llu recorded, %llu lost to wrap)\n",
                  size(), capacity(), (unsigned long long)recorded(),
                  (unsigned long long)overwritten());
    out += line;
    for_each([&](const FlightEvent& e) {
        switch (e.type) {
        case FlightEventType::kIngress:
            std::snprintf(line, sizeof(line),
                          "  @%-10llu ingress       port%u pkt=%llu %uB\n",
                          (unsigned long long)e.cycle, e.a,
                          (unsigned long long)e.c, e.b);
            break;
        case FlightEventType::kEgress:
            std::snprintf(line, sizeof(line),
                          "  @%-10llu egress        port%u pkt=%llu %uB latency=%uc\n",
                          (unsigned long long)e.cycle, e.a,
                          (unsigned long long)e.c, e.b, e.d);
            break;
        case FlightEventType::kDrop:
            std::snprintf(line, sizeof(line),
                          "  @%-10llu drop          %s pkt=%llu %uB\n",
                          (unsigned long long)e.cycle,
                          e.a == uint8_t(DropSite::kMacRxFifo) ? "mac_rx_fifo"
                                                               : "firmware",
                          (unsigned long long)e.c, e.b);
            break;
        case FlightEventType::kFault:
            std::snprintf(line, sizeof(line), "  @%-10llu FAULT         rpu%u %s\n",
                          (unsigned long long)e.cycle, e.a,
                          note(e.note).c_str());
            break;
        case FlightEventType::kReconfigPhase:
            std::snprintf(line, sizeof(line), "  @%-10llu reconfig      rpu%u %s\n",
                          (unsigned long long)e.cycle, e.a,
                          note(e.note).c_str());
            break;
        case FlightEventType::kWatchdogTrip:
            std::snprintf(line, sizeof(line), "  @%-10llu WATCHDOG TRIP %s\n",
                          (unsigned long long)e.cycle, note(e.note).c_str());
            break;
        case FlightEventType::kSloViolation:
            std::snprintf(line, sizeof(line), "  @%-10llu SLO VIOLATION %s\n",
                          (unsigned long long)e.cycle, note(e.note).c_str());
            break;
        case FlightEventType::kStallWarn:
            std::snprintf(line, sizeof(line), "  @%-10llu stall         rpu%u %s\n",
                          (unsigned long long)e.cycle, e.a,
                          note(e.note).c_str());
            break;
        case FlightEventType::kTypeCount:
            line[0] = '\0';
            break;
        }
        out += line;
    });
    return out;
}

}  // namespace rosebud::obs
