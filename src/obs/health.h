/// \file
/// Always-on production health layer (DESIGN.md §15): flight recorder,
/// forward-progress watchdog, SLO histograms, metrics registry — the
/// instrumentation a deployed middlebox keeps attached *in production*,
/// as opposed to the heavyweight debugging stack (obs::Telemetry,
/// PacketTracer, VCD) that is attached for a repro run.
///
/// The cost contract, and why this is NOT a TelemetrySink:
///
///  * Attaching a sim::TelemetrySink disables quiescence skipping and the
///    parallel tick executor (every skipped cycle would be a hole in the
///    trace). The health layer instead uses three cheap seams that leave
///    both optimizations on: System packet observers (fire only when a
///    packet actually moves), the sim::HealthProbe end-of-cycle hook (one
///    pointer compare per *stepped* cycle; fast-forwarded cycles are proof
///    of system-wide idleness and are deliberately unobserved), and the
///    kernel's occupancy-probe registry (pull-based backlog census, read
///    only when a snapshot is wanted).
///  * Nothing here creates sim::Stats counters (they fold into
///    System::state_fingerprint) or mutates simulation state, so a run
///    with the health layer attached is bit-identical to one without.
///  * The per-packet path records into preallocated PODs (flight-recorder
///    ring, HDR histogram buckets, open-addressed in-flight table) — zero
///    steady-state allocations, proven by tests/test_perf_hotpath.cc.

#ifndef ROSEBUD_OBS_HEALTH_H
#define ROSEBUD_OBS_HEALTH_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "obs/harness.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sim/telemetry.h"

namespace rosebud::obs {

class Telemetry;

// ---------------------------------------------------------------------------
// Flow classification

/// Traffic classes for per-class SLO accounting. Derived from raw frame
/// bytes so classification works on any pipeline without firmware help.
enum class FlowClass : uint8_t { kTcp = 0, kUdp, kOther, kClassCount };

constexpr unsigned kFlowClassCount = unsigned(FlowClass::kClassCount);

/// Human-readable class name ("tcp"/"udp"/"other").
const char* flow_class_name(FlowClass c);

/// Classify a packet from its bytes (honors the LB's 4-byte prepended
/// hash). Non-IPv4 and truncated frames are kOther.
FlowClass classify(const net::Packet& pkt);

// ---------------------------------------------------------------------------
// SLO specification

/// One declarative bound, e.g. "tcp: latency_p99 <= 200us".
struct SloBound {
    enum class Kind : uint8_t { kLatencyP50, kLatencyP99, kLatencyP999, kDropRate };
    /// kClassCount means "all traffic".
    FlowClass cls = FlowClass::kClassCount;
    Kind kind = Kind::kLatencyP99;
    double limit = 0;  ///< cycles for latency bounds, fraction for drop rate
};

/// A parsed SLO: the bounds plus the original text for reporting.
struct SloSpec {
    std::vector<SloBound> bounds;
    std::string text;
    bool empty() const { return bounds.empty(); }
};

/// Parse the declarative SLO syntax (docs/OBSERVABILITY.md):
///
///   spec    := clause (("," | ";") clause)*
///   clause  := [class ":"] metric "<=" value [unit]
///   class   := "tcp" | "udp" | "other"            (default: all traffic)
///   metric  := "latency_p50" | "latency_p99" | "latency_p999" | "drop_rate"
///   unit    := "c" | "cycles" | "ns" | "us" | "ms" (latency; default cycles)
///            | "%"                                 (drop_rate; default fraction)
///
/// e.g. "latency_p99 <= 200us, drop_rate <= 0.05, tcp: latency_p999 <= 1ms".
/// sim::fatal on malformed input. Empty/whitespace input parses to an
/// empty spec (no checks).
SloSpec parse_slo(const std::string& text);

/// Render one bound back to canonical text ("tcp: latency_p99 <= 50000c").
std::string slo_bound_text(const SloBound& b);

// ---------------------------------------------------------------------------
// Configuration

/// Forward-progress watchdog tuning.
struct WatchdogConfig {
    /// Trip when packets are in flight but no packet has egressed for this
    /// many cycles ("ingress backlogged while egress silent").
    uint64_t progress_timeout = 50'000;
    /// Per-RPU liveness: warn when an RPU holds packets but its firmware
    /// has shown no descriptor activity for this many cycles.
    uint64_t component_timeout = 20'000;
    /// How often the watchdog predicate is evaluated. Power-of-two-ish
    /// values keep the common-case on_cycle cost to one compare.
    uint64_t check_interval = 1024;
    /// Escalate a trip to sim::fatal (catchable FatalError) after the
    /// snapshot is captured. Default: record and keep running.
    bool fault_on_trip = false;
};

/// Health-layer configuration.
struct HealthConfig {
    size_t recorder_capacity = 4096;
    /// Record per-packet ingress/egress/drop events into the flight
    /// recorder (cheap POD writes). Off leaves only rare events.
    bool record_packets = true;
    /// SLO evaluation period. Each epoch closes with a pass/fail verdict.
    uint64_t epoch_cycles = 16'384;
    /// Bound on retained per-epoch verdicts (oldest beyond this are
    /// counted but not stored).
    size_t max_verdicts = 512;
    /// Bound on retained watchdog-trip snapshots.
    size_t max_trips = 16;
    WatchdogConfig watchdog;
    SloSpec slo;  ///< empty = no SLO checks
};

// ---------------------------------------------------------------------------
// Results

/// One closed epoch's SLO verdict. POD so the verdict ring never
/// allocates on the steady-state path.
struct EpochVerdict {
    uint64_t start = 0;   ///< first cycle of the epoch
    uint64_t end = 0;     ///< cycle the epoch closed
    uint64_t offered = 0; ///< packets offered (ingress + rx-fifo drops)
    uint64_t egress = 0;
    uint64_t drops = 0;
    uint64_t p50 = 0;     ///< all-class latency percentiles, cycles
    uint64_t p99 = 0;
    uint64_t p999 = 0;
    double drop_rate = 0;
    uint32_t violations = 0;  ///< bitmask over SloSpec::bounds indices
    bool pass = true;
};

/// Snapshot captured when the forward-progress watchdog fires.
struct WatchdogTrip {
    uint64_t cycle = 0;
    std::string what;          ///< one-line cause ("egress silent 50001 cycles")
    std::string component;     ///< stalled component ("rpu3"), "" for system
    std::string deepest_net;   ///< deepest-backlog net at trip time
    size_t deepest_occupancy = 0;
    size_t deepest_capacity = 0;
    std::string snapshot;      ///< multi-line state capture
};

// ---------------------------------------------------------------------------
// HealthMonitor

/// The always-on health layer. Attach to a System before (or during) a
/// run; detach restores the system untouched. One monitor per System.
class HealthMonitor : public sim::HealthProbe {
 public:
    explicit HealthMonitor(HealthConfig cfg = {});
    ~HealthMonitor() override;

    HealthMonitor(const HealthMonitor&) = delete;
    HealthMonitor& operator=(const HealthMonitor&) = delete;

    /// Install the packet observer, the per-cycle health probe, the host
    /// reconfig observer, and the host metrics provider. Idle-skip and the
    /// parallel executor stay enabled.
    void attach(System& sys);

    /// Close the final partial epoch and remove every hook.
    void detach();

    bool attached() const { return sys_ != nullptr; }

    /// Chain the deep-debug telemetry for stall attribution in trip
    /// snapshots (optional; attaching a Telemetry disables idle-skip, so
    /// production runs leave this null).
    void set_stall_telemetry(const Telemetry* telem) { deep_ = telem; }

    /// Callback fired after a trip snapshot is captured.
    using TripCallback = std::function<void(const WatchdogTrip&)>;
    void set_on_trip(TripCallback fn) { on_trip_ = std::move(fn); }

    /// Record an externally observed fault (e.g. oracle mismatch) into the
    /// flight recorder.
    void note_fault(unsigned rpu, const std::string& what);

    // --- sim::HealthProbe ----------------------------------------------------
    void on_cycle(uint64_t completed) override;

    // --- accessors -----------------------------------------------------------
    const FlightRecorder& recorder() const { return recorder_; }
    MetricsRegistry& metrics() { return metrics_; }
    const MetricsRegistry& metrics() const { return metrics_; }
    const HealthConfig& config() const { return cfg_; }

    /// Close the in-progress epoch early (e.g. at end of run, so the final
    /// partial epoch still gets an SLO verdict). detach() calls this too.
    void flush_epoch();

    uint64_t ingress_packets() const { return ingress_; }
    uint64_t egress_packets() const { return egress_; }
    uint64_t egress_bytes() const { return egress_bytes_; }
    uint64_t dropped_packets() const { return drops_[0] + drops_[1]; }
    uint64_t dropped_at(DropSite s) const { return drops_[unsigned(s)]; }
    uint64_t core_faults() const { return core_faults_; }
    uint64_t watchdog_trips() const { return watchdog_trips_; }
    uint64_t slo_violations() const { return slo_violations_; }
    /// Latency samples lost to in-flight-table pressure (sampling, not
    /// accounting, degrades under pathological overload).
    uint64_t lost_samples() const { return lost_samples_; }
    size_t inflight() const { return inflight_count_; }

    /// Cumulative all-traffic latency distribution (cycles).
    const Histogram& latency() const { return lat_all_; }
    const Histogram& latency(FlowClass c) const { return lat_cls_[unsigned(c)]; }

    const std::vector<EpochVerdict>& verdicts() const { return verdicts_; }
    uint64_t epochs_closed() const { return epochs_closed_; }
    /// True iff every closed epoch passed its SLO checks.
    bool slo_ok() const { return slo_violations_ == 0; }

    const std::vector<WatchdogTrip>& trips() const { return trips_; }

    /// Render everything — counters, epoch verdicts, trips, the flight
    /// recorder timeline — for post-mortem consumption.
    struct Dump {
        std::string text;
        std::string json;
    };
    Dump dump() const;

 private:
    struct Inflight {
        uint64_t key = 0;  ///< packet id + 1; 0 = empty
        uint64_t cycle = 0;
        uint8_t cls = 0;
    };

    void on_stage(const char* stage, const net::Packet& pkt, sim::Cycle now);
    void note_ingress(const net::Packet& pkt, uint64_t now);
    void note_egress(const net::Packet& pkt, uint64_t now, uint8_t port);
    void note_drop(const net::Packet& pkt, uint64_t now, DropSite site);
    void note_activity(const net::Packet& pkt, uint64_t now);

    void insert_inflight(uint64_t id, uint64_t now, FlowClass cls);
    /// Returns true and fills *out when the id was being tracked.
    bool erase_inflight(uint64_t id, Inflight* out);

    void watchdog_check(uint64_t now);
    void trip(uint64_t now, std::string what, std::string component);
    std::string build_snapshot(uint64_t now) const;

    void close_epoch(uint64_t now);
    /// Measured value for one bound over the current epoch; returns false
    /// when the epoch holds no evidence for it (vacuous pass).
    bool epoch_measure(const SloBound& b, double* out) const;

    HealthConfig cfg_;
    System* sys_ = nullptr;
    uint64_t observer_handle_ = 0;
    uint64_t attach_cycle_ = 0;

    FlightRecorder recorder_;
    MetricsRegistry metrics_;

    // Cumulative accounting (uint64 members, never sim::Stats).
    uint64_t ingress_ = 0;
    uint64_t egress_ = 0;
    uint64_t egress_bytes_ = 0;
    uint64_t drops_[unsigned(DropSite::kSiteCount)] = {};
    uint64_t core_faults_ = 0;
    uint64_t watchdog_trips_ = 0;
    uint64_t slo_violations_ = 0;
    uint64_t lost_samples_ = 0;

    // Latency tracking.
    std::vector<Inflight> inflight_;  ///< open-addressed, power-of-two size
    size_t inflight_count_ = 0;
    Histogram lat_all_;
    Histogram lat_cls_[kFlowClassCount];

    // Epoch state.
    uint64_t epoch_start_ = 0;
    uint64_t epoch_deadline_ = 0;
    uint64_t epoch_ingress_[kFlowClassCount] = {};
    uint64_t epoch_egress_ = 0;
    uint64_t epoch_drops_[kFlowClassCount] = {};
    Histogram epoch_all_;
    Histogram epoch_cls_[kFlowClassCount];
    std::vector<EpochVerdict> verdicts_;
    uint64_t epochs_closed_ = 0;

    // Watchdog state.
    uint64_t next_check_ = 0;
    uint64_t last_egress_ = 0;
    bool sys_tripped_ = false;
    std::vector<uint64_t> last_activity_;  ///< per RPU, descriptor-level
    std::vector<uint64_t> busy_since_;     ///< per RPU, occupancy>0 streak start
    std::vector<uint8_t> comp_tripped_;
    std::vector<uint8_t> was_faulted_;
    std::vector<WatchdogTrip> trips_;
    const Telemetry* deep_ = nullptr;
    TripCallback on_trip_;
};

// ---------------------------------------------------------------------------
// Health sweep harness (the engine behind `rosebud_cli health`)

struct HealthSpec {
    oracle::Pipeline pipeline = oracle::Pipeline::kForwarder;
    unsigned rpu_count = 8;
    lb::Policy policy = lb::Policy::kRoundRobin;
    uint64_t seed = 1;

    std::vector<uint32_t> packet_sizes = {64, 256, 512, 1024, 1500};
    double load = 0.9;
    sim::Cycle run_cycles = 40'000;

    /// Declarative SLO applied to every sweep point (parse_slo syntax).
    std::string slo = "latency_p99 <= 200us, drop_rate <= 0.05";
    HealthConfig health;

    /// Attach a full Telemetry alongside the monitor so trip snapshots
    /// carry ranked stall attribution (costs the idle-skip optimization).
    bool deep = false;

    /// Fault injection: wedge one RPU with the fwlib::busy_loop image at
    /// `stall_at` cycles into each run, then watch the watchdog catch it.
    bool inject_stall = false;
    unsigned stall_rpu = 0;
    sim::Cycle stall_at = 10'000;
};

/// One sweep point's outcome.
struct HealthRow {
    uint32_t packet_size = 0;
    uint64_t cycles = 0;
    uint64_t ingress = 0;
    uint64_t egress = 0;
    uint64_t drops = 0;
    double gbps = 0;       ///< wire throughput from egressed bytes
    double p50_us = 0;
    double p99_us = 0;
    double p999_us = 0;
    double drop_rate = 0;
    uint64_t epochs = 0;
    uint64_t violations = 0;
    bool slo_pass = true;
    bool tripped = false;
};

struct HealthResult {
    std::vector<HealthRow> rows;
    SloSpec slo;
    bool slo_ok = true;
    bool watchdog_tripped = false;
    std::string trip_summary;   ///< "" unless a trip happened
    std::string flight_text;    ///< recorder timeline (tripped run, else last)
    std::string flight_json;
    std::string metrics_prom;   ///< registry snapshot (same run as above)
    std::string metrics_json;
};

/// Build each sweep point's pipeline, run it with the health layer
/// attached, optionally inject a firmware stall, and collect verdicts.
HealthResult run_health(const HealthSpec& spec);

}  // namespace rosebud::obs

#endif  // ROSEBUD_OBS_HEALTH_H
