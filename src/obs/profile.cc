#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/system.h"
#include "obs/json.h"
#include "rv/core.h"
#include "rv/disasm.h"

namespace rosebud::obs {

CoreProfile
collect_profile(const rv::Core& core) {
    CoreProfile p;
    p.name = core.name();
    p.cycles = core.profiled_cycles();
    p.instret = core.instret();
    p.halted = core.halted();
    p.pc_cycles = core.pc_histogram();
    return p;
}

std::vector<CoreProfile>
collect_profiles(System& sys) {
    std::vector<CoreProfile> out;
    for (unsigned i = 0; i < sys.rpu_count(); ++i) {
        out.push_back(collect_profile(sys.rpu(i).core()));
    }
    return out;
}

CoreProfile
aggregate_profiles(const std::vector<CoreProfile>& profiles, const std::string& name) {
    CoreProfile agg;
    agg.name = name;
    for (const auto& p : profiles) {
        agg.cycles += p.cycles;
        for (const auto& [pc, cy] : p.pc_cycles) agg.pc_cycles[pc] += cy;
    }
    return agg;
}

std::vector<HotSpot>
hot_spots(const CoreProfile& profile, size_t top_n) {
    std::vector<HotSpot> spots;
    spots.reserve(profile.pc_cycles.size());
    for (const auto& [pc, cy] : profile.pc_cycles) {
        spots.push_back(HotSpot{pc, cy,
                                profile.cycles ? double(cy) / double(profile.cycles) : 0.0});
    }
    std::stable_sort(spots.begin(), spots.end(),
                     [](const HotSpot& a, const HotSpot& b) { return a.cycles > b.cycles; });
    if (spots.size() > top_n) spots.resize(top_n);
    return spots;
}

std::string
annotate(const std::vector<uint32_t>& image, const CoreProfile& profile, uint32_t base,
         double hot_frac) {
    std::ostringstream os;
    char buf[192];
    const double total = profile.cycles ? double(profile.cycles) : 1.0;
    os << "firmware profile: " << profile.name << ", " << profile.cycles
       << " cycles attributed\n";
    for (size_t i = 0; i < image.size(); ++i) {
        const uint32_t pc = base + uint32_t(i) * 4;
        auto it = profile.pc_cycles.find(pc);
        const uint64_t cy = it == profile.pc_cycles.end() ? 0 : it->second;
        const double frac = double(cy) / total;
        std::snprintf(buf, sizeof(buf), "%c %6.2f%% %12llu  %08x:  %s\n",
                      frac >= hot_frac ? '*' : ' ', 100.0 * frac,
                      (unsigned long long)cy, pc,
                      rv::disassemble(image[i], pc).c_str());
        os << buf;
    }
    // Cycles attributed outside the image (trap handlers, bad jumps).
    for (const auto& [pc, cy] : profile.pc_cycles) {
        if (pc >= base && pc < base + uint32_t(image.size()) * 4) continue;
        const double frac = double(cy) / total;
        std::snprintf(buf, sizeof(buf), "%c %6.2f%% %12llu  %08x:  <outside image>\n",
                      frac >= hot_frac ? '*' : ' ', 100.0 * frac,
                      (unsigned long long)cy, pc);
        os << buf;
    }
    return os.str();
}

std::vector<WcetCrossCheck>
wcet_cross_check(const std::vector<CoreProfile>& profiles,
                 const verify::Certificate& cert) {
    std::vector<WcetCrossCheck> out;
    for (const auto& p : profiles) {
        WcetCrossCheck c;
        c.core = p.name;
        c.observed = p.instret;
        c.bound = cert.wcet_instructions;
        c.applicable = p.halted && cert.wcet_bounded;
        c.ok = !c.applicable || c.observed <= c.bound;
        out.push_back(std::move(c));
    }
    return out;
}

std::string
profile_json(const CoreProfile& profile) {
    JsonWriter w;
    w.begin_object();
    w.key("name").value(profile.name);
    w.key("cycles").value(profile.cycles);
    w.key("instret").value(profile.instret);
    w.key("halted").value(profile.halted);
    w.key("pcs").begin_array();
    for (const auto& [pc, cy] : profile.pc_cycles) {
        w.begin_object();
        w.key("pc").value(uint64_t(pc));
        w.key("cycles").value(cy);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

}  // namespace rosebud::obs
