#include "obs/telemetry.h"

#include "core/system.h"
#include "lint/netlist.h"
#include "sim/kernel.h"
#include "sim/stats.h"

namespace rosebud::obs {

namespace {

unsigned
bits_for(size_t max_value) {
    unsigned bits = 1;
    while ((uint64_t(1) << bits) <= max_value && bits < 32) ++bits;
    return bits;
}

}  // namespace

Telemetry::Telemetry() : Telemetry(Config{}) {}

Telemetry::Telemetry(Config cfg) : cfg_(std::move(cfg)) {}

Telemetry::~Telemetry() { detach(); }

void
Telemetry::attach(System& sys) {
    kernel_ = &sys.kernel();
    stats_ = &sys.stats();
    // Pre-seed every declared net so fully idle nets still show up with an
    // exact idle count (and so waveform widths come from declared depths).
    for (const auto& rec : kernel_->nets()) {
        NetStats& ns = nets_[rec.name];
        ns.capacity = std::max(ns.capacity, rec.depth);
    }
    for (const auto& name : cfg_.watch_counters) counter_prev_[name] = stats_->get(name);
    kernel_->set_telemetry(this);
}

void
Telemetry::detach() {
    if (kernel_ && kernel_->telemetry() == this) kernel_->set_telemetry(nullptr);
    kernel_ = nullptr;
    stats_ = nullptr;
}

Telemetry::NetStats&
Telemetry::net(const std::string& name) {
    auto it = nets_.find(name);
    if (it != nets_.end()) return it->second;
    // First sighting mid-run (a net created after attach, e.g. by a
    // reconfigured RPU): backfill the cycles it was not observed as idle so
    // its four buckets still sum to cycles_observed().
    NetStats& ns = nets_[name];
    ns.idle = cycles_observed_;
    if (kernel_) {
        if (const sim::NetRecord* rec = lint::find_net(*kernel_, name)) {
            ns.capacity = rec->depth;
        }
    }
    return ns;
}

void
Telemetry::net_event(const std::string& name, NetEvent ev) {
    NetStats& ns = net(name);
    switch (ev) {
    case NetEvent::kPushOk:
        ++ns.pushes;
        ns.f_moved = true;
        break;
    case NetEvent::kPushBlocked:
        ++ns.blocked;
        ns.f_blocked = true;
        break;
    case NetEvent::kPop:
        ++ns.pops;
        ns.f_moved = true;
        break;
    case NetEvent::kPollEmpty:
        ++ns.polls_empty;
        ns.f_polled = true;
        break;
    }
}

void
Telemetry::net_occupancy(const std::string& name, size_t occupancy, size_t capacity) {
    NetStats& ns = net(name);
    ns.occ = occupancy;
    ns.peak_occ = std::max(ns.peak_occ, occupancy);
    if (capacity) ns.capacity = capacity;
}

void
Telemetry::capture_net(const std::string& name, NetStats& ns, NetState state,
                       uint64_t completed_cycle) {
    const uint64_t t = uint64_t(sim::cycles_to_ns(completed_cycle));
    if (ns.sig_state < 0) {
        ns.sig_state = vcd_.add_signal(name + ".state", 2);
        // Eventless links never report occupancy; give them no occ trace.
        ns.sig_occ = vcd_.add_signal(name + ".occ",
                                     bits_for(std::max(ns.capacity, ns.peak_occ)));
    }
    if (unsigned(state) != ns.last_state) {
        vcd_.change(t, ns.sig_state, uint64_t(state));
        ns.last_state = unsigned(state);
    }
    if (uint64_t(ns.occ) != ns.last_occ) {
        vcd_.change(t, ns.sig_occ, uint64_t(ns.occ));
        ns.last_occ = uint64_t(ns.occ);
    }
}

void
Telemetry::end_cycle(uint64_t completed) {
    for (auto& [name, ns] : nets_) {
        NetState state;
        if (ns.f_blocked) {
            state = NetState::kStalled;
            ++ns.stalled;
            ++ns.e_stalled;
        } else if (ns.f_moved) {
            state = NetState::kBusy;
            ++ns.busy;
            ++ns.e_busy;
        } else if (ns.f_polled) {
            state = NetState::kStarved;
            ++ns.starved;
        } else {
            state = NetState::kIdle;
            ++ns.idle;
        }
        ns.f_moved = ns.f_blocked = ns.f_polled = false;
        if (cfg_.capture_vcd) capture_net(name, ns, state, completed);
    }
    ++cycles_observed_;
    if (cfg_.epoch_cycles && cycles_observed_ % cfg_.epoch_cycles == 0) close_epoch();
}

void
Telemetry::close_epoch() {
    Epoch ep;
    ep.end_cycle = cycles_observed_;
    // Per-component busy/stall fractions: average over the component's
    // instrumented nets (each net contributes epoch_cycles observations).
    std::map<std::string, uint64_t> comp_busy, comp_stalled, comp_nets;
    for (auto& [name, ns] : nets_) {
        const std::string comp = lint::component_of(name);
        comp_busy[comp] += ns.e_busy;
        comp_stalled[comp] += ns.e_stalled;
        comp_nets[comp] += 1;
        ns.e_busy = ns.e_stalled = 0;
    }
    for (const auto& [comp, n] : comp_nets) {
        const double denom = double(n) * double(cfg_.epoch_cycles);
        ep.busy_frac[comp] = double(comp_busy[comp]) / denom;
        ep.stall_frac[comp] = double(comp_stalled[comp]) / denom;
    }
    if (stats_) {
        for (const auto& name : cfg_.watch_counters) {
            const uint64_t now = stats_->get(name);
            ep.counter_delta[name] = now - counter_prev_[name];
            counter_prev_[name] = now;
        }
    }
    epochs_.push_back(std::move(ep));
    if (cfg_.max_epochs && epochs_.size() > cfg_.max_epochs) coarsen_epochs();
}

void
Telemetry::coarsen_epochs() {
    // Merge adjacent pairs: each fraction averages weighted by how many
    // base epochs the entries already cover, counter deltas sum, so the
    // coarse series conserves the totals of the fine one.
    std::vector<Epoch> merged;
    merged.reserve(epochs_.size() / 2 + 1);
    size_t i = 0;
    for (; i + 1 < epochs_.size(); i += 2) {
        Epoch& a = epochs_[i];
        Epoch& b = epochs_[i + 1];
        Epoch m;
        m.end_cycle = b.end_cycle;
        m.span = a.span + b.span;
        const double wa = double(a.span) / double(m.span);
        const double wb = double(b.span) / double(m.span);
        for (const auto& [comp, f] : a.busy_frac) m.busy_frac[comp] += f * wa;
        for (const auto& [comp, f] : b.busy_frac) m.busy_frac[comp] += f * wb;
        for (const auto& [comp, f] : a.stall_frac) m.stall_frac[comp] += f * wa;
        for (const auto& [comp, f] : b.stall_frac) m.stall_frac[comp] += f * wb;
        for (const auto& [name, d] : a.counter_delta) m.counter_delta[name] += d;
        for (const auto& [name, d] : b.counter_delta) m.counter_delta[name] += d;
        merged.push_back(std::move(m));
    }
    if (i < epochs_.size()) merged.push_back(std::move(epochs_.back()));
    epochs_.swap(merged);
}

}  // namespace rosebud::obs
