/// \file
/// Chrome-trace / Perfetto JSON exporter. Renders PacketTracer lifecycles
/// as async spans (one track per packet id, one span per pipeline stage
/// crossed) and the Telemetry epoch series as counter tracks (per-component
/// busy fraction), producing a `trace.json` loadable in ui.perfetto.dev or
/// chrome://tracing. Timestamps are microseconds of simulated time
/// (cycle x 4 ns at 250 MHz).

#ifndef ROSEBUD_OBS_PERFETTO_H
#define ROSEBUD_OBS_PERFETTO_H

#include <cstddef>
#include <string>

namespace rosebud {
class PacketTracer;
}

namespace rosebud::obs {

class Telemetry;

/// Serialize up to `max_packets` packet lifecycles (lowest ids first) and,
/// when `telem` is non-null, its utilization epochs. Returns the complete
/// JSON document ({"traceEvents": [...]}).
std::string trace_json(const PacketTracer& tracer, const Telemetry* telem = nullptr,
                       size_t max_packets = 4096);

}  // namespace rosebud::obs

#endif  // ROSEBUD_OBS_PERFETTO_H
