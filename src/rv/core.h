/// \file
/// RV32IM soft-core interpreter with a VexRiscv-calibrated timing model.
///
/// One Core instance lives inside each RPU. The core executes one
/// instruction per `tick` unless stalled; instruction costs mirror a small
/// 5-stage FPGA pipeline (1-cycle ALU, taken-branch flush, multi-cycle
/// loads depending on target memory, iterative divide). The memory system
/// is abstracted behind Bus; a bus access may also *retry* (e.g. a store to
/// a full broadcast FIFO), in which case the core re-issues the same
/// instruction next cycle — exactly the paper's "a write to the broadcast
/// memory region will be blocked until there is room in the FIFO".
///
/// Timing calibration (see DESIGN.md): the paper reports that the minimal
/// forwarder loop — read a descriptor and send it back — takes 16 cycles.
/// With the costs below, the 8-instruction forwarder firmware costs exactly
/// 16 cycles per iteration, reproducing the 250/125 MPPS caps of Section 6.

#ifndef ROSEBUD_RV_CORE_H
#define ROSEBUD_RV_CORE_H

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "rv/isa.h"

namespace rosebud::rv {

/// Instruction cost table (cycles, including the issue cycle).
struct CostModel {
    uint32_t alu = 1;
    uint32_t branch_not_taken = 1;
    uint32_t branch_taken = 2;   ///< pipeline flush
    uint32_t jump = 2;           ///< jal/jalr
    uint32_t mul = 5;
    uint32_t div = 35;           ///< iterative divider
    uint32_t csr = 1;
    // Load/store costs come from the Bus (they depend on the target
    // memory region: BRAM, URAM, MMIO).
};

/// Abstract memory system seen by the core.
class Bus {
 public:
    virtual ~Bus() = default;

    /// Result of a load/store.
    struct Access {
        uint32_t value = 0;   ///< loaded value (zero-extended raw bytes)
        uint32_t cycles = 1;  ///< total cycles consumed by the instruction
        bool retry = false;   ///< true: re-issue next cycle (blocked)
        bool fault = false;   ///< true: unmapped/bad access -> core traps
    };

    /// Load `size` bytes (1, 2 or 4) at `addr`.
    virtual Access load(uint32_t addr, uint32_t size) = 0;

    /// Store `size` bytes (1, 2 or 4) of `value` at `addr`.
    virtual Access store(uint32_t addr, uint32_t size, uint32_t value) = 0;

    /// Instruction fetch (always 32-bit). Default: a plain load.
    virtual uint32_t fetch(uint32_t addr) = 0;
};

/// Machine-mode CSRs implemented for interrupt support.
/// The core takes a machine external interrupt when the IRQ line is high,
/// MIE is set, and a trap is not already active — saving pc to mepc and
/// vectoring to mtvec, exactly enough for the paper's firmware patterns
/// (timer watchdogs, host poke handlers).
struct TrapCsrs {
    uint32_t mstatus = 0;  ///< bit 3 = MIE, bit 7 = MPIE
    uint32_t mtvec = 0;
    uint32_t mepc = 0;
    uint32_t mcause = 0;
};

/// The interpreter.
class Core {
 public:
    Core(std::string name, Bus& bus, CostModel costs = CostModel{});

    /// Reset architectural state and start executing at `pc`.
    void reset(uint32_t pc);

    /// Advance one clock cycle (executes an instruction if not stalled).
    void tick();

    /// Run until halted or `max_cycles` elapse. Returns cycles consumed.
    /// (Convenience for firmware unit tests; the RPU uses tick().)
    uint64_t run(uint64_t max_cycles);

    /// True after ebreak/ecall or a bus fault.
    bool halted() const { return halted_; }

    /// Force-halt the core (host-side stop; memories are untouched).
    void stop() { halted_ = true; }

    /// Level-sensitive external interrupt line (wired by the RPU to the
    /// masked host-interrupt and timer status).
    void set_irq(bool level) { irq_line_ = level; }

    const TrapCsrs& csrs() const { return csrs_; }

    /// True if the halt was caused by a fault rather than ebreak/ecall.
    bool faulted() const { return faulted_; }

    uint32_t pc() const { return pc_; }
    uint32_t reg(Reg r) const { return regs_[r]; }
    void set_reg(Reg r, uint32_t v) {
        if (r != zero) regs_[r] = v;
    }

    /// Cycles since reset (drives the cycle CSR).
    uint64_t cycles() const { return cycles_; }

    /// Instructions retired since reset.
    uint64_t instret() const { return instret_; }

    // --- PC-sampling profiler ------------------------------------------------
    //
    // When enabled, every non-halted cycle is attributed to the PC of the
    // instruction consuming it: the issue cycle to the fetched PC, stall
    // cycles (multi-cycle ALU/div, memory latency) to the PC that issued
    // them, and bus-retry cycles (a store blocked on a full FIFO) to the
    // retrying PC — so a firmware spin on the broadcast region shows up as
    // cycles on the store, exactly like `perf annotate`. Off by default;
    // the only cost when off is one branch per tick.

    /// Enable/disable cycle attribution (state is kept across reset()).
    void set_profile(bool on) { profile_ = on; }
    bool profile() const { return profile_; }

    /// Per-PC cycle histogram; the values sum to profiled_cycles().
    const std::map<uint32_t, uint64_t>& pc_histogram() const { return pc_hist_; }

    /// Non-halted cycles observed while profiling was enabled.
    uint64_t profiled_cycles() const { return profiled_cycles_; }

    void clear_profile() {
        pc_hist_.clear();
        profiled_cycles_ = 0;
    }

    const std::string& name() const { return name_; }

 private:
    void execute();

    std::string name_;
    Bus& bus_;
    CostModel costs_;

    std::array<uint32_t, 32> regs_{};
    uint32_t pc_ = 0;
    uint64_t cycles_ = 0;
    uint64_t instret_ = 0;
    uint32_t stall_ = 0;
    bool halted_ = true;
    bool faulted_ = false;
    bool irq_line_ = false;
    TrapCsrs csrs_;

    bool profile_ = false;
    uint32_t issue_pc_ = 0;  ///< PC that issued the in-flight instruction
    uint64_t profiled_cycles_ = 0;
    std::map<uint32_t, uint64_t> pc_hist_;
};

}  // namespace rosebud::rv

#endif  // ROSEBUD_RV_CORE_H
