/// \file
/// RV32IM soft-core interpreter with a VexRiscv-calibrated timing model.
///
/// One Core instance lives inside each RPU. The core executes one
/// instruction per `tick` unless stalled; instruction costs mirror a small
/// 5-stage FPGA pipeline (1-cycle ALU, taken-branch flush, multi-cycle
/// loads depending on target memory, iterative divide). The memory system
/// is abstracted behind Bus; a bus access may also *retry* (e.g. a store to
/// a full broadcast FIFO), in which case the core re-issues the same
/// instruction next cycle — exactly the paper's "a write to the broadcast
/// memory region will be blocked until there is room in the FIFO".
///
/// Timing calibration (see DESIGN.md): the paper reports that the minimal
/// forwarder loop — read a descriptor and send it back — takes 16 cycles.
/// With the costs below, the 8-instruction forwarder firmware costs exactly
/// 16 cycles per iteration, reproducing the 250/125 MPPS caps of Section 6.
///
/// Host-speed note (DESIGN.md §11): the interpreter predecodes each
/// firmware word once into a dense `Decoded` dispatch record and executes
/// from that cache on every subsequent issue. Cold and warm paths run the
/// *same* record through the same handler, so cached execution is
/// instruction-for-instruction identical to re-decoding. The cache is
/// invalidated on reset()/firmware reload, on `fence.i`, and (by the bus
/// owner) on stores into the code region.

#ifndef ROSEBUD_RV_CORE_H
#define ROSEBUD_RV_CORE_H

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rv/isa.h"

namespace rosebud::rv {

/// Instruction cost table (cycles, including the issue cycle).
struct CostModel {
    uint32_t alu = 1;
    uint32_t branch_not_taken = 1;
    uint32_t branch_taken = 2;   ///< pipeline flush
    uint32_t jump = 2;           ///< jal/jalr
    uint32_t mul = 5;
    uint32_t div = 35;           ///< iterative divider
    uint32_t csr = 1;
    // Load/store costs come from the Bus (they depend on the target
    // memory region: BRAM, URAM, MMIO).
};

/// Abstract memory system seen by the core.
class Bus {
 public:
    virtual ~Bus() = default;

    /// Result of a load/store.
    struct Access {
        uint32_t value = 0;   ///< loaded value (zero-extended raw bytes)
        uint32_t cycles = 1;  ///< total cycles consumed by the instruction
        bool retry = false;   ///< true: re-issue next cycle (blocked)
        bool fault = false;   ///< true: unmapped/bad access -> core traps
    };

    /// Load `size` bytes (1, 2 or 4) at `addr`.
    virtual Access load(uint32_t addr, uint32_t size) = 0;

    /// Store `size` bytes (1, 2 or 4) of `value` at `addr`.
    virtual Access store(uint32_t addr, uint32_t size, uint32_t value) = 0;

    /// Instruction fetch (always 32-bit). Default: a plain load.
    /// Must be side-effect free and depend only on `addr >> 2`: with
    /// predecoding enabled the core fetches each word at most once per
    /// cache fill, not once per issue.
    virtual uint32_t fetch(uint32_t addr) = 0;

    /// Classification for the idle-loop watcher (see Core::set_idle_watch):
    /// return false for any address whose load may return different values
    /// over time while the bus owner's inputs are otherwise frozen (e.g. a
    /// cycle-counter register) or whose read has side effects (a popping
    /// MMIO register). Safe default: loads from plain memory are stable.
    virtual bool watch_safe_read(uint32_t addr) const {
        (void)addr;
        return true;
    }
};

/// Machine-mode CSRs implemented for interrupt support.
/// The core takes a machine external interrupt when the IRQ line is high,
/// MIE is set, and a trap is not already active — saving pc to mepc and
/// vectoring to mtvec, exactly enough for the paper's firmware patterns
/// (timer watchdogs, host poke handlers).
struct TrapCsrs {
    uint32_t mstatus = 0;  ///< bit 3 = MIE, bit 7 = MPIE
    uint32_t mtvec = 0;
    uint32_t mepc = 0;
    uint32_t mcause = 0;
};

/// One firmware word, decoded once into a dense dispatch record: a byte
/// opcode tag plus pre-extracted register indices and immediate, so the
/// hot interpreter loop is a load plus one dense switch instead of a full
/// field extraction per issue.
struct Decoded {
    enum Op : uint8_t {
        kInvalid = 0,  ///< cache slot empty — never produced by decode()
        kLui, kAuipc, kJal, kJalr,
        kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
        kLb, kLh, kLw, kLbu, kLhu, kLoadBad,
        kSb, kSh, kSw,
        kAddi, kSlli, kSlti, kSltiu, kXori, kSrli, kSrai, kOri, kAndi,
        kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
        kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
        kFence,   ///< fence — no-op in this memory model
        kFenceI,  ///< fence.i — flushes the decoded-instruction cache
        kMret, kHalt, kCsr,
        kIllegal,  ///< traps at issue (bad funct3 / unknown major opcode)
    };
    uint8_t op = kInvalid;
    uint8_t aux = 0;  ///< funct3 (load/store width, CSR op)
    Reg rd = zero;
    Reg rs1 = zero;
    Reg rs2 = zero;
    int32_t imm = 0;   ///< the immediate of the op's encoding format
    uint32_t raw = 0;  ///< original word (CSR index, mret check)
};

/// The interpreter.
class Core {
 public:
    Core(std::string name, Bus& bus, CostModel costs = CostModel{});

    /// Reset architectural state and start executing at `pc`.
    /// Also flushes the decoded-instruction cache (firmware reload).
    void reset(uint32_t pc);

    /// Advance one clock cycle (executes an instruction if not stalled).
    void tick();

    /// Run until halted or `max_cycles` elapse. Returns cycles consumed.
    /// (Convenience for firmware unit tests; the RPU uses tick().)
    uint64_t run(uint64_t max_cycles);

    /// True after ebreak/ecall or a bus fault.
    bool halted() const { return halted_; }

    /// Force-halt the core (host-side stop; memories are untouched).
    void stop() { halted_ = true; }

    /// Level-sensitive external interrupt line (wired by the RPU to the
    /// masked host-interrupt and timer status).
    void set_irq(bool level) { irq_line_ = level; }

    const TrapCsrs& csrs() const { return csrs_; }

    /// True if the halt was caused by a fault rather than ebreak/ecall.
    bool faulted() const { return faulted_; }

    uint32_t pc() const { return pc_; }
    uint32_t reg(Reg r) const { return regs_[r]; }
    void set_reg(Reg r, uint32_t v) {
        if (r != zero) regs_[r] = v;
    }

    /// Cycles since reset (drives the cycle CSR).
    uint64_t cycles() const { return cycles_; }

    /// Instructions retired since reset.
    uint64_t instret() const { return instret_; }

    // --- predecoded dispatch -------------------------------------------------

    /// Decode one instruction word into its dispatch record. Pure; exposed
    /// for tests and tooling.
    static Decoded decode(uint32_t insn);

    /// Enable/disable the decoded-instruction cache (on by default). With
    /// it off the core re-decodes on every issue — bit-identical behaviour,
    /// used as the reference mode by bench_simspeed.
    void set_predecode(bool on) { predecode_ = on; }
    bool predecode() const { return predecode_; }

    /// Drop every cached record (firmware reload, fence.i).
    void icache_invalidate();

    /// Drop cached records overlapping [addr, addr+len) — call on stores
    /// into the code region (self-modifying firmware).
    void icache_invalidate(uint32_t addr, uint32_t len);

    // --- idle-loop watcher ---------------------------------------------------
    //
    // While the watcher is armed (the bus owner has verified that every
    // core-visible input is frozen), the core snapshots its architectural
    // state (pc, regs, trap CSRs) at an anchor and compares on the next
    // revisit of the anchor PC. An exact match proves a periodic fixed
    // point: with frozen inputs, pure loads, no stores and no CSR access
    // inside the window, the next `period` cycles replay bit-identically
    // forever. The owner may then sleep and later catch up arithmetically
    // (whole periods) plus a short replay of the remainder — exact, because
    // the replayed instructions observe the same frozen inputs they would
    // have observed live. Stores, loads the bus flags unsafe
    // (Bus::watch_safe_read), and CSR instructions abort the window.

    /// Arm/disarm the watcher. Arming resets detection; disarming clears
    /// any proven loop (inputs are no longer frozen).
    void set_idle_watch(bool on);
    bool idle_watch() const { return idle_watch_; }

    /// True once a periodic fixed point has been proven.
    bool stable_loop() const { return loop_stable_; }

    /// Cycles per proven loop iteration (valid while stable_loop()).
    uint64_t loop_period() const { return loop_period_; }

    /// Account `n` skipped cycles: a halted core just advances its cycle
    /// counter; a core in a proven stable loop advances whole periods
    /// arithmetically and replays the remainder tick-by-tick.
    void skip_idle_cycles(uint64_t n);

    // --- PC-sampling profiler ------------------------------------------------
    //
    // When enabled, every non-halted cycle is attributed to the PC of the
    // instruction consuming it: the issue cycle to the fetched PC, stall
    // cycles (multi-cycle ALU/div, memory latency) to the PC that issued
    // them, and bus-retry cycles (a store blocked on a full FIFO) to the
    // retrying PC — so a firmware spin on the broadcast region shows up as
    // cycles on the store, exactly like `perf annotate`. Off by default;
    // the only cost when off is one branch per tick.

    /// Enable/disable cycle attribution (state is kept across reset()).
    void set_profile(bool on) { profile_ = on; }
    bool profile() const { return profile_; }

    /// Per-PC cycle histogram; the values sum to profiled_cycles().
    const std::map<uint32_t, uint64_t>& pc_histogram() const { return pc_hist_; }

    /// Non-halted cycles observed while profiling was enabled.
    uint64_t profiled_cycles() const { return profiled_cycles_; }

    void clear_profile() {
        pc_hist_.clear();
        profiled_cycles_ = 0;
    }

    const std::string& name() const { return name_; }

 private:
    /// Decoded-cache coverage: 64 KB of code — the RPU imem size. PCs
    /// beyond it fall back to decode-on-the-fly (preserving e.g. the
    /// off-image ebreak convention of the test buses).
    static constexpr uint32_t kIcacheWords = 16384;

    /// Longest loop (in cycles) the watcher will try to prove periodic.
    /// Poll loops are a handful of instructions; a window this small keeps
    /// the snapshot/compare cost negligible.
    static constexpr uint64_t kMaxWatchPeriod = 64;

    void execute();
    /// Fetch+decode via the cache (fills lazily). Returns by value so a
    /// handler that invalidates the cache mid-instruction (fence.i, a
    /// store into its own code) cannot dangle.
    Decoded fetch_decoded(uint32_t pc);
    void exec_decoded(const Decoded& d);
    void watch_observe();

    std::string name_;
    Bus& bus_;
    CostModel costs_;

    std::array<uint32_t, 32> regs_{};
    uint32_t pc_ = 0;
    uint64_t cycles_ = 0;
    uint64_t instret_ = 0;
    uint32_t stall_ = 0;
    bool halted_ = true;
    bool faulted_ = false;
    bool irq_line_ = false;
    TrapCsrs csrs_;

    bool predecode_ = true;
    std::vector<Decoded> icache_;  ///< indexed pc >> 2; allocated lazily

    bool idle_watch_ = false;
    bool watch_dirty_ = false;       ///< impure access seen since the anchor
    bool watch_have_anchor_ = false;
    bool loop_stable_ = false;
    uint32_t watch_pc_ = 0;
    std::array<uint32_t, 32> watch_regs_{};
    TrapCsrs watch_csrs_;
    uint64_t watch_cycles_ = 0;   ///< cycles() at the anchor
    uint64_t watch_instret_ = 0;  ///< instret() at the anchor
    uint64_t loop_period_ = 0;    ///< cycles per proven iteration
    uint64_t loop_instret_ = 0;   ///< instructions per proven iteration

    bool profile_ = false;
    uint32_t issue_pc_ = 0;  ///< PC that issued the in-flight instruction
    uint64_t profiled_cycles_ = 0;
    std::map<uint32_t, uint64_t> pc_hist_;
};

}  // namespace rosebud::rv

#endif  // ROSEBUD_RV_CORE_H
