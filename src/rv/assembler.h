/// \file
/// RV32IM assembler eDSL.
///
/// Firmware in this repository is written as C++ programs that emit real
/// RISC-V machine code through this assembler (no cross-compiler is
/// available offline; see DESIGN.md). It supports forward label references
/// (resolved at assemble() time), all RV32IM instructions, the usual
/// pseudo-instructions, and read access to the implemented CSRs.

#ifndef ROSEBUD_RV_ASSEMBLER_H
#define ROSEBUD_RV_ASSEMBLER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rv/isa.h"

namespace rosebud::rv {

/// Emits a single contiguous code image based at `base` (default 0).
class Assembler {
 public:
    explicit Assembler(uint32_t base = 0) : base_(base) {}

    /// Define a label at the current position. Fatal on redefinition.
    void label(const std::string& name);

    /// Address a label will have (fatal if not yet defined).
    uint32_t label_addr(const std::string& name) const;

    /// Current emission address.
    uint32_t here() const { return base_ + uint32_t(words_.size()) * 4; }

    // R-type ALU.
    void add(Reg rd, Reg rs1, Reg rs2);
    void sub(Reg rd, Reg rs1, Reg rs2);
    void sll(Reg rd, Reg rs1, Reg rs2);
    void slt(Reg rd, Reg rs1, Reg rs2);
    void sltu(Reg rd, Reg rs1, Reg rs2);
    void xor_(Reg rd, Reg rs1, Reg rs2);
    void srl(Reg rd, Reg rs1, Reg rs2);
    void sra(Reg rd, Reg rs1, Reg rs2);
    void or_(Reg rd, Reg rs1, Reg rs2);
    void and_(Reg rd, Reg rs1, Reg rs2);

    // M extension.
    void mul(Reg rd, Reg rs1, Reg rs2);
    void mulh(Reg rd, Reg rs1, Reg rs2);
    void mulhsu(Reg rd, Reg rs1, Reg rs2);
    void mulhu(Reg rd, Reg rs1, Reg rs2);
    void div(Reg rd, Reg rs1, Reg rs2);
    void divu(Reg rd, Reg rs1, Reg rs2);
    void rem(Reg rd, Reg rs1, Reg rs2);
    void remu(Reg rd, Reg rs1, Reg rs2);

    // I-type ALU.
    void addi(Reg rd, Reg rs1, int32_t imm);
    void slti(Reg rd, Reg rs1, int32_t imm);
    void sltiu(Reg rd, Reg rs1, int32_t imm);
    void xori(Reg rd, Reg rs1, int32_t imm);
    void ori(Reg rd, Reg rs1, int32_t imm);
    void andi(Reg rd, Reg rs1, int32_t imm);
    void slli(Reg rd, Reg rs1, uint32_t shamt);
    void srli(Reg rd, Reg rs1, uint32_t shamt);
    void srai(Reg rd, Reg rs1, uint32_t shamt);

    // Loads/stores: offset(rs1) addressing.
    void lb(Reg rd, int32_t offset, Reg rs1);
    void lh(Reg rd, int32_t offset, Reg rs1);
    void lw(Reg rd, int32_t offset, Reg rs1);
    void lbu(Reg rd, int32_t offset, Reg rs1);
    void lhu(Reg rd, int32_t offset, Reg rs1);
    void sb(Reg rs2, int32_t offset, Reg rs1);
    void sh(Reg rs2, int32_t offset, Reg rs1);
    void sw(Reg rs2, int32_t offset, Reg rs1);

    // Control flow (label targets; forward references allowed).
    void beq(Reg rs1, Reg rs2, const std::string& target);
    void bne(Reg rs1, Reg rs2, const std::string& target);
    void blt(Reg rs1, Reg rs2, const std::string& target);
    void bge(Reg rs1, Reg rs2, const std::string& target);
    void bltu(Reg rs1, Reg rs2, const std::string& target);
    void bgeu(Reg rs1, Reg rs2, const std::string& target);
    void jal(Reg rd, const std::string& target);
    void jalr(Reg rd, Reg rs1, int32_t imm);

    // U-type.
    void lui(Reg rd, int32_t imm_31_12);
    void auipc(Reg rd, int32_t imm_31_12);

    // System.
    void ecall();
    void ebreak();
    void fence();
    /// fence.i — instruction-fetch barrier; the core flushes its decoded
    /// cache, making preceding stores to the code region visible to fetch.
    void fence_i();
    /// csrrs rd, csr, rs1 — used by firmware as rdcycle and friends.
    void csrrs(Reg rd, uint32_t csr, Reg rs1);
    /// csrrw rd, csr, rs1 — CSR write (interrupt setup).
    void csrrw(Reg rd, uint32_t csr, Reg rs1);
    /// csrrc rd, csr, rs1 — CSR bit clear.
    void csrrc(Reg rd, uint32_t csr, Reg rs1);
    /// mret — return from a machine trap handler.
    void mret();

    // Pseudo-instructions.
    void nop();
    void mv(Reg rd, Reg rs);
    void li(Reg rd, int32_t imm);  ///< 1 or 2 instructions
    void j(const std::string& target);
    void ret();
    void call(const std::string& target);  ///< jal ra, target
    void beqz(Reg rs, const std::string& target);
    void bnez(Reg rs, const std::string& target);
    void rdcycle(Reg rd) { csrrs(rd, kCsrCycle, zero); }
    void rdcycleh(Reg rd) { csrrs(rd, kCsrCycleH, zero); }
    void rdinstret(Reg rd) { csrrs(rd, kCsrInstret, zero); }

    /// Emit a raw word (e.g. data embedded in the code image).
    void word(uint32_t w) { words_.push_back(w); }

    /// Resolve fixups and return the image. Fatal on undefined labels or
    /// out-of-range branch offsets.
    std::vector<uint32_t> assemble();

    /// Number of instructions emitted so far.
    size_t instruction_count() const { return words_.size(); }

 private:
    enum class FixKind { kBranch, kJal };
    struct Fixup {
        size_t index;       ///< word index to patch
        std::string label;
        FixKind kind;
    };

    void emit(uint32_t w) { words_.push_back(w); }
    void emit_branch(Reg rs1, Reg rs2, uint32_t funct3, const std::string& target);

    uint32_t base_;
    std::vector<uint32_t> words_;
    std::map<std::string, uint32_t> labels_;
    std::vector<Fixup> fixups_;
};

}  // namespace rosebud::rv

#endif  // ROSEBUD_RV_ASSEMBLER_H
