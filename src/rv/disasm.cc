#include "rv/disasm.h"

#include <cstdarg>
#include <cstdio>

#include "rv/isa.h"

namespace rosebud::rv {

namespace {

const char* kRegNames[32] = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1", "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
};

std::string
fmt(const char* f, ...) {
    char buf[128];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

const char*
reg(Reg r) {
    return kRegNames[r & 31];
}

}  // namespace

std::string
disassemble(uint32_t insn, uint32_t pc) {
    const uint32_t opcode = dec_opcode(insn);
    const Reg rd = dec_rd(insn);
    const Reg rs1 = dec_rs1(insn);
    const Reg rs2 = dec_rs2(insn);
    const uint32_t f3 = dec_funct3(insn);
    const uint32_t f7 = dec_funct7(insn);

    switch (opcode) {
    case kOpLui: return fmt("lui %s, 0x%x", reg(rd), uint32_t(dec_imm_u(insn)) >> 12);
    case kOpAuipc: return fmt("auipc %s, 0x%x", reg(rd), uint32_t(dec_imm_u(insn)) >> 12);
    case kOpJal: return fmt("jal %s, 0x%x", reg(rd), pc + uint32_t(dec_imm_j(insn)));
    case kOpJalr: return fmt("jalr %s, %d(%s)", reg(rd), dec_imm_i(insn), reg(rs1));

    case kOpBranch: {
        static const char* names[8] = {"beq", "bne", "?", "?", "blt", "bge", "bltu", "bgeu"};
        return fmt("%s %s, %s, 0x%x", names[f3], reg(rs1), reg(rs2),
                   pc + uint32_t(dec_imm_b(insn)));
    }

    case kOpLoad: {
        static const char* names[8] = {"lb", "lh", "lw", "?", "lbu", "lhu", "?", "?"};
        return fmt("%s %s, %d(%s)", names[f3], reg(rd), dec_imm_i(insn), reg(rs1));
    }

    case kOpStore: {
        static const char* names[8] = {"sb", "sh", "sw", "?", "?", "?", "?", "?"};
        return fmt("%s %s, %d(%s)", names[f3], reg(rs2), dec_imm_s(insn), reg(rs1));
    }

    case kOpImm: {
        int32_t imm = dec_imm_i(insn);
        switch (f3) {
        case 0: return fmt("addi %s, %s, %d", reg(rd), reg(rs1), imm);
        case 1: return fmt("slli %s, %s, %d", reg(rd), reg(rs1), imm & 31);
        case 2: return fmt("slti %s, %s, %d", reg(rd), reg(rs1), imm);
        case 3: return fmt("sltiu %s, %s, %d", reg(rd), reg(rs1), imm);
        case 4: return fmt("xori %s, %s, %d", reg(rd), reg(rs1), imm);
        case 5:
            return fmt("%s %s, %s, %d", (insn & (1u << 30)) ? "srai" : "srli", reg(rd),
                       reg(rs1), imm & 31);
        case 6: return fmt("ori %s, %s, %d", reg(rd), reg(rs1), imm);
        case 7: return fmt("andi %s, %s, %d", reg(rd), reg(rs1), imm);
        }
        break;
    }

    case kOpReg: {
        const char* name = "?";
        if (f7 == 0x01) {
            static const char* m[8] = {"mul", "mulh", "mulhsu", "mulhu",
                                       "div", "divu", "rem", "remu"};
            name = m[f3];
        } else if (f7 == 0x20) {
            name = f3 == 0 ? "sub" : (f3 == 5 ? "sra" : "?");
        } else {
            static const char* i[8] = {"add", "sll", "slt", "sltu", "xor", "srl", "or", "and"};
            name = i[f3];
        }
        return fmt("%s %s, %s, %s", name, reg(rd), reg(rs1), reg(rs2));
    }

    case kOpMiscMem: return "fence";

    case kOpSystem:
        if (f3 == 0) {
            if (insn == 0x00000073) return "ecall";
            if (insn == 0x00100073) return "ebreak";
            if (insn == 0x30200073) return "mret";
            break;
        }
        if (f3 >= 1 && f3 <= 3) {
            static const char* names[4] = {"?", "csrrw", "csrrs", "csrrc"};
            return fmt("%s %s, 0x%x, %s", names[f3], reg(rd), insn >> 20, reg(rs1));
        }
        break;
    }
    return fmt(".word 0x%08x", insn);
}

std::string
disassemble_image(const std::vector<uint32_t>& words, uint32_t base) {
    std::string out;
    for (size_t i = 0; i < words.size(); ++i) {
        uint32_t pc = base + uint32_t(i) * 4;
        out += fmt("%08x: %08x  ", pc, words[i]);
        out += disassemble(words[i], pc);
        out += "\n";
    }
    return out;
}

}  // namespace rosebud::rv
