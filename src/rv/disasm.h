/// \file
/// RV32IM disassembler — used by the debugging tooling (host-side memory
/// dumps of RPU instruction memory) and by assembler round-trip tests.

#ifndef ROSEBUD_RV_DISASM_H
#define ROSEBUD_RV_DISASM_H

#include <cstdint>
#include <string>
#include <vector>

namespace rosebud::rv {

/// Disassemble a single instruction at `pc` (pc is needed to render
/// branch/jal targets as absolute addresses).
std::string disassemble(uint32_t insn, uint32_t pc = 0);

/// Disassemble a code image, one "addr: insn  text" line per word.
std::string disassemble_image(const std::vector<uint32_t>& words, uint32_t base = 0);

}  // namespace rosebud::rv

#endif  // ROSEBUD_RV_DISASM_H
