/// \file
/// RV32IM instruction encodings.
///
/// The RPU core is a VexRiscv-class RV32IM machine (paper Section 5). This
/// header defines register names, opcode constants, and raw instruction
/// encoders used by the assembler, the disassembler, and the interpreter's
/// decoder. Encodings follow the RISC-V unprivileged ISA spec v2.2.

#ifndef ROSEBUD_RV_ISA_H
#define ROSEBUD_RV_ISA_H

#include <cstdint>

namespace rosebud::rv {

/// Architectural registers with ABI aliases.
enum Reg : uint8_t {
    x0 = 0, x1, x2, x3, x4, x5, x6, x7, x8, x9, x10, x11, x12, x13, x14, x15,
    x16, x17, x18, x19, x20, x21, x22, x23, x24, x25, x26, x27, x28, x29, x30, x31,

    zero = x0, ra = x1, sp = x2, gp = x3, tp = x4,
    t0 = x5, t1 = x6, t2 = x7,
    s0 = x8, fp = x8, s1 = x9,
    a0 = x10, a1 = x11, a2 = x12, a3 = x13, a4 = x14, a5 = x15, a6 = x16, a7 = x17,
    s2 = x18, s3 = x19, s4 = x20, s5 = x21, s6 = x22, s7 = x23, s8 = x24, s9 = x25,
    s10 = x26, s11 = x27,
    t3 = x28, t4 = x29, t5 = x30, t6 = x31,
};

/// Major opcodes (bits [6:0]).
enum Opcode : uint32_t {
    kOpLoad = 0x03,
    kOpMiscMem = 0x0f,
    kOpImm = 0x13,
    kOpAuipc = 0x17,
    kOpStore = 0x23,
    kOpReg = 0x33,
    kOpLui = 0x37,
    kOpBranch = 0x63,
    kOpJalr = 0x67,
    kOpJal = 0x6f,
    kOpSystem = 0x73,
};

/// CSR numbers implemented by the core.
enum Csr : uint32_t {
    kCsrMstatus = 0x300,
    kCsrMtvec = 0x305,
    kCsrMepc = 0x341,
    kCsrMcause = 0x342,
    kCsrCycle = 0xc00,
    kCsrTime = 0xc01,
    kCsrInstret = 0xc02,
    kCsrCycleH = 0xc80,
    kCsrTimeH = 0xc81,
    kCsrInstretH = 0xc82,
};

// --- raw format encoders -------------------------------------------------

inline uint32_t
encode_r(uint32_t funct7, Reg rs2, Reg rs1, uint32_t funct3, Reg rd, uint32_t opcode) {
    return funct7 << 25 | uint32_t(rs2) << 20 | uint32_t(rs1) << 15 | funct3 << 12 |
           uint32_t(rd) << 7 | opcode;
}

inline uint32_t
encode_i(int32_t imm, Reg rs1, uint32_t funct3, Reg rd, uint32_t opcode) {
    return uint32_t(imm & 0xfff) << 20 | uint32_t(rs1) << 15 | funct3 << 12 |
           uint32_t(rd) << 7 | opcode;
}

inline uint32_t
encode_s(int32_t imm, Reg rs2, Reg rs1, uint32_t funct3) {
    uint32_t u = uint32_t(imm);
    return ((u >> 5) & 0x7f) << 25 | uint32_t(rs2) << 20 | uint32_t(rs1) << 15 |
           funct3 << 12 | (u & 0x1f) << 7 | kOpStore;
}

inline uint32_t
encode_b(int32_t imm, Reg rs2, Reg rs1, uint32_t funct3) {
    uint32_t u = uint32_t(imm);
    return ((u >> 12) & 1) << 31 | ((u >> 5) & 0x3f) << 25 | uint32_t(rs2) << 20 |
           uint32_t(rs1) << 15 | funct3 << 12 | ((u >> 1) & 0xf) << 8 | ((u >> 11) & 1) << 7 |
           kOpBranch;
}

inline uint32_t
encode_u(int32_t imm_31_12, Reg rd, uint32_t opcode) {
    return uint32_t(imm_31_12) << 12 | uint32_t(rd) << 7 | opcode;
}

inline uint32_t
encode_j(int32_t imm, Reg rd) {
    uint32_t u = uint32_t(imm);
    return ((u >> 20) & 1) << 31 | ((u >> 1) & 0x3ff) << 21 | ((u >> 11) & 1) << 20 |
           ((u >> 12) & 0xff) << 12 | uint32_t(rd) << 7 | kOpJal;
}

// --- decode helpers -------------------------------------------------------

inline uint32_t dec_opcode(uint32_t insn) { return insn & 0x7f; }
inline Reg dec_rd(uint32_t insn) { return Reg((insn >> 7) & 0x1f); }
inline uint32_t dec_funct3(uint32_t insn) { return (insn >> 12) & 7; }
inline Reg dec_rs1(uint32_t insn) { return Reg((insn >> 15) & 0x1f); }
inline Reg dec_rs2(uint32_t insn) { return Reg((insn >> 20) & 0x1f); }
inline uint32_t dec_funct7(uint32_t insn) { return insn >> 25; }

inline int32_t
dec_imm_i(uint32_t insn) {
    return int32_t(insn) >> 20;
}

inline int32_t
dec_imm_s(uint32_t insn) {
    return (int32_t(insn) >> 25 << 5) | int32_t((insn >> 7) & 0x1f);
}

inline int32_t
dec_imm_b(uint32_t insn) {
    int32_t imm = int32_t((insn >> 31) & 1) << 12 | int32_t((insn >> 7) & 1) << 11 |
                  int32_t((insn >> 25) & 0x3f) << 5 | int32_t((insn >> 8) & 0xf) << 1;
    return imm << 19 >> 19;  // sign extend from bit 12
}

inline int32_t
dec_imm_u(uint32_t insn) {
    return int32_t(insn & 0xfffff000);
}

inline int32_t
dec_imm_j(uint32_t insn) {
    int32_t imm = int32_t((insn >> 31) & 1) << 20 | int32_t((insn >> 12) & 0xff) << 12 |
                  int32_t((insn >> 20) & 1) << 11 | int32_t((insn >> 21) & 0x3ff) << 1;
    return imm << 11 >> 11;  // sign extend from bit 20
}

}  // namespace rosebud::rv

#endif  // ROSEBUD_RV_ISA_H
