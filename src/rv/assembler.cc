#include "rv/assembler.h"

#include <cstdio>

#include "sim/log.h"

namespace rosebud::rv {

void
Assembler::label(const std::string& name) {
    if (labels_.count(name)) sim::fatal("label redefined: " + name);
    labels_[name] = here();
}

uint32_t
Assembler::label_addr(const std::string& name) const {
    auto it = labels_.find(name);
    if (it == labels_.end()) sim::fatal("undefined label: " + name);
    return it->second;
}

// --- R-type ---------------------------------------------------------------

void Assembler::add(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x00, rs2, rs1, 0, rd, kOpReg)); }
void Assembler::sub(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x20, rs2, rs1, 0, rd, kOpReg)); }
void Assembler::sll(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x00, rs2, rs1, 1, rd, kOpReg)); }
void Assembler::slt(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x00, rs2, rs1, 2, rd, kOpReg)); }
void Assembler::sltu(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x00, rs2, rs1, 3, rd, kOpReg)); }
void Assembler::xor_(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x00, rs2, rs1, 4, rd, kOpReg)); }
void Assembler::srl(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x00, rs2, rs1, 5, rd, kOpReg)); }
void Assembler::sra(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x20, rs2, rs1, 5, rd, kOpReg)); }
void Assembler::or_(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x00, rs2, rs1, 6, rd, kOpReg)); }
void Assembler::and_(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x00, rs2, rs1, 7, rd, kOpReg)); }

void Assembler::mul(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x01, rs2, rs1, 0, rd, kOpReg)); }
void Assembler::mulh(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x01, rs2, rs1, 1, rd, kOpReg)); }
void Assembler::mulhsu(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x01, rs2, rs1, 2, rd, kOpReg)); }
void Assembler::mulhu(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x01, rs2, rs1, 3, rd, kOpReg)); }
void Assembler::div(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x01, rs2, rs1, 4, rd, kOpReg)); }
void Assembler::divu(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x01, rs2, rs1, 5, rd, kOpReg)); }
void Assembler::rem(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x01, rs2, rs1, 6, rd, kOpReg)); }
void Assembler::remu(Reg rd, Reg rs1, Reg rs2) { emit(encode_r(0x01, rs2, rs1, 7, rd, kOpReg)); }

// --- I-type ---------------------------------------------------------------

namespace {
void
check_imm12(int32_t imm) {
    if (imm < -2048 || imm > 2047) {
        sim::fatal("immediate out of 12-bit range: " + std::to_string(imm));
    }
}

std::string
to_hex(uint32_t v) {
    char buf[12];
    std::snprintf(buf, sizeof(buf), "%x", v);
    return buf;
}
}  // namespace

void Assembler::addi(Reg rd, Reg rs1, int32_t imm) { check_imm12(imm); emit(encode_i(imm, rs1, 0, rd, kOpImm)); }
void Assembler::slti(Reg rd, Reg rs1, int32_t imm) { check_imm12(imm); emit(encode_i(imm, rs1, 2, rd, kOpImm)); }
void Assembler::sltiu(Reg rd, Reg rs1, int32_t imm) { check_imm12(imm); emit(encode_i(imm, rs1, 3, rd, kOpImm)); }
void Assembler::xori(Reg rd, Reg rs1, int32_t imm) { check_imm12(imm); emit(encode_i(imm, rs1, 4, rd, kOpImm)); }
void Assembler::ori(Reg rd, Reg rs1, int32_t imm) { check_imm12(imm); emit(encode_i(imm, rs1, 6, rd, kOpImm)); }
void Assembler::andi(Reg rd, Reg rs1, int32_t imm) { check_imm12(imm); emit(encode_i(imm, rs1, 7, rd, kOpImm)); }

void
Assembler::slli(Reg rd, Reg rs1, uint32_t shamt) {
    emit(encode_i(int32_t(shamt & 0x1f), rs1, 1, rd, kOpImm));
}

void
Assembler::srli(Reg rd, Reg rs1, uint32_t shamt) {
    emit(encode_i(int32_t(shamt & 0x1f), rs1, 5, rd, kOpImm));
}

void
Assembler::srai(Reg rd, Reg rs1, uint32_t shamt) {
    emit(encode_i(int32_t(0x400 | (shamt & 0x1f)), rs1, 5, rd, kOpImm));
}

void Assembler::lb(Reg rd, int32_t offset, Reg rs1) { check_imm12(offset); emit(encode_i(offset, rs1, 0, rd, kOpLoad)); }
void Assembler::lh(Reg rd, int32_t offset, Reg rs1) { check_imm12(offset); emit(encode_i(offset, rs1, 1, rd, kOpLoad)); }
void Assembler::lw(Reg rd, int32_t offset, Reg rs1) { check_imm12(offset); emit(encode_i(offset, rs1, 2, rd, kOpLoad)); }
void Assembler::lbu(Reg rd, int32_t offset, Reg rs1) { check_imm12(offset); emit(encode_i(offset, rs1, 4, rd, kOpLoad)); }
void Assembler::lhu(Reg rd, int32_t offset, Reg rs1) { check_imm12(offset); emit(encode_i(offset, rs1, 5, rd, kOpLoad)); }

void Assembler::sb(Reg rs2, int32_t offset, Reg rs1) { check_imm12(offset); emit(encode_s(offset, rs2, rs1, 0)); }
void Assembler::sh(Reg rs2, int32_t offset, Reg rs1) { check_imm12(offset); emit(encode_s(offset, rs2, rs1, 1)); }
void Assembler::sw(Reg rs2, int32_t offset, Reg rs1) { check_imm12(offset); emit(encode_s(offset, rs2, rs1, 2)); }

// --- control flow ---------------------------------------------------------

void
Assembler::emit_branch(Reg rs1, Reg rs2, uint32_t funct3, const std::string& target) {
    fixups_.push_back({words_.size(), target, FixKind::kBranch});
    emit(encode_b(0, rs2, rs1, funct3));
}

void Assembler::beq(Reg rs1, Reg rs2, const std::string& t) { emit_branch(rs1, rs2, 0, t); }
void Assembler::bne(Reg rs1, Reg rs2, const std::string& t) { emit_branch(rs1, rs2, 1, t); }
void Assembler::blt(Reg rs1, Reg rs2, const std::string& t) { emit_branch(rs1, rs2, 4, t); }
void Assembler::bge(Reg rs1, Reg rs2, const std::string& t) { emit_branch(rs1, rs2, 5, t); }
void Assembler::bltu(Reg rs1, Reg rs2, const std::string& t) { emit_branch(rs1, rs2, 6, t); }
void Assembler::bgeu(Reg rs1, Reg rs2, const std::string& t) { emit_branch(rs1, rs2, 7, t); }

void
Assembler::jal(Reg rd, const std::string& target) {
    fixups_.push_back({words_.size(), target, FixKind::kJal});
    emit(encode_j(0, rd));
}

void
Assembler::jalr(Reg rd, Reg rs1, int32_t imm) {
    check_imm12(imm);
    emit(encode_i(imm, rs1, 0, rd, kOpJalr));
}

void Assembler::lui(Reg rd, int32_t imm_31_12) { emit(encode_u(imm_31_12, rd, kOpLui)); }
void Assembler::auipc(Reg rd, int32_t imm_31_12) { emit(encode_u(imm_31_12, rd, kOpAuipc)); }

void Assembler::ecall() { emit(0x00000073); }
void Assembler::ebreak() { emit(0x00100073); }
void Assembler::fence() { emit(0x0000000f); }
void Assembler::fence_i() { emit(0x0000100f); }

void
Assembler::csrrs(Reg rd, uint32_t csr, Reg rs1) {
    emit(uint32_t(csr) << 20 | uint32_t(rs1) << 15 | 2u << 12 | uint32_t(rd) << 7 | kOpSystem);
}

void
Assembler::csrrw(Reg rd, uint32_t csr, Reg rs1) {
    emit(uint32_t(csr) << 20 | uint32_t(rs1) << 15 | 1u << 12 | uint32_t(rd) << 7 | kOpSystem);
}

void
Assembler::csrrc(Reg rd, uint32_t csr, Reg rs1) {
    emit(uint32_t(csr) << 20 | uint32_t(rs1) << 15 | 3u << 12 | uint32_t(rd) << 7 | kOpSystem);
}

void
Assembler::mret() {
    emit(0x30200073);
}

// --- pseudo ----------------------------------------------------------------

void Assembler::nop() { addi(zero, zero, 0); }
void Assembler::mv(Reg rd, Reg rs) { addi(rd, rs, 0); }

void
Assembler::li(Reg rd, int32_t imm) {
    if (imm >= -2048 && imm <= 2047) {
        addi(rd, zero, imm);
        return;
    }
    // lui + addi with carry adjustment for the sign-extended low part.
    // Unsigned arithmetic: imm near INT32_MAX must wrap, not overflow.
    uint32_t hi = (uint32_t(imm) + 0x800u) >> 12;
    int32_t lo = int32_t(uint32_t(imm) - (hi << 12));
    lui(rd, int32_t(hi));
    if (lo != 0) addi(rd, rd, lo);
}

void Assembler::j(const std::string& target) { jal(zero, target); }
void Assembler::ret() { jalr(zero, ra, 0); }
void Assembler::call(const std::string& target) { jal(ra, target); }
void Assembler::beqz(Reg rs, const std::string& target) { beq(rs, zero, target); }
void Assembler::bnez(Reg rs, const std::string& target) { bne(rs, zero, target); }

// --- assemble --------------------------------------------------------------

std::vector<uint32_t>
Assembler::assemble() {
    for (const auto& fix : fixups_) {
        uint32_t target = label_addr(fix.label);
        uint32_t pc = base_ + uint32_t(fix.index) * 4;
        int32_t offset = int32_t(target - pc);
        uint32_t& w = words_[fix.index];
        switch (fix.kind) {
        case FixKind::kBranch:
            if (offset < -4096 || offset > 4094) {
                sim::fatal("branch at pc 0x" + to_hex(pc) + " to label '" + fix.label +
                           "' is out of range: distance " + std::to_string(offset) +
                           " bytes, B-type immediate allows [-4096, +4094]");
            }
            if (offset & 1) {
                sim::fatal("branch at pc 0x" + to_hex(pc) + " to label '" + fix.label +
                           "' has odd distance " + std::to_string(offset));
            }
            w = encode_b(offset, dec_rs2(w), dec_rs1(w), dec_funct3(w));
            break;
        case FixKind::kJal:
            if (offset < -(1 << 20) || offset >= (1 << 20)) {
                sim::fatal("jal at pc 0x" + to_hex(pc) + " to label '" + fix.label +
                           "' is out of range: distance " + std::to_string(offset) +
                           " bytes, J-type immediate allows [-1048576, +1048574]");
            }
            if (offset & 1) {
                sim::fatal("jal at pc 0x" + to_hex(pc) + " to label '" + fix.label +
                           "' has odd distance " + std::to_string(offset));
            }
            w = encode_j(offset, dec_rd(w));
            break;
        }
    }
    fixups_.clear();
    return words_;
}

}  // namespace rosebud::rv
