#include "rv/core.h"

#include <algorithm>

#include "sim/log.h"

namespace rosebud::rv {

Core::Core(std::string name, Bus& bus, CostModel costs)
    : name_(std::move(name)), bus_(bus), costs_(costs) {}

void
Core::reset(uint32_t pc) {
    regs_.fill(0);
    csrs_ = TrapCsrs{};
    irq_line_ = false;
    pc_ = pc;
    cycles_ = 0;
    instret_ = 0;
    stall_ = 0;
    halted_ = false;
    faulted_ = false;
    icache_invalidate();
}

void
Core::icache_invalidate() {
    if (!icache_.empty()) std::fill(icache_.begin(), icache_.end(), Decoded{});
}

void
Core::icache_invalidate(uint32_t addr, uint32_t len) {
    if (icache_.empty() || len == 0) return;
    uint64_t first = addr >> 2;
    if (first >= icache_.size()) return;
    uint64_t last = std::min<uint64_t>((uint64_t(addr) + len - 1) >> 2,
                                       icache_.size() - 1);
    for (uint64_t i = first; i <= last; ++i) icache_[i] = Decoded{};
}

void
Core::tick() {
    ++cycles_;
    if (halted_) return;
    if (stall_ > 0) {
        if (profile_) {
            ++profiled_cycles_;
            ++pc_hist_[issue_pc_];
        }
        --stall_;
        return;
    }
    if (profile_) {
        ++profiled_cycles_;
        ++pc_hist_[pc_];
    }
    issue_pc_ = pc_;
    execute();
}

uint64_t
Core::run(uint64_t max_cycles) {
    uint64_t start = cycles_;
    while (!halted_ && cycles_ - start < max_cycles) tick();
    return cycles_ - start;
}

Decoded
Core::decode(uint32_t insn) {
    Decoded d;
    d.raw = insn;
    d.rd = dec_rd(insn);
    d.rs1 = dec_rs1(insn);
    d.rs2 = dec_rs2(insn);
    const uint32_t funct3 = dec_funct3(insn);
    const uint32_t funct7 = dec_funct7(insn);
    d.aux = uint8_t(funct3);

    switch (dec_opcode(insn)) {
    case kOpLui:
        d.op = Decoded::kLui;
        d.imm = dec_imm_u(insn);
        break;
    case kOpAuipc:
        d.op = Decoded::kAuipc;
        d.imm = dec_imm_u(insn);
        break;
    case kOpJal:
        d.op = Decoded::kJal;
        d.imm = dec_imm_j(insn);
        break;
    case kOpJalr:
        d.op = Decoded::kJalr;
        d.imm = dec_imm_i(insn);
        break;
    case kOpBranch: {
        d.imm = dec_imm_b(insn);
        switch (funct3) {
        case 0: d.op = Decoded::kBeq; break;
        case 1: d.op = Decoded::kBne; break;
        case 4: d.op = Decoded::kBlt; break;
        case 5: d.op = Decoded::kBge; break;
        case 6: d.op = Decoded::kBltu; break;
        case 7: d.op = Decoded::kBgeu; break;
        default: d.op = Decoded::kIllegal; break;
        }
        break;
    }
    case kOpLoad: {
        d.imm = dec_imm_i(insn);
        switch (funct3) {
        case 0: d.op = Decoded::kLb; break;
        case 1: d.op = Decoded::kLh; break;
        case 2: d.op = Decoded::kLw; break;
        case 4: d.op = Decoded::kLbu; break;
        case 5: d.op = Decoded::kLhu; break;
        // Bad load widths still issue the bus access before trapping
        // (matching the re-decoding interpreter).
        default: d.op = Decoded::kLoadBad; break;
        }
        break;
    }
    case kOpStore: {
        d.imm = dec_imm_s(insn);
        switch (funct3) {
        case 0: d.op = Decoded::kSb; break;
        case 1: d.op = Decoded::kSh; break;
        case 2: d.op = Decoded::kSw; break;
        default: d.op = Decoded::kIllegal; break;  // traps before the bus
        }
        break;
    }
    case kOpImm: {
        d.imm = dec_imm_i(insn);
        switch (funct3) {
        case 0: d.op = Decoded::kAddi; break;
        case 1: d.op = Decoded::kSlli; break;
        case 2: d.op = Decoded::kSlti; break;
        case 3: d.op = Decoded::kSltiu; break;
        case 4: d.op = Decoded::kXori; break;
        case 5: d.op = (insn & (1u << 30)) ? Decoded::kSrai : Decoded::kSrli; break;
        case 6: d.op = Decoded::kOri; break;
        case 7: d.op = Decoded::kAndi; break;
        }
        break;
    }
    case kOpReg:
        if (funct7 == 0x01) {  // M extension
            switch (funct3) {
            case 0: d.op = Decoded::kMul; break;
            case 1: d.op = Decoded::kMulh; break;
            case 2: d.op = Decoded::kMulhsu; break;
            case 3: d.op = Decoded::kMulhu; break;
            case 4: d.op = Decoded::kDiv; break;
            case 5: d.op = Decoded::kDivu; break;
            case 6: d.op = Decoded::kRem; break;
            case 7: d.op = Decoded::kRemu; break;
            }
        } else {
            switch (funct3) {
            case 0: d.op = funct7 == 0x20 ? Decoded::kSub : Decoded::kAdd; break;
            case 1: d.op = Decoded::kSll; break;
            case 2: d.op = Decoded::kSlt; break;
            case 3: d.op = Decoded::kSltu; break;
            case 4: d.op = Decoded::kXor; break;
            case 5: d.op = funct7 == 0x20 ? Decoded::kSra : Decoded::kSrl; break;
            case 6: d.op = Decoded::kOr; break;
            case 7: d.op = Decoded::kAnd; break;
            }
        }
        break;
    case kOpMiscMem:
        // All fences are architectural no-ops here; fence.i additionally
        // flushes the decoded-instruction cache.
        d.op = funct3 == 1 ? Decoded::kFenceI : Decoded::kFence;
        break;
    case kOpSystem:
        if (funct3 == 0) {
            d.op = insn == 0x30200073 ? Decoded::kMret : Decoded::kHalt;
        } else {
            d.op = Decoded::kCsr;
        }
        break;
    default:
        d.op = Decoded::kIllegal;
        break;
    }
    return d;
}

Decoded
Core::fetch_decoded(uint32_t pc) {
    if (predecode_) {
        const uint32_t idx = pc >> 2;
        if (idx < kIcacheWords) {
            if (icache_.empty()) icache_.resize(kIcacheWords);
            Decoded& d = icache_[idx];
            if (d.op == Decoded::kInvalid) d = decode(bus_.fetch(pc));
            return d;
        }
    }
    return decode(bus_.fetch(pc));
}

void
Core::set_idle_watch(bool on) {
    idle_watch_ = on;
    watch_have_anchor_ = false;
    watch_dirty_ = false;
    loop_stable_ = false;
}

void
Core::watch_observe() {
    if (loop_stable_) return;  // already proven; the owner will sleep soon
    if (!watch_have_anchor_ || watch_dirty_ ||
        cycles_ - watch_cycles_ > kMaxWatchPeriod) {
        watch_have_anchor_ = true;
        watch_dirty_ = false;
        watch_pc_ = pc_;
        watch_regs_ = regs_;
        watch_csrs_ = csrs_;
        watch_cycles_ = cycles_;
        watch_instret_ = instret_;
        return;
    }
    if (pc_ != watch_pc_) return;
    if (regs_ == watch_regs_ && csrs_.mstatus == watch_csrs_.mstatus &&
        csrs_.mtvec == watch_csrs_.mtvec && csrs_.mepc == watch_csrs_.mepc &&
        csrs_.mcause == watch_csrs_.mcause) {
        loop_stable_ = true;
        loop_period_ = cycles_ - watch_cycles_;
        loop_instret_ = instret_ - watch_instret_;
    } else {
        // Same PC, different state: slide the anchor to the current state.
        watch_regs_ = regs_;
        watch_csrs_ = csrs_;
        watch_cycles_ = cycles_;
        watch_instret_ = instret_;
    }
}

void
Core::skip_idle_cycles(uint64_t n) {
    if (halted_) {
        cycles_ += n;
        return;
    }
    if (loop_stable_ && loop_period_ > 0) {
        uint64_t full = n / loop_period_;
        cycles_ += full * loop_period_;
        instret_ += full * loop_instret_;
        n %= loop_period_;
    }
    // Remainder (or, defensively, everything if no loop is proven — the
    // owner should not have slept in that case) replays tick-by-tick.
    for (; n > 0; --n) tick();
}

void
Core::execute() {
    // Observe the anchor *before* the instruction (and before a potential
    // IRQ redirect): periodicity of the whole issue pattern is what must
    // repeat, trap entries included.
    if (idle_watch_) watch_observe();
    // Take a pending machine external interrupt at an instruction boundary.
    if (irq_line_ && (csrs_.mstatus & 0x8)) {
        csrs_.mepc = pc_;
        csrs_.mcause = 0x8000000b;  // machine external interrupt
        // MPIE := MIE; MIE := 0.
        csrs_.mstatus = (csrs_.mstatus & ~0x88u) | ((csrs_.mstatus & 0x8) << 4);
        pc_ = csrs_.mtvec & ~3u;
        stall_ = 2;  // pipeline flush into the handler
        return;
    }
    exec_decoded(fetch_decoded(pc_));
}

void
Core::exec_decoded(const Decoded& d) {
    uint32_t next_pc = pc_ + 4;
    uint32_t cost = costs_.alu;

    const uint32_t v1 = regs_[d.rs1];
    const uint32_t v2 = regs_[d.rs2];
    const int32_t imm = d.imm;

    auto write_rd = [&](uint32_t v) {
        if (d.rd != zero) regs_[d.rd] = v;
    };
    auto branch = [&](bool taken) {
        if (taken) {
            next_pc = pc_ + uint32_t(imm);
            cost = costs_.branch_taken;
        } else {
            cost = costs_.branch_not_taken;
        }
    };

    switch (d.op) {
    case Decoded::kLui: write_rd(uint32_t(imm)); break;
    case Decoded::kAuipc: write_rd(pc_ + uint32_t(imm)); break;

    case Decoded::kJal:
        write_rd(pc_ + 4);
        next_pc = pc_ + uint32_t(imm);
        cost = costs_.jump;
        break;

    case Decoded::kJalr: {
        uint32_t target = (v1 + uint32_t(imm)) & ~1u;
        write_rd(pc_ + 4);
        next_pc = target;
        cost = costs_.jump;
        break;
    }

    case Decoded::kBeq: branch(v1 == v2); break;
    case Decoded::kBne: branch(v1 != v2); break;
    case Decoded::kBlt: branch(int32_t(v1) < int32_t(v2)); break;
    case Decoded::kBge: branch(int32_t(v1) >= int32_t(v2)); break;
    case Decoded::kBltu: branch(v1 < v2); break;
    case Decoded::kBgeu: branch(v1 >= v2); break;

    case Decoded::kLb:
    case Decoded::kLh:
    case Decoded::kLw:
    case Decoded::kLbu:
    case Decoded::kLhu:
    case Decoded::kLoadBad: {
        uint32_t addr = v1 + uint32_t(imm);
        uint32_t size = 1u << (d.aux & 3);
        if (idle_watch_ && !bus_.watch_safe_read(addr)) watch_dirty_ = true;
        Bus::Access a = bus_.load(addr, size);
        if (a.retry) return;  // re-issue next cycle; pc unchanged
        if (a.fault) {
            faulted_ = halted_ = true;
            return;
        }
        uint32_t v = a.value;
        switch (d.op) {
        case Decoded::kLb: v = uint32_t(int32_t(int8_t(v))); break;
        case Decoded::kLh: v = uint32_t(int32_t(int16_t(v))); break;
        case Decoded::kLw: break;
        case Decoded::kLbu: v &= 0xff; break;
        case Decoded::kLhu: v &= 0xffff; break;
        default:
            faulted_ = halted_ = true;
            return;
        }
        write_rd(v);
        cost = a.cycles;
        break;
    }

    case Decoded::kSb:
    case Decoded::kSh:
    case Decoded::kSw: {
        uint32_t addr = v1 + uint32_t(imm);
        uint32_t size = 1u << (d.aux & 3);
        if (idle_watch_) watch_dirty_ = true;  // stores are never loop-pure
        Bus::Access a = bus_.store(addr, size, v2);
        if (a.retry) return;
        if (a.fault) {
            faulted_ = halted_ = true;
            return;
        }
        cost = a.cycles;
        break;
    }

    case Decoded::kAddi: write_rd(v1 + uint32_t(imm)); break;
    case Decoded::kSlli: write_rd(v1 << (imm & 0x1f)); break;
    case Decoded::kSlti: write_rd(int32_t(v1) < imm ? 1 : 0); break;
    case Decoded::kSltiu: write_rd(v1 < uint32_t(imm) ? 1 : 0); break;
    case Decoded::kXori: write_rd(v1 ^ uint32_t(imm)); break;
    case Decoded::kSrli: write_rd(v1 >> (imm & 0x1f)); break;
    case Decoded::kSrai: write_rd(uint32_t(int32_t(v1) >> (imm & 0x1f))); break;
    case Decoded::kOri: write_rd(v1 | uint32_t(imm)); break;
    case Decoded::kAndi: write_rd(v1 & uint32_t(imm)); break;

    case Decoded::kAdd: write_rd(v1 + v2); break;
    case Decoded::kSub: write_rd(v1 - v2); break;
    case Decoded::kSll: write_rd(v1 << (v2 & 0x1f)); break;
    case Decoded::kSlt: write_rd(int32_t(v1) < int32_t(v2) ? 1 : 0); break;
    case Decoded::kSltu: write_rd(v1 < v2 ? 1 : 0); break;
    case Decoded::kXor: write_rd(v1 ^ v2); break;
    case Decoded::kSrl: write_rd(v1 >> (v2 & 0x1f)); break;
    case Decoded::kSra: write_rd(uint32_t(int32_t(v1) >> (v2 & 0x1f))); break;
    case Decoded::kOr: write_rd(v1 | v2); break;
    case Decoded::kAnd: write_rd(v1 & v2); break;

    case Decoded::kMul:
        write_rd(v1 * v2);
        cost = costs_.mul;
        break;
    case Decoded::kMulh:
        write_rd(uint32_t((int64_t(int32_t(v1)) * int64_t(int32_t(v2))) >> 32));
        cost = costs_.mul;
        break;
    case Decoded::kMulhsu:
        write_rd(uint32_t((int64_t(int32_t(v1)) * int64_t(uint64_t(v2))) >> 32));
        cost = costs_.mul;
        break;
    case Decoded::kMulhu:
        write_rd(uint32_t((uint64_t(v1) * uint64_t(v2)) >> 32));
        cost = costs_.mul;
        break;
    case Decoded::kDiv:
        if (v2 == 0) {
            write_rd(~0u);
        } else if (v1 == 0x80000000u && v2 == ~0u) {
            write_rd(0x80000000u);
        } else {
            write_rd(uint32_t(int32_t(v1) / int32_t(v2)));
        }
        cost = costs_.div;
        break;
    case Decoded::kDivu:
        write_rd(v2 == 0 ? ~0u : v1 / v2);
        cost = costs_.div;
        break;
    case Decoded::kRem:
        if (v2 == 0) {
            write_rd(v1);
        } else if (v1 == 0x80000000u && v2 == ~0u) {
            write_rd(0);
        } else {
            write_rd(uint32_t(int32_t(v1) % int32_t(v2)));
        }
        cost = costs_.div;
        break;
    case Decoded::kRemu:
        write_rd(v2 == 0 ? v1 : v1 % v2);
        cost = costs_.div;
        break;

    case Decoded::kFence:
        break;
    case Decoded::kFenceI:
        icache_invalidate();
        break;

    case Decoded::kMret:
        next_pc = csrs_.mepc;
        // MIE := MPIE; MPIE := 1.
        csrs_.mstatus = (csrs_.mstatus & ~0x8u) | ((csrs_.mstatus >> 4) & 0x8) | 0x80;
        cost = costs_.jump;
        break;

    case Decoded::kHalt:
        // ecall / ebreak halt the core (used by firmware tests to
        // terminate and by the RPU's spin-wait debugging).
        halted_ = true;
        return;

    case Decoded::kCsr: {
        // CSR reads may observe time (cycle/instret), which keeps changing
        // while "idle" — a loop containing one is never provably periodic.
        if (idle_watch_) watch_dirty_ = true;
        const uint32_t csr = d.raw >> 20;
        const uint32_t funct3 = d.aux;
        // CSR read (all) + write (trap CSRs only; counters are read-only).
        uint32_t value = 0;
        uint32_t* writable = nullptr;
        switch (csr) {
        case kCsrCycle:
        case kCsrTime: value = uint32_t(cycles_); break;
        case kCsrCycleH:
        case kCsrTimeH: value = uint32_t(cycles_ >> 32); break;
        case kCsrInstret: value = uint32_t(instret_); break;
        case kCsrInstretH: value = uint32_t(instret_ >> 32); break;
        case kCsrMstatus: writable = &csrs_.mstatus; break;
        case kCsrMtvec: writable = &csrs_.mtvec; break;
        case kCsrMepc: writable = &csrs_.mepc; break;
        case kCsrMcause: writable = &csrs_.mcause; break;
        default: value = 0; break;
        }
        if (writable) value = *writable;
        if (writable && !(funct3 != 1 && d.rs1 == zero)) {
            // csrrw writes v1; csrrs sets bits; csrrc clears bits.
            switch (funct3) {
            case 1: *writable = v1; break;
            case 2: *writable = value | v1; break;
            case 3: *writable = value & ~v1; break;
            default: break;
            }
        }
        write_rd(value);
        cost = costs_.csr;
        break;
    }

    case Decoded::kInvalid:
    case Decoded::kIllegal:
    default:
        faulted_ = halted_ = true;
        return;
    }

    // Instruction-address-misaligned: a control transfer whose target is
    // not word-aligned (jalr keeps bit 1, mret takes mepc verbatim) traps
    // instead of silently fetching the rounded-down word. Surfaced by the
    // conformance fuzzer's golden-model lockstep (src/fuzz/ref_model.cc).
    if (next_pc & 3) {
        faulted_ = halted_ = true;
        return;
    }
    pc_ = next_pc;
    ++instret_;
    stall_ = cost - 1;
}

}  // namespace rosebud::rv
