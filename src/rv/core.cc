#include "rv/core.h"

#include "sim/log.h"

namespace rosebud::rv {

Core::Core(std::string name, Bus& bus, CostModel costs)
    : name_(std::move(name)), bus_(bus), costs_(costs) {}

void
Core::reset(uint32_t pc) {
    regs_.fill(0);
    csrs_ = TrapCsrs{};
    irq_line_ = false;
    pc_ = pc;
    cycles_ = 0;
    instret_ = 0;
    stall_ = 0;
    halted_ = false;
    faulted_ = false;
}

void
Core::tick() {
    ++cycles_;
    if (halted_) return;
    if (stall_ > 0) {
        if (profile_) {
            ++profiled_cycles_;
            ++pc_hist_[issue_pc_];
        }
        --stall_;
        return;
    }
    if (profile_) {
        ++profiled_cycles_;
        ++pc_hist_[pc_];
    }
    issue_pc_ = pc_;
    execute();
}

uint64_t
Core::run(uint64_t max_cycles) {
    uint64_t start = cycles_;
    while (!halted_ && cycles_ - start < max_cycles) tick();
    return cycles_ - start;
}

void
Core::execute() {
    // Take a pending machine external interrupt at an instruction boundary.
    if (irq_line_ && (csrs_.mstatus & 0x8)) {
        csrs_.mepc = pc_;
        csrs_.mcause = 0x8000000b;  // machine external interrupt
        // MPIE := MIE; MIE := 0.
        csrs_.mstatus = (csrs_.mstatus & ~0x88u) | ((csrs_.mstatus & 0x8) << 4);
        pc_ = csrs_.mtvec & ~3u;
        stall_ = 2;  // pipeline flush into the handler
        return;
    }

    const uint32_t insn = bus_.fetch(pc_);
    uint32_t next_pc = pc_ + 4;
    uint32_t cost = costs_.alu;

    const uint32_t opcode = dec_opcode(insn);
    const Reg rd = dec_rd(insn);
    const Reg rs1 = dec_rs1(insn);
    const Reg rs2 = dec_rs2(insn);
    const uint32_t funct3 = dec_funct3(insn);
    const uint32_t funct7 = dec_funct7(insn);
    const uint32_t v1 = regs_[rs1];
    const uint32_t v2 = regs_[rs2];

    auto write_rd = [&](uint32_t v) {
        if (rd != zero) regs_[rd] = v;
    };

    switch (opcode) {
    case kOpLui:
        write_rd(uint32_t(dec_imm_u(insn)));
        break;

    case kOpAuipc:
        write_rd(pc_ + uint32_t(dec_imm_u(insn)));
        break;

    case kOpJal:
        write_rd(pc_ + 4);
        next_pc = pc_ + uint32_t(dec_imm_j(insn));
        cost = costs_.jump;
        break;

    case kOpJalr: {
        uint32_t target = (v1 + uint32_t(dec_imm_i(insn))) & ~1u;
        write_rd(pc_ + 4);
        next_pc = target;
        cost = costs_.jump;
        break;
    }

    case kOpBranch: {
        bool taken = false;
        switch (funct3) {
        case 0: taken = v1 == v2; break;                          // beq
        case 1: taken = v1 != v2; break;                          // bne
        case 4: taken = int32_t(v1) < int32_t(v2); break;         // blt
        case 5: taken = int32_t(v1) >= int32_t(v2); break;        // bge
        case 6: taken = v1 < v2; break;                           // bltu
        case 7: taken = v1 >= v2; break;                          // bgeu
        default:
            faulted_ = halted_ = true;
            return;
        }
        if (taken) {
            next_pc = pc_ + uint32_t(dec_imm_b(insn));
            cost = costs_.branch_taken;
        } else {
            cost = costs_.branch_not_taken;
        }
        break;
    }

    case kOpLoad: {
        uint32_t addr = v1 + uint32_t(dec_imm_i(insn));
        uint32_t size = 1u << (funct3 & 3);
        Bus::Access a = bus_.load(addr, size);
        if (a.retry) return;  // re-issue next cycle; pc unchanged
        if (a.fault) {
            faulted_ = halted_ = true;
            return;
        }
        uint32_t v = a.value;
        switch (funct3) {
        case 0: v = uint32_t(int32_t(int8_t(v))); break;    // lb
        case 1: v = uint32_t(int32_t(int16_t(v))); break;   // lh
        case 2: break;                                      // lw
        case 4: v &= 0xff; break;                           // lbu
        case 5: v &= 0xffff; break;                         // lhu
        default:
            faulted_ = halted_ = true;
            return;
        }
        write_rd(v);
        cost = a.cycles;
        break;
    }

    case kOpStore: {
        uint32_t addr = v1 + uint32_t(dec_imm_s(insn));
        uint32_t size = 1u << (funct3 & 3);
        if (funct3 > 2) {
            faulted_ = halted_ = true;
            return;
        }
        Bus::Access a = bus_.store(addr, size, v2);
        if (a.retry) return;
        if (a.fault) {
            faulted_ = halted_ = true;
            return;
        }
        cost = a.cycles;
        break;
    }

    case kOpImm: {
        int32_t imm = dec_imm_i(insn);
        switch (funct3) {
        case 0: write_rd(v1 + uint32_t(imm)); break;                        // addi
        case 1: write_rd(v1 << (imm & 0x1f)); break;                        // slli
        case 2: write_rd(int32_t(v1) < imm ? 1 : 0); break;                 // slti
        case 3: write_rd(v1 < uint32_t(imm) ? 1 : 0); break;                // sltiu
        case 4: write_rd(v1 ^ uint32_t(imm)); break;                        // xori
        case 5:
            if (insn & (1u << 30)) {
                write_rd(uint32_t(int32_t(v1) >> (imm & 0x1f)));            // srai
            } else {
                write_rd(v1 >> (imm & 0x1f));                               // srli
            }
            break;
        case 6: write_rd(v1 | uint32_t(imm)); break;                        // ori
        case 7: write_rd(v1 & uint32_t(imm)); break;                        // andi
        }
        break;
    }

    case kOpReg:
        if (funct7 == 0x01) {  // M extension
            switch (funct3) {
            case 0: write_rd(v1 * v2); break;  // mul
            case 1: write_rd(uint32_t((int64_t(int32_t(v1)) * int64_t(int32_t(v2))) >> 32)); break;
            case 2: write_rd(uint32_t((int64_t(int32_t(v1)) * int64_t(uint64_t(v2))) >> 32)); break;
            case 3: write_rd(uint32_t((uint64_t(v1) * uint64_t(v2)) >> 32)); break;
            case 4:  // div
                if (v2 == 0) {
                    write_rd(~0u);
                } else if (v1 == 0x80000000u && v2 == ~0u) {
                    write_rd(0x80000000u);
                } else {
                    write_rd(uint32_t(int32_t(v1) / int32_t(v2)));
                }
                break;
            case 5: write_rd(v2 == 0 ? ~0u : v1 / v2); break;  // divu
            case 6:  // rem
                if (v2 == 0) {
                    write_rd(v1);
                } else if (v1 == 0x80000000u && v2 == ~0u) {
                    write_rd(0);
                } else {
                    write_rd(uint32_t(int32_t(v1) % int32_t(v2)));
                }
                break;
            case 7: write_rd(v2 == 0 ? v1 : v1 % v2); break;  // remu
            }
            cost = (funct3 < 4) ? costs_.mul : costs_.div;
        } else {
            switch (funct3) {
            case 0: write_rd(funct7 == 0x20 ? v1 - v2 : v1 + v2); break;
            case 1: write_rd(v1 << (v2 & 0x1f)); break;
            case 2: write_rd(int32_t(v1) < int32_t(v2) ? 1 : 0); break;
            case 3: write_rd(v1 < v2 ? 1 : 0); break;
            case 4: write_rd(v1 ^ v2); break;
            case 5:
                if (funct7 == 0x20) {
                    write_rd(uint32_t(int32_t(v1) >> (v2 & 0x1f)));
                } else {
                    write_rd(v1 >> (v2 & 0x1f));
                }
                break;
            case 6: write_rd(v1 | v2); break;
            case 7: write_rd(v1 & v2); break;
            }
        }
        break;

    case kOpMiscMem:  // fence — no-op in this memory model
        break;

    case kOpSystem: {
        uint32_t csr = insn >> 20;
        if (funct3 == 0) {
            if (insn == 0x30200073) {  // mret: return from the trap handler
                next_pc = csrs_.mepc;
                // MIE := MPIE; MPIE := 1.
                csrs_.mstatus =
                    (csrs_.mstatus & ~0x8u) | ((csrs_.mstatus >> 4) & 0x8) | 0x80;
                cost = costs_.jump;
                break;
            }
            // ecall / ebreak halt the core (used by firmware tests to
            // terminate and by the RPU's spin-wait debugging).
            halted_ = true;
            return;
        }
        // CSR read (all) + write (trap CSRs only; counters are read-only).
        uint32_t value = 0;
        uint32_t* writable = nullptr;
        switch (csr) {
        case kCsrCycle:
        case kCsrTime: value = uint32_t(cycles_); break;
        case kCsrCycleH:
        case kCsrTimeH: value = uint32_t(cycles_ >> 32); break;
        case kCsrInstret: value = uint32_t(instret_); break;
        case kCsrInstretH: value = uint32_t(instret_ >> 32); break;
        case kCsrMstatus: writable = &csrs_.mstatus; break;
        case kCsrMtvec: writable = &csrs_.mtvec; break;
        case kCsrMepc: writable = &csrs_.mepc; break;
        case kCsrMcause: writable = &csrs_.mcause; break;
        default: value = 0; break;
        }
        if (writable) value = *writable;
        if (writable && !(funct3 != 1 && rs1 == zero)) {
            // csrrw writes v1; csrrs sets bits; csrrc clears bits.
            switch (funct3) {
            case 1: *writable = v1; break;
            case 2: *writable = value | v1; break;
            case 3: *writable = value & ~v1; break;
            default: break;
            }
        }
        write_rd(value);
        cost = costs_.csr;
        break;
    }

    default:
        faulted_ = halted_ = true;
        return;
    }

    pc_ = next_pc;
    ++instret_;
    stall_ = cost - 1;
}

}  // namespace rosebud::rv
