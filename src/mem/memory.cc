#include "mem/memory.h"

namespace rosebud::mem {

sim::ResourceFootprint
bram_footprint(uint32_t bytes) {
    uint64_t blocks = (bytes + 4095) / 4096;
    return sim::ResourceFootprint{.luts = 8 * blocks, .regs = 4 * blocks, .bram = blocks};
}

sim::ResourceFootprint
uram_footprint(uint32_t bytes) {
    uint64_t blocks = (bytes + 32767) / 32768;
    return sim::ResourceFootprint{.luts = 12 * blocks, .regs = 8 * blocks, .uram = blocks};
}

}  // namespace rosebud::mem
