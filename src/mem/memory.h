/// \file
/// RPU memory models (paper Section 4.1, Figure 3).
///
/// Three memory classes with distinct timing, mirroring the paper's tailored
/// memory architecture:
///  * BRAM-backed instruction/data memories — single-cycle random access,
///    dedicated core port (the second port belongs to the DMA engine);
///  * URAM-backed packet memory — larger, higher latency, pipelined; one
///    port shared between the core (priority) and the DMA engine, the other
///    exclusively for accelerators;
///  * accelerator local memory — both ports owned by accelerators at
///    runtime, DMA may use one only during boot/readback.
///
/// The backing store is a flat byte array; timing is expressed as
/// access-latency constants consumed by the RISC-V core's cost model and
/// per-cycle port bookkeeping managed by the RPU (which ticks the core
/// before the DMA engine, realizing the paper's core-priority arbitration).

#ifndef ROSEBUD_MEM_MEMORY_H
#define ROSEBUD_MEM_MEMORY_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/kernel.h"
#include "sim/log.h"
#include "sim/resources.h"

namespace rosebud::mem {

/// Access latencies in cycles, calibrated to the VexRiscv + BRAM/URAM
/// design of the paper (used by rv::Core's instruction cost model).
inline constexpr uint32_t kBramLoadCycles = 2;   ///< core load from BRAM
inline constexpr uint32_t kBramStoreCycles = 1;  ///< store is fire-and-forget
inline constexpr uint32_t kUramLoadCycles = 4;   ///< URAM pipeline depth
inline constexpr uint32_t kUramStoreCycles = 2;
inline constexpr uint32_t kMmioLoadCycles = 3;   ///< cross-region MMIO read
inline constexpr uint32_t kMmioStoreCycles = 2;

/// Flat little-endian byte-addressable memory with bounds checking.
class Memory {
 public:
    Memory(std::string name, uint32_t size_bytes)
        : name_(std::move(name)), bytes_(size_bytes, 0) {}

    uint32_t size() const { return uint32_t(bytes_.size()); }
    const std::string& name() const { return name_; }

    uint8_t read8(uint32_t addr) const {
        check(addr, 1);
        return bytes_[addr];
    }

    uint16_t read16(uint32_t addr) const {
        check(addr, 2);
        return uint16_t(bytes_[addr]) | uint16_t(bytes_[addr + 1]) << 8;
    }

    uint32_t read32(uint32_t addr) const {
        check(addr, 4);
        uint32_t v;
        std::memcpy(&v, &bytes_[addr], 4);
        return v;
    }

    void write8(uint32_t addr, uint8_t v) {
        check(addr, 1);
        bytes_[addr] = v;
    }

    void write16(uint32_t addr, uint16_t v) {
        check(addr, 2);
        bytes_[addr] = uint8_t(v);
        bytes_[addr + 1] = uint8_t(v >> 8);
    }

    void write32(uint32_t addr, uint32_t v) {
        check(addr, 4);
        std::memcpy(&bytes_[addr], &v, 4);
    }

    /// Bulk copy in (DMA, host loads). Bounds-checked.
    void write_block(uint32_t addr, const uint8_t* src, uint32_t len) {
        check(addr, len);
        std::memcpy(&bytes_[addr], src, len);
    }

    /// Bulk copy out (DMA, host readback). Bounds-checked.
    void read_block(uint32_t addr, uint8_t* dst, uint32_t len) const {
        check(addr, len);
        std::memcpy(dst, &bytes_[addr], len);
    }

    void fill(uint8_t v) { std::fill(bytes_.begin(), bytes_.end(), v); }

    const std::vector<uint8_t>& bytes() const { return bytes_; }

    /// Record this memory in the elaboration netlist as a `width`-bit port
    /// owned (read+written) by `component` — memories are component-local,
    /// so both endpoints belong to the owner.
    void declare_ports(sim::Kernel& kernel, const std::string& component,
                       unsigned width_bits = 32) const {
        kernel.declare_net({name_, sim::NetRecord::kLink, width_bits, 1, 0});
        kernel.declare_port({component, name_, sim::PortRecord::kWrite, width_bits, 1});
        kernel.declare_port({component, name_, sim::PortRecord::kRead, width_bits, 1});
    }

 private:
    void check(uint32_t addr, uint32_t len) const {
        if (uint64_t(addr) + len > bytes_.size()) {
            sim::panic(name_ + ": out-of-bounds access at 0x" + std::to_string(addr) +
                       " len " + std::to_string(len));
        }
    }

    std::string name_;
    std::vector<uint8_t> bytes_;
};

/// Resource footprint of a BRAM-implemented memory of `bytes` capacity.
/// XCVU9P BRAM36 = 4 KiB; dual-port control adds a small LUT cost.
sim::ResourceFootprint bram_footprint(uint32_t bytes);

/// Resource footprint of a URAM-implemented memory (URAM288 = 32 KiB).
sim::ResourceFootprint uram_footprint(uint32_t bytes);

}  // namespace rosebud::mem

#endif  // ROSEBUD_MEM_MEMORY_H
