#!/usr/bin/env python3
"""Perf-regression gate for bench JSON results (simspeed, cluster).

Compares a current run (e.g. bench-json/simspeed.json) against a blessed
baseline (bench/baselines/<bench>.json, itself a verbatim bench output).
Machines differ in absolute speed, so raw throughput is never compared
directly: the `reference` mode of each workload calibrates a per-workload
machine-speed scale, and the tuned/parallel/tuned+health modes are gated
against the baseline *scaled to the current machine*. A >10% (default)
drop in scaled throughput, a speedup-ratio regression, a health-layer
overhead above 2x its 5% target, or any fingerprint mismatch fails the
gate with a nonzero exit.

Usage:
    check_regression.py <baseline.json> <current.json> [--tolerance 0.10]
    check_regression.py --update <baseline.json> <current.json>

--update blesses the current run as the new baseline (copies it over).
"""

import argparse
import json
import shutil
import sys

# Absolute ceiling for the production-health overhead ratio: 2x the 5%
# design target, matching the hard gate inside bench_simspeed itself.
HEALTH_OVERHEAD_MAX = 0.10
# Modes whose host-time numbers are stable enough to gate. The parallel
# executor's wall time depends on scheduler contention and core count, so
# it is reported (and fingerprint-checked) but not throughput-gated. The
# decoupled modes run on one thread (coop executor) and their speedups
# are serial-vs-decoupled ratios from the same run, so they gate cleanly.
GATED_MODES = ("tuned", "tuned+health", "decoupled", "decoupled-4shard")
# Floor for the Figure 7 sweep tuned-vs-reference speedup (paper target).
FIG7_SPEEDUP_MIN = 2.0


def row_key(row):
    """Identity of a row: workload plus mode when present."""
    return (row.get("workload", "?"), row.get("mode", ""))


def index_rows(doc):
    out = {}
    for row in doc.get("rows", []):
        # Per-epoch rows (no workload) are not gated.
        if "workload" in row:
            out[row_key(row)] = row
    return out


def check(base_path, cur_path, tolerance):
    base = index_rows(json.load(open(base_path)))
    cur = index_rows(json.load(open(cur_path)))
    failures = []
    checked = 0

    def fail(key, msg):
        failures.append("%s/%s: %s" % (key[0], key[1] or "-", msg))

    # Fingerprint equality is machine-independent: any "NO" is a hard fail.
    for key, row in cur.items():
        if row.get("fingerprint_match") not in (None, "yes"):
            fail(key, "fingerprint mismatch")
        checked += 1

    # Per-workload machine-speed scale from the reference-mode rows.
    scales = {}
    for (workload, mode), row in base.items():
        if mode != "reference":
            continue
        ckey = (workload, "reference")
        if ckey not in cur:
            fail(ckey, "reference row missing from current run")
            continue
        scales[workload] = cur[ckey]["cycles_per_s"] / row["cycles_per_s"]

    for key, brow in base.items():
        workload, mode = key
        crow = cur.get(key)
        if crow is None:
            fail(key, "row missing from current run")
            continue

        # Throughput gate, scaled to the current machine's reference speed.
        if mode in GATED_MODES and workload in scales:
            scale = scales[workload]
            for field in ("cycles_per_s", "packets_per_s"):
                if field not in brow or field not in crow:
                    continue
                expected = brow[field] * scale
                if crow[field] < expected * (1.0 - tolerance):
                    fail(key, "%s regressed: %.0f < %.0f (baseline %.0f x "
                              "machine scale %.2f, tolerance %d%%)"
                              % (field, crow[field], expected * (1 - tolerance),
                                 brow[field], scale, tolerance * 100))

        # Speedup ratios are already machine-normalized.
        if "speedup" in brow and "speedup" in crow and mode in GATED_MODES:
            if crow["speedup"] < brow["speedup"] * (1.0 - tolerance):
                fail(key, "speedup regressed: %.2fx < %.2fx (baseline %.2fx)"
                          % (crow["speedup"],
                             brow["speedup"] * (1 - tolerance), brow["speedup"]))
        if workload == "fig7_sweep" and \
                crow.get("speedup", 0) < FIG7_SPEEDUP_MIN * (1.0 - tolerance):
            fail(key, "fig7 sweep speedup %.2fx below %.1fx floor"
                      % (crow["speedup"], FIG7_SPEEDUP_MIN))

        # Production-health overhead: absolute ceiling, not baseline-relative
        # (the target is a design property, not a measured artifact).
        if "health_overhead" in crow:
            if crow["health_overhead"] > HEALTH_OVERHEAD_MAX:
                fail(key, "health overhead %.1f%% above %.0f%% ceiling"
                          % (crow["health_overhead"] * 100,
                             HEALTH_OVERHEAD_MAX * 100))

    return checked, failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="relative slack on throughput/speedup (default 0.10)")
    ap.add_argument("--update", action="store_true",
                    help="bless the current run as the new baseline")
    args = ap.parse_args()

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print("baseline updated from", args.current)
        return 0

    checked, failures = check(args.baseline, args.current, args.tolerance)
    if failures:
        print("PERF REGRESSION GATE: %d failure(s) across %d rows"
              % (len(failures), checked))
        for f in failures:
            print("  FAIL", f)
        return 1
    print("perf regression gate: %d rows checked, all within %d%% of baseline"
          % (checked, int(args.tolerance * 100)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
