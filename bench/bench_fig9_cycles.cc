/// Figure 9: average RISC-V cycles spent per packet, derived from the
/// Figure 8 packet rates (cycles = rpus * clock / rate) plus the paper's
/// single-RPU simulation numbers (61 safe-TCP / 59 safe-UDP / 82 attack
/// for HW reorder; ~138 at 64 B for SW reorder).

#include "bench_common.h"
#include "core/experiments.h"

using namespace rosebud;

int
main() {
    bench::heading("Figure 9: average cycles per packet (from measured packet rates)");
    std::printf("%8s %18s %18s\n", "size(B)", "HW reorder", "SW reorder");
    for (uint32_t size : {64u, 128u, 256u, 512u, 800u, 1024u, 1500u, 2048u}) {
        exp::IpsParams p;
        p.size = size;
        p.mode = exp::IpsMode::kHwReorder;
        auto hw = exp::run_ips(p);
        p.mode = exp::IpsMode::kSwReorder;
        auto sw = exp::run_ips(p);
        std::printf("%8u %18.1f %18.1f\n", size, hw.cycles_per_packet,
                    sw.cycles_per_packet);
    }
    std::printf("(At line-rate-limited sizes the metric stops reflecting software "
                "cost, as in the paper.)\n");

    bench::heading("Single-RPU simulation (paper: 61 TCP / 59 UDP / 82 attack; 138 SW@64B)");
    exp::SingleRpuParams s;
    s.mode = exp::IpsMode::kHwReorder;
    std::printf("HW reorder, safe TCP : %6.1f cycles/packet\n",
                exp::run_single_rpu_cycles_per_packet(s));
    s.udp = true;
    std::printf("HW reorder, safe UDP : %6.1f cycles/packet\n",
                exp::run_single_rpu_cycles_per_packet(s));
    s.udp = false;
    s.attack = true;
    std::printf("HW reorder, attack   : %6.1f cycles/packet\n",
                exp::run_single_rpu_cycles_per_packet(s));
    s.attack = false;
    s.mode = exp::IpsMode::kSwReorder;
    s.size = 64;
    std::printf("SW reorder, 64 B     : %6.1f cycles/packet\n",
                exp::run_single_rpu_cycles_per_packet(s));
    s.size = 1024;
    std::printf("SW reorder, 1024 B   : %6.1f cycles/packet\n",
                exp::run_single_rpu_cycles_per_packet(s));
    return 0;
}
