/// Table 1: base resource utilization for the 16-RPU Rosebud runtime.

#include "bench_common.h"

int
main() {
    rosebud::SystemConfig cfg;
    cfg.rpu_count = 16;
    rosebud::System sys(cfg);
    rosebud::bench::print_resource_table(
        "Table 1: Base resource utilization for 16 RPUs (paper: 259713 LUTs total)",
        sys.resource_report());
    return 0;
}
