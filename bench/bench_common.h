/// \file
/// Shared helpers for the table/figure reproduction binaries.

#ifndef ROSEBUD_BENCH_COMMON_H
#define ROSEBUD_BENCH_COMMON_H

#include <cstdio>
#include <string>

#include "core/system.h"
#include "sim/resources.h"

namespace rosebud::bench {

inline void
heading(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
print_resource_table(const std::string& title,
                     const std::vector<System::ResourceRow>& rows) {
    heading(title);
    std::printf("%-22s%16s%16s%16s%16s%16s\n", "Component", "LUTs", "Registers",
                "BRAM", "URAM", "DSP");
    for (const auto& row : rows) {
        bool is_device = row.name == "VU9P device";
        std::printf("%s\n",
                    sim::format_footprint_row(row.name, row.fp,
                                              is_device ? sim::ResourceFootprint{}
                                                        : sim::kXcvu9p)
                        .c_str());
    }
}

}  // namespace rosebud::bench

#endif  // ROSEBUD_BENCH_COMMON_H
