/// \file
/// Shared helpers for the table/figure reproduction binaries.

#ifndef ROSEBUD_BENCH_COMMON_H
#define ROSEBUD_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/system.h"
#include "oracle/harness.h"
#include "sim/resources.h"

namespace rosebud::bench {

inline void
heading(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
print_resource_table(const std::string& title,
                     const std::vector<System::ResourceRow>& rows) {
    heading(title);
    std::printf("%-22s%16s%16s%16s%16s%16s\n", "Component", "LUTs", "Registers",
                "BRAM", "URAM", "DSP");
    for (const auto& row : rows) {
        bool is_device = row.name == "VU9P device";
        std::printf("%s\n",
                    sim::format_footprint_row(row.name, row.fp,
                                              is_device ? sim::ResourceFootprint{}
                                                        : sim::kXcvu9p)
                        .c_str());
    }
}

/// Functional gate for the perf binaries: a short differential run against
/// the golden oracle with the same pipeline the benchmark is about to
/// sweep. Throughput numbers from a functionally wrong dataplane are
/// meaningless, so a divergence aborts the benchmark.
inline void
check_with_oracle(oracle::Pipeline pipeline, unsigned rpus,
                  lb::Policy policy = lb::Policy::kRoundRobin, uint64_t seed = 1) {
    oracle::RunSpec s;
    s.pipeline = pipeline;
    s.rpu_count = rpus;
    s.policy = policy;
    s.seed = seed;
    s.attack_fraction = pipeline == oracle::Pipeline::kForwarder ? 0.0 : 0.2;
    auto r = oracle::run_differential(s);
    if (!r.ok) {
        std::fprintf(stderr, "oracle check FAILED for %s (%llu divergences):\n%s\n",
                     oracle::pipeline_name(pipeline),
                     (unsigned long long)r.counts.divergences, r.report.c_str());
        std::exit(1);
    }
    std::printf("[oracle] %s x %u RPUs: %llu packets checked, 0 divergences\n",
                oracle::pipeline_name(pipeline), rpus,
                (unsigned long long)r.counts.offered);
}

}  // namespace rosebud::bench

#endif  // ROSEBUD_BENCH_COMMON_H
