/// \file
/// Shared helpers for the table/figure reproduction binaries.

#ifndef ROSEBUD_BENCH_COMMON_H
#define ROSEBUD_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/system.h"
#include "obs/json.h"
#include "oracle/harness.h"
#include "sim/resources.h"

namespace rosebud::bench {

/// Machine-readable bench output. When the ROSEBUD_BENCH_JSON environment
/// variable names a directory, each bench binary that uses this collector
/// writes `<dir>/<bench-name>.json` with one object per recorded data
/// point, so plotting/regression tooling doesn't have to scrape stdout.
/// With the variable unset, recording is a no-op.
class JsonResults {
 public:
    explicit JsonResults(std::string bench_name) : name_(std::move(bench_name)) {
        const char* dir = std::getenv("ROSEBUD_BENCH_JSON");
        if (dir && *dir) path_ = std::string(dir) + "/" + name_ + ".json";
    }
    ~JsonResults() { save(); }

    bool enabled() const { return !path_.empty(); }

    /// Record one data point: alternating key, numeric-or-string value
    /// pairs, e.g. row({{"size","64"},{"gbps","93.1"}}). Values parseable
    /// as numbers are emitted as numbers.
    void row(std::vector<std::pair<std::string, std::string>> kv) {
        if (enabled()) rows_.push_back(std::move(kv));
    }

    void save() {
        if (!enabled() || saved_) return;
        saved_ = true;
        obs::JsonWriter w;
        w.begin_object();
        w.key("bench").value(name_);
        w.key("rows").begin_array();
        for (const auto& r : rows_) {
            w.begin_object();
            for (const auto& [k, v] : r) {
                w.key(k);
                char* end = nullptr;
                double num = std::strtod(v.c_str(), &end);
                if (end && *end == '\0' && end != v.c_str()) {
                    w.value(num);
                } else {
                    w.value(v);
                }
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
        if (FILE* f = std::fopen(path_.c_str(), "w")) {
            std::string s = w.str();
            std::fwrite(s.data(), 1, s.size(), f);
            std::fclose(f);
            std::printf("[json] results written to %s\n", path_.c_str());
        } else {
            std::fprintf(stderr, "[json] cannot write %s\n", path_.c_str());
        }
    }

 private:
    std::string name_;
    std::string path_;
    std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
    bool saved_ = false;
};

inline std::string
num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return buf;
}

inline void
heading(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
print_resource_table(const std::string& title,
                     const std::vector<System::ResourceRow>& rows) {
    heading(title);
    std::printf("%-22s%16s%16s%16s%16s%16s\n", "Component", "LUTs", "Registers",
                "BRAM", "URAM", "DSP");
    for (const auto& row : rows) {
        bool is_device = row.name == "VU9P device";
        std::printf("%s\n",
                    sim::format_footprint_row(row.name, row.fp,
                                              is_device ? sim::ResourceFootprint{}
                                                        : sim::kXcvu9p)
                        .c_str());
    }
}

/// Functional gate for the perf binaries: a short differential run against
/// the golden oracle with the same pipeline the benchmark is about to
/// sweep. Throughput numbers from a functionally wrong dataplane are
/// meaningless, so a divergence aborts the benchmark.
inline void
check_with_oracle(oracle::Pipeline pipeline, unsigned rpus,
                  lb::Policy policy = lb::Policy::kRoundRobin, uint64_t seed = 1) {
    oracle::RunSpec s;
    s.pipeline = pipeline;
    s.rpu_count = rpus;
    s.policy = policy;
    s.seed = seed;
    s.attack_fraction = pipeline == oracle::Pipeline::kForwarder ? 0.0 : 0.2;
    auto r = oracle::run_differential(s);
    if (!r.ok) {
        std::fprintf(stderr, "oracle check FAILED for %s (%llu divergences):\n%s\n",
                     oracle::pipeline_name(pipeline),
                     (unsigned long long)r.counts.divergences, r.report.c_str());
        std::exit(1);
    }
    std::printf("[oracle] %s x %u RPUs: %llu packets checked, 0 divergences\n",
                oracle::pipeline_name(pipeline), rpus,
                (unsigned long long)r.counts.offered);
}

}  // namespace rosebud::bench

#endif  // ROSEBUD_BENCH_COMMON_H
