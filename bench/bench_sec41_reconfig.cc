/// Section 4.1: runtime partial reconfiguration of one RPU while the rest
/// of the system keeps forwarding. The paper measures pause + bitstream
/// load + boot at 756 ms on average across 320 loads.

#include <memory>

#include "accel/firewall.h"
#include "bench_common.h"
#include "firmware/programs.h"
#include "net/rules.h"

using namespace rosebud;

int
main() {
    SystemConfig cfg;
    cfg.rpu_count = 16;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);

    // Background traffic so the drain phase has real work.
    uint64_t id = 0;
    sys.add_source({.port = 0, .line_gbps = 100.0, .load = 0.3}, [&id] {
        net::PacketBuilder b;
        b.ipv4(0x0a000001, 0x0a000002).udp(1, 2).frame_size(512);
        auto p = b.build();
        p->id = id++;
        return p;
    });
    sys.run_cycles(5000);

    sim::Rng rng(2023);
    sim::Rng bl_rng(7);
    auto blacklist = net::Blacklist::synthesize(1050, bl_rng);
    auto fw_prog = fwlib::firewall();

    bench::heading("Section 4.1: RPU partial reconfiguration, 320 loads");
    double total = 0;
    double min_ms = 1e18;
    double max_ms = 0;
    double drain_total_us = 0;
    const int kLoads = 320;
    for (int i = 0; i < kLoads; ++i) {
        unsigned target = unsigned(i) % 16;
        bool to_firewall = i % 2 == 0;
        auto t = sys.host().reconfigure(
            target,
            to_firewall
                ? std::function<std::unique_ptr<rpu::Accelerator>()>(
                      [&] { return std::make_unique<accel::FirewallMatcher>(blacklist); })
                : nullptr,
            to_firewall ? fw_prog.image : fw.image, 0, rng);
        total += t.total_ms;
        min_ms = std::min(min_ms, t.total_ms);
        max_ms = std::max(max_ms, t.total_ms);
        drain_total_us += t.drain_us;
    }
    std::printf("loads: %d\n", kLoads);
    std::printf("average pause+load+boot: %.1f ms (paper: 756 ms)\n", total / kLoads);
    std::printf("min/max: %.1f / %.1f ms\n", min_ms, max_ms);
    std::printf("average drain time: %.2f us (traffic keeps flowing meanwhile)\n",
                drain_total_us / kLoads);
    std::printf("packets forwarded during the campaign: %llu (no-pause reconfiguration)\n",
                (unsigned long long)(sys.sink(0).frames() + sys.sink(1).frames()));
    return 0;
}
