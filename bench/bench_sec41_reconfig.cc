/// Section 4.1: runtime partial reconfiguration of one RPU while the rest
/// of the system keeps forwarding. The paper measures pause + bitstream
/// load + boot at 756 ms on average across 320 loads.
///
/// The always-on health layer rides along: it observes every load's phase
/// transitions in the flight recorder and closes an SLO epoch periodically,
/// so the bench reports *measured* drop/latency verdicts for the no-pause
/// claim instead of a bare packet count.

#include <memory>

#include "accel/firewall.h"
#include "bench_common.h"
#include "firmware/programs.h"
#include "net/rules.h"
#include "obs/health.h"

using namespace rosebud;

int
main() {
    SystemConfig cfg;
    cfg.rpu_count = 16;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);

    // The no-pause claim, stated as an SLO: while RPUs are being swapped
    // under live traffic, p99 latency stays under 100 us and at most 1% of
    // offered packets drop, per 50k-cycle epoch.
    obs::HealthConfig hc;
    hc.epoch_cycles = 50'000;
    hc.slo = obs::parse_slo("latency_p99 <= 100us, drop_rate <= 0.01");
    obs::HealthMonitor mon(hc);
    mon.attach(sys);

    // Background traffic so the drain phase has real work.
    uint64_t id = 0;
    sys.add_source({.port = 0, .line_gbps = 100.0, .load = 0.3}, [&id] {
        net::PacketBuilder b;
        b.ipv4(0x0a000001, 0x0a000002).udp(1, 2).frame_size(512);
        auto p = b.build();
        p->id = id++;
        return p;
    });
    sys.run_cycles(5000);

    sim::Rng rng(2023);
    sim::Rng bl_rng(7);
    auto blacklist = net::Blacklist::synthesize(1050, bl_rng);
    auto fw_prog = fwlib::firewall();

    bench::heading("Section 4.1: RPU partial reconfiguration, 320 loads");
    double total = 0;
    double min_ms = 1e18;
    double max_ms = 0;
    double drain_total_us = 0;
    const int kLoads = 320;
    for (int i = 0; i < kLoads; ++i) {
        unsigned target = unsigned(i) % 16;
        bool to_firewall = i % 2 == 0;
        auto t = sys.host().reconfigure(
            target,
            to_firewall
                ? std::function<std::unique_ptr<rpu::Accelerator>()>(
                      [&] { return std::make_unique<accel::FirewallMatcher>(blacklist); })
                : nullptr,
            to_firewall ? fw_prog.image : fw.image, 0, rng);
        total += t.total_ms;
        min_ms = std::min(min_ms, t.total_ms);
        max_ms = std::max(max_ms, t.total_ms);
        drain_total_us += t.drain_us;
    }
    mon.flush_epoch();

    std::printf("loads: %d\n", kLoads);
    std::printf("average pause+load+boot: %.1f ms (paper: 756 ms)\n", total / kLoads);
    std::printf("min/max: %.1f / %.1f ms\n", min_ms, max_ms);
    std::printf("average drain time: %.2f us (traffic keeps flowing meanwhile)\n",
                drain_total_us / kLoads);
    std::printf("packets forwarded during the campaign: %llu (no-pause reconfiguration)\n",
                (unsigned long long)(sys.sink(0).frames() + sys.sink(1).frames()));

    // Measured health verdicts for the campaign.
    const obs::Histogram& lat = mon.latency();
    uint64_t offered =
        mon.ingress_packets() + mon.dropped_at(obs::DropSite::kMacRxFifo);
    double drop_rate =
        offered ? double(mon.dropped_packets()) / double(offered) : 0.0;
    std::printf("\nhealth during campaign (SLO \"%s\"):\n", hc.slo.text.c_str());
    std::printf("  latency p50/p99/p999: %.2f / %.2f / %.2f us over %llu packets\n",
                double(lat.percentile(0.50)) * sim::kNsPerCycle / 1e3,
                double(lat.percentile(0.99)) * sim::kNsPerCycle / 1e3,
                double(lat.percentile(0.999)) * sim::kNsPerCycle / 1e3,
                (unsigned long long)lat.count());
    std::printf("  drop rate: %.4f (%llu of %llu offered)\n", drop_rate,
                (unsigned long long)mon.dropped_packets(),
                (unsigned long long)offered);
    size_t failed = 0;
    for (const auto& v : mon.verdicts())
        if (!v.pass) ++failed;
    std::printf("  epochs: %llu, failed: %zu, watchdog trips: %llu -> SLO %s\n",
                (unsigned long long)mon.epochs_closed(), failed,
                (unsigned long long)mon.watchdog_trips(),
                mon.slo_ok() && mon.watchdog_trips() == 0 ? "MET" : "VIOLATED");

    bench::JsonResults json("sec41_reconfig");
    json.row({{"loads", std::to_string(kLoads)},
              {"avg_ms", bench::num(total / kLoads)},
              {"min_ms", bench::num(min_ms)},
              {"max_ms", bench::num(max_ms)},
              {"avg_drain_us", bench::num(drain_total_us / kLoads)},
              {"latency_p99_us",
               bench::num(double(lat.percentile(0.99)) * sim::kNsPerCycle / 1e3)},
              {"drop_rate", bench::num(drop_rate)},
              {"epochs", std::to_string(mon.epochs_closed())},
              {"epochs_failed", std::to_string(failed)},
              {"watchdog_trips", std::to_string(mon.watchdog_trips())},
              {"slo", mon.slo_ok() ? "pass" : "fail"}});
    for (const auto& v : mon.verdicts()) {
        json.row({{"epoch_start", std::to_string(v.start)},
                  {"epoch_end", std::to_string(v.end)},
                  {"offered", std::to_string(v.offered)},
                  {"egress", std::to_string(v.egress)},
                  {"drops", std::to_string(v.drops)},
                  {"p99_cycles", std::to_string(v.p99)},
                  {"drop_rate", bench::num(v.drop_rate)},
                  {"pass", v.pass ? "1" : "0"}});
    }
    mon.detach();
    return 0;
}
