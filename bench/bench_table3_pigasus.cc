/// Table 3: average resource utilization inside each Pigasus RPU (8-RPU
/// layout) and the accompanying hash-based LB, plus the fit analysis of
/// Section 7.1.2 (32 engines do not fit; 16 engines do).

#include <memory>

#include "accel/pigasus.h"
#include "bench_common.h"
#include "net/rules.h"
#include "rpu/accelerator.h"

using namespace rosebud;

int
main() {
    sim::Rng rng(1);
    auto rules = net::IdsRuleSet::synthesize(64, rng);

    SystemConfig cfg;
    cfg.rpu_count = 8;
    cfg.lb_policy = lb::Policy::kHash;
    System sys(cfg);
    sys.attach_accelerators([&] { return std::make_unique<accel::PigasusMatcher>(rules); });

    bench::heading("Table 3: resource utilization per Pigasus RPU (percent of the "
                   "8-RPU region)");
    auto region = pr_region_capacity(8);
    auto print_row = [&](const char* name, sim::ResourceFootprint fp) {
        std::printf("%s\n", sim::format_footprint_row(name, fp, region).c_str());
    };
    sim::ResourceFootprint core{.luts = 2048, .regs = 1051};
    uint64_t bram = 24, uram = 32;
    sim::ResourceFootprint mem{.luts = 400 + 55 * bram + 28 * uram + 332 * 4,
                               .regs = 450 + 12 * bram + 6 * uram + 18 * 4,
                               .bram = 16,  // per Table 3 accounting (data-side BRAM)
                               .uram = 32};
    auto mgr = rpu::accel_manager_footprint(4);
    auto pig = sys.rpu(0).accelerator()->resources();
    print_row("RISCV core", core);
    print_row("Mem. subsystem", mem);
    print_row("Accel. manager", mgr);
    print_row("Pigasus", pig);
    print_row("Total", core + mem + mgr + pig);
    std::printf("%s\n", sim::format_footprint_row("RPU (region)", region,
                                                  sim::ResourceFootprint{})
                            .c_str());

    bench::heading("Hash-based LB (paper: 10467 LUTs / 24872 FFs / 26 BRAM)");
    std::printf("%s\n",
                sim::format_footprint_row("LB", sys.lb().resources(), sim::kXcvu9p)
                    .c_str());

    bench::heading("Fit analysis (Section 7.1.2)");
    accel::PigasusMatcher::Params p32;
    p32.engines = 32;
    accel::PigasusMatcher full(rules, p32);
    std::printf("32 engines: %llu LUTs vs 16-RPU region %llu -> %s\n",
                (unsigned long long)full.resources().luts,
                (unsigned long long)pr_region_capacity(16).luts,
                full.resources().luts > pr_region_capacity(16).luts ? "DOES NOT FIT"
                                                                    : "fits");
    std::printf("16 engines: %llu LUTs vs  8-RPU region %llu -> %s "
                "(8 RPUs x 16 engines = 4x the original parallelism)\n",
                (unsigned long long)pig.luts, (unsigned long long)region.luts,
                pig.luts < region.luts ? "FITS" : "does not fit");
    return 0;
}
