/// Multi-board cluster simulation benchmark (ROADMAP item 1).
///
/// Sweeps 1/2/4/8 boards behind the flow-consistent ECMP front end, every
/// board simulated as an independent time-decoupled shard group over the
/// certified ShardPlan (DESIGN.md §16). Reports aggregate delivered Gbps
/// and the host-time speedup of the cluster pass over per-board serial
/// tuned runs of the same flow subsets. Correctness is gated, not
/// assumed: every board's fingerprint must be bit-identical to its
/// standalone serial reference, and the decoupled executor must actually
/// have installed (a silent serial fallback would fake a 1.0x "speedup").
///
/// The headline row is the single-board 4-shard run: the time-decoupled
/// coop executor must beat the serial tuned kernel by >= 1.5x on this
/// low-duty workload with byte-identical results. A saturated row
/// (load 0.7) is included for honesty — when the DUT is busy every
/// cycle there is no idle time to batch away and decoupling is
/// throughput-neutral, which the PERFORMANCE.md section documents.
///
/// Set ROSEBUD_BENCH_JSON=<dir> for machine-readable rows
/// (bench/check_regression.py gates them against baselines/cluster.json).

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/cluster.h"
#ifdef ROSEBUD_SANITIZE
#include "obs/shardcheck.h"
#endif

using namespace rosebud;

namespace {

exp::ClusterParams
base_params(sim::Cycle window) {
    exp::ClusterParams p;
    p.rpu_count = 16;
    p.ports = 2;
    p.packet_size = 256;
    p.load = 0.005;  // low duty: the regime where time-skip batching pays
    p.decouple_shards = 4;
    p.shard_workers = 1;
    // The speedup is a single-host-thread claim: serial kernel vs the
    // cooperatively scheduled decoupled shards on the same thread.
    p.exec = sim::ShardSpec::Exec::kCoop;
    p.warmup = 2'000;
    p.window = window;
    return p;
}

}  // namespace

int
main(int argc, char** argv) {
    bench::JsonResults json("cluster");
    int failures = 0;

    unsigned max_boards = 8;
    sim::Cycle window = 240'000;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--boards" && i + 1 < argc) max_boards = unsigned(atoi(argv[++i]));
        else if (a == "--window" && i + 1 < argc) window = atoi(argv[++i]);
    }

    bench::heading("Cluster sweep: N boards, 2x100G/board, 256B @ load 0.005, "
                   "4-shard time-decoupled");
    std::printf("%-16s %8s %10s %10s %8s %10s %8s  %s\n", "mode", "boards",
                "agg Gbps", "serial(s)", "dec(s)", "speedup", "link", "fingerprints");

    auto report = [&](const char* mode, const exp::ClusterParams& p,
                      const exp::ClusterResult& r) {
        double worst_util = 0;
        for (const auto& b : r.boards)
            if (b.link_utilization > worst_util) worst_util = b.link_utilization;
        std::printf("%-16s %8u %10.3f %10.3f %8.3f %9.2fx %7.1f%%  %s%s\n", mode,
                    p.boards, r.aggregate_gbps, r.serial_host_s, r.cluster_host_s,
                    r.speedup, 100.0 * worst_util,
                    r.fingerprints_match ? "identical" : "MISMATCH",
                    r.decoupled_active ? "" : "  [decoupled DID NOT install]");
        const uint64_t cycles = uint64_t(p.boards) * (p.warmup + p.window);
        uint64_t frames = 0;
        for (const auto& b : r.boards) frames += b.frames;
        json.row({{"workload", "cluster"},
                  {"mode", mode},
                  {"boards", std::to_string(p.boards)},
                  {"aggregate_gbps", bench::num(r.aggregate_gbps)},
                  {"host_s", bench::num(r.cluster_host_s)},
                  {"serial_s", bench::num(r.serial_host_s)},
                  {"cycles", std::to_string(cycles)},
                  {"cycles_per_s", bench::num(double(cycles) / r.cluster_host_s)},
                  {"packets_per_s", bench::num(double(frames) / r.cluster_host_s)},
                  {"speedup", bench::num(r.speedup)},
                  {"sharder_imbalance", bench::num(r.sharder_imbalance)},
                  {"link_utilization", bench::num(worst_util)},
                  {"fingerprint_match", r.fingerprints_match ? "yes" : "NO"}});
        if (!r.fingerprints_match) {
            std::fprintf(stderr,
                         "FATAL: %s per-board fingerprint diverges from its "
                         "single-board serial reference\n", mode);
            ++failures;
        }
        if (!r.decoupled_active) {
            std::fprintf(stderr,
                         "FATAL: %s ran on the serial fallback (decoupled "
                         "executor never installed)\n", mode);
            ++failures;
        }
    };

    // Headline: single board, 4-shard coop executor vs the serial tuned
    // kernel, best of 3 (one-core hosts jitter; the fingerprint gate
    // applies to every rep regardless).
    {
        exp::ClusterParams p = base_params(window);
        p.boards = 1;
        exp::ClusterResult best = exp::run_cluster(p);
        report("decoupled-1st", p, best);
        for (int rep = 1; rep < 3; ++rep) {
            exp::ClusterResult again = exp::run_cluster(p);
            if (!again.fingerprints_match || !again.decoupled_active) ++failures;
            if (again.speedup > best.speedup) best = again;
        }
        report("decoupled-4shard", p, best);
        // The serial reference pass of this row doubles as the regression
        // gate's machine-speed calibration row.
        const uint64_t cycles = p.warmup + p.window;
        json.row({{"workload", "cluster"},
                  {"mode", "reference"},
                  {"boards", "1"},
                  {"host_s", bench::num(best.serial_host_s)},
                  {"cycles", std::to_string(cycles)},
                  {"cycles_per_s",
                   bench::num(double(cycles) / best.serial_host_s)}});
        if (best.speedup < 1.5) {
            std::fprintf(stderr,
                         "FATAL: single-board 4-shard speedup %.2fx below the "
                         "1.5x floor\n", best.speedup);
            ++failures;
        }
    }

    for (unsigned boards : {2u, 4u, 8u}) {
        if (boards > max_boards) break;
        exp::ClusterParams p = base_params(window);
        p.boards = boards;
        exp::ClusterResult r = exp::run_cluster(p);
        report((std::to_string(boards) + "-board").c_str(), p, r);
    }

    // Honesty row: at saturation the DUT is busy nearly every cycle, so
    // there is no idle time for the decoupled executor to batch away —
    // expect ~1.0x, gated only on correctness.
    {
        exp::ClusterParams p = base_params(window / 4);
        p.boards = 1;
        p.load = 0.7;
        exp::ClusterResult r = exp::run_cluster(p);
        report("saturated", p, r);
    }

#ifdef ROSEBUD_SANITIZE
    // Sanitized builds also run the dynamic lookahead cross-check with a
    // decoupled pass: every cut channel's observed latency must stay at
    // or above its certified bound, and the decoupled fingerprint must
    // equal the barrier run's (obs::run_shard_check).
    {
        obs::ShardCheckSpec spec;
        spec.shards = 2;
        spec.decouple = 2;
        spec.run_cycles = 20'000;
        obs::ShardCheckResult chk = obs::run_shard_check(spec);
        std::printf("\nshard-check (sanitized, decoupled): %s\n",
                    chk.ok ? "ok" : "FAILED");
        if (!chk.ok) ++failures;
    }
#endif

    return failures == 0 ? 0 : 1;
}
