/// Table 4 + Section 7.2: the blacklisting-firewall case study — per-RPU
/// resource utilization with the generated IP matcher, and the throughput
/// sweep showing 200 Gbps for packets >= 256 B with attack traffic
/// injected into the background load.

#include <memory>

#include "accel/firewall.h"
#include "bench_common.h"
#include "core/experiments.h"
#include "net/rules.h"
#include "rpu/accelerator.h"

using namespace rosebud;

int
main() {
    bench::check_with_oracle(oracle::Pipeline::kFirewall, 16);
    sim::Rng rng(7);
    auto blacklist = net::Blacklist::synthesize(1050, rng);

    bench::heading("Table 4: resource utilization per firewall RPU (percent of the "
                   "16-RPU region)");
    auto region = pr_region_capacity(16);
    accel::FirewallMatcher matcher(blacklist);
    sim::ResourceFootprint core{.luts = 1976, .regs = 1050};
    sim::ResourceFootprint mem{.luts = 400 + 55 * 24 + 28 * 32,
                               .regs = 450 + 12 * 24 + 6 * 32,
                               .bram = 16,
                               .uram = 32};
    auto mgr = rpu::accel_manager_footprint(0);
    auto fw = matcher.resources();
    auto print_row = [&](const char* name, sim::ResourceFootprint fp) {
        std::printf("%s\n", sim::format_footprint_row(name, fp, region).c_str());
    };
    print_row("RISCV core", core);
    print_row("Mem. subsystem", mem);
    print_row("Accel. manager", mgr);
    print_row("Firewall IP checker", fw);
    print_row("Total", core + mem + mgr + fw);
    std::printf("%s\n", sim::format_footprint_row("RPU (region)", region,
                                                  sim::ResourceFootprint{})
                            .c_str());
    std::printf("(%zu blacklist entries compiled into the two-stage matcher)\n",
                matcher.entry_count());

    bench::heading("Section 7.2: firewall throughput with injected attack traffic");
    bench::JsonResults json("table4_firewall");
    std::printf("%8s %14s %12s %8s %10s %10s\n", "size(B)", "absorbed(Gbps)",
                "line(Gbps)", "frac", "blocked", "expected");
    for (uint32_t size : {64u, 128u, 256u, 512u, 1024u, 1500u}) {
        exp::FirewallParams p;
        p.size = size;
        auto r = exp::run_firewall(p);
        std::printf("%8u %14.1f %12.1f %7.1f%% %10llu %10llu\n", size, r.achieved_gbps,
                    r.line_gbps, 100.0 * r.achieved_gbps / r.line_gbps,
                    (unsigned long long)r.blocked,
                    (unsigned long long)r.expected_blocked);
        json.row({{"size", std::to_string(size)},
                  {"absorbed_gbps", bench::num(r.achieved_gbps)},
                  {"line_gbps", bench::num(r.line_gbps)},
                  {"blocked", std::to_string(r.blocked)},
                  {"expected_blocked", std::to_string(r.expected_blocked)}});
    }
    std::printf("paper: 200 Gbps for packets >= 256 B\n");
    return 0;
}
