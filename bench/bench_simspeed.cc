/// Simulation-speed benchmark (host time, not simulated time).
///
/// Four execution modes of the same workloads:
///  * reference — predecode off, idle skipping off, serial ticking: the
///    plain interpret-everything two-phase kernel;
///  * tuned     — predecoded RV32 dispatch + quiescence skipping (the
///    defaults every experiment harness runs with);
///  * parallel  — tuned plus the thread-pool tick executor;
///  * decoupled — tuned plus time-decoupled cooperative execution over
///    the certified 4-way ShardPlan (DESIGN.md §16).
///
/// All three must produce bit-identical architectural state: every run is
/// fingerprinted (System::state_fingerprint) and any divergence aborts the
/// benchmark — speed from a wrong simulation is meaningless. The headline
/// number is the tuned-vs-reference host-time speedup on the Figure 7
/// forwarding sweep (target: >= 2x).
///
/// Set ROSEBUD_BENCH_JSON=<dir> to export machine-readable rows.

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "accel/firewall.h"
#include "accel/pigasus.h"
#include "bench_common.h"
#include "core/experiments.h"
#include "firmware/programs.h"
#include "net/tracegen.h"
#include "obs/health.h"

using namespace rosebud;

namespace {

double
now_s() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Mode {
    const char* name;
    exp::SimTuning tuning;
};

// "reference" is the pre-fast-path kernel regime: interpretive decode on
// every issue, every component and clocked primitive ticked/committed every
// cycle, no datapath scan guards (commit_compat).
const Mode kModes[] = {
    {"reference",
     {.predecode = false, .idle_skip = false, .parallel_ticks = 0,
      .commit_compat = true}},
    {"tuned", {.predecode = true, .idle_skip = true, .parallel_ticks = 0}},
    {"parallel", {.predecode = true, .idle_skip = true, .parallel_ticks = 2}},
    // Time-decoupled cooperative execution over the certified 4-way
    // ShardPlan (DESIGN.md §16). Pigasus falls back to the barrier kernel
    // (the hardware reassembler is a structural obstacle) — the row then
    // simply measures tuned, still fingerprint-gated.
    {"decoupled", {.predecode = true, .idle_skip = true, .parallel_ticks = 0,
                   .shards = 4, .shard_workers = 1}},
};

struct RunResult {
    double host_s = 0;
    uint64_t cycles = 0;
    uint64_t packets = 0;
    uint64_t fingerprint = 0;
};

enum class Pipeline { kForwarder, kFirewall, kPigasus };

/// One fixed workload run under explicit tuning; returns host time, the
/// simulated cycle count, delivered packets, and the state fingerprint.
/// When `health` is non-null, a HealthMonitor with that config rides along
/// for the whole run (attached before traffic, detached only after the
/// fingerprint is read) — this is how the <=5% production-health overhead
/// claim is measured.
RunResult
run_pipeline(Pipeline which, const exp::SimTuning& t,
             const obs::HealthConfig* health = nullptr,
             uint64_t run_cycles = 60'000) {
    double t0 = now_s();

    SystemConfig cfg;
    cfg.rpu_count = 8;
    net::IdsRuleSet rules;
    net::Blacklist blacklist;
    sim::Rng rng(11);
    if (which == Pipeline::kPigasus) {
        rules = net::IdsRuleSet::synthesize(64, rng);
        cfg.lb_policy = lb::Policy::kRoundRobin;
        cfg.hw_reassembler = true;
    } else if (which == Pipeline::kFirewall) {
        blacklist = net::Blacklist::synthesize(512, rng);
    }
    System sys(cfg);

    sys.kernel().set_idle_skip(t.idle_skip);
    sys.kernel().set_commit_compat(t.commit_compat);
    if (t.parallel_ticks > 1) {
        sys.kernel().set_race_check(false);
        sys.kernel().set_parallel_ticks(t.parallel_ticks);
    }
    for (unsigned i = 0; i < sys.rpu_count(); ++i)
        sys.rpu(i).core().set_predecode(t.predecode);

    fwlib::Program fw;
    if (which == Pipeline::kPigasus) {
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::PigasusMatcher>(rules); });
        fw = fwlib::pigasus_hw_reorder();
    } else if (which == Pipeline::kFirewall) {
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::FirewallMatcher>(blacklist); });
        fw = fwlib::firewall();
    } else {
        fw = fwlib::forwarder();
    }
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.host().set_rx_handler([](net::PacketPtr) {});
    sys.run_cycles(500);

    std::unique_ptr<obs::HealthMonitor> mon;
    if (health) {
        mon = std::make_unique<obs::HealthMonitor>(*health);
        mon->attach(sys);
    }

    for (unsigned port = 0; port < 2; ++port) {
        net::TrafficSpec spec;
        spec.packet_size = 512;
        spec.attack_fraction = which == Pipeline::kForwarder ? 0.0 : 0.05;
        spec.seed = 21 + port;
        auto gen = std::make_shared<net::TraceGenerator>(
            spec, which == Pipeline::kPigasus ? &rules : nullptr,
            which == Pipeline::kFirewall ? &blacklist : nullptr);
        sys.add_source({.port = port, .line_gbps = 100.0, .load = 0.7},
                       [gen]() { return gen->next(); });
    }
    if (t.shards > 1) {
        // Single host thread: cooperative interleaving is the honest
        // executor (kThreads would just add rendezvous spinning).
        sys.set_decouple_exec(sim::ShardSpec::Exec::kCoop);
        sys.set_decouple_shards(t.shards, t.shard_workers);
    }
    sys.run_cycles(run_cycles);

    RunResult out;
    out.cycles = sys.kernel().now();
    out.packets = sys.sink(0).frames() + sys.sink(1).frames();
    // Fingerprint taken while the monitor is still attached: the health
    // layer must not perturb a single bit of architectural state.
    out.fingerprint = sys.state_fingerprint();
    out.host_s = now_s() - t0;
    if (mon) {
        mon->flush_epoch();
        mon->detach();
    }
    return out;
}

const char*
pipeline_name(Pipeline p) {
    switch (p) {
        case Pipeline::kForwarder: return "forwarder";
        case Pipeline::kFirewall: return "firewall";
        default: return "pigasus";
    }
}

/// The Figure 7a forwarding sweep (16 RPUs, 2x100G, every packet size)
/// under one tuning; all simulated results are returned for cross-mode
/// equality checking.
double
fig7_sweep(const exp::SimTuning& t, std::vector<exp::ForwardingPoint>& points,
           uint64_t& cycles) {
    exp::set_sim_tuning(t);
    points.clear();
    cycles = 0;
    double host = 0;
    for (uint32_t size : exp::figure7_sizes()) {
        exp::ForwardingParams p;
        p.rpu_count = 16;
        p.size = size;
        p.ports = 2;
        points.push_back(exp::run_forwarding(p));
        host += exp::last_run_host_seconds();
        cycles += 500 + p.warmup + p.window;
    }
    return host;
}

}  // namespace

int
main() {
    bench::JsonResults json("simspeed");
    int failures = 0;

    bench::heading("Simulation speed: fixed workloads, 8 RPUs, 60k cycles");
    std::printf("%-10s %-10s %10s %14s %14s %18s\n", "workload", "mode", "host(s)",
                "Mcycles/s", "kpkts/s", "fingerprint");
    for (Pipeline w : {Pipeline::kForwarder, Pipeline::kFirewall, Pipeline::kPigasus}) {
        uint64_t ref_fp = 0;
        double ref_s = 0;
        for (const Mode& m : kModes) {
            // Long runs + best-of-3: these per-mode rows feed the
            // perf-regression gate (bench/check_regression.py), which
            // applies a 10% tolerance — the timing floor has to be stable
            // to a few percent for that to hold on shared machines.
            const uint64_t kGateCycles = 240'000;
            RunResult r = run_pipeline(w, m.tuning, nullptr, kGateCycles);
            for (int rep = 1; rep < 3; ++rep) {
                RunResult again = run_pipeline(w, m.tuning, nullptr, kGateCycles);
                if (again.host_s < r.host_s) r = again;
            }
            if (m.tuning.predecode == false) {
                ref_fp = r.fingerprint;
                ref_s = r.host_s;
            }
            bool match = r.fingerprint == ref_fp;
            std::printf("%-10s %-10s %10.3f %14.2f %14.1f   0x%016llx%s\n",
                        pipeline_name(w), m.name, r.host_s,
                        double(r.cycles) / r.host_s / 1e6,
                        double(r.packets) / r.host_s / 1e3,
                        (unsigned long long)r.fingerprint, match ? "" : "  MISMATCH");
            json.row({{"workload", pipeline_name(w)},
                      {"mode", m.name},
                      {"host_s", bench::num(r.host_s)},
                      {"cycles", std::to_string(r.cycles)},
                      {"packets", std::to_string(r.packets)},
                      {"cycles_per_s", bench::num(double(r.cycles) / r.host_s)},
                      {"packets_per_s", bench::num(double(r.packets) / r.host_s)},
                      {"speedup", bench::num(ref_s / r.host_s)},
                      {"fingerprint_match", match ? "yes" : "NO"}});
            if (!match) {
                std::fprintf(stderr,
                             "FATAL: %s/%s fingerprint diverges from reference\n",
                             pipeline_name(w), m.name);
                ++failures;
            }
        }
    }

    bench::heading("Health-layer overhead: tuned mode, detached vs attached");
    {
        // Full production health config: flight recorder, watchdog, SLO
        // histograms, metrics registry — everything `rosebud_cli health`
        // attaches. Longer runs (240k cycles) plus best-of-3 on each side
        // keep host-timer noise well under the 5% threshold being gated.
        obs::HealthConfig hc;
        hc.slo = obs::parse_slo("latency_p99 <= 200us, drop_rate <= 0.05");
        const uint64_t kOverheadCycles = 480'000;
        std::printf("%-10s %12s %12s %10s %18s\n", "workload", "detached(s)",
                    "attached(s)", "overhead", "fingerprint");
        for (Pipeline w : {Pipeline::kForwarder, Pipeline::kPigasus}) {
            // Warm caches/allocator before timing anything.
            run_pipeline(w, kModes[1].tuning, nullptr, kOverheadCycles);
            // Host clocks on shared machines drift (frequency scaling,
            // co-tenancy), so absolute best-of-N is unstable. Instead run
            // detached/attached back-to-back in pairs — drift within a pair
            // is negligible — and take the median of the per-pair ratios,
            // which is robust to a few noise-contaminated pairs.
            RunResult det, att;
            std::vector<double> ratios;
            for (int rep = 0; rep < 7; ++rep) {
                // Alternate order each rep to cancel any ordering bias.
                RunResult a, d;
                if (rep % 2 == 0) {
                    d = run_pipeline(w, kModes[1].tuning, nullptr, kOverheadCycles);
                    a = run_pipeline(w, kModes[1].tuning, &hc, kOverheadCycles);
                } else {
                    a = run_pipeline(w, kModes[1].tuning, &hc, kOverheadCycles);
                    d = run_pipeline(w, kModes[1].tuning, nullptr, kOverheadCycles);
                }
                ratios.push_back(a.host_s / d.host_s);
                det = d;
                att = a;
            }
            std::sort(ratios.begin(), ratios.end());
            double overhead = ratios[ratios.size() / 2] - 1.0;
            bool match = att.fingerprint == det.fingerprint;
            std::printf("%-10s %12.3f %12.3f %+9.1f%%   %s%s\n",
                        pipeline_name(w), det.host_s, att.host_s,
                        overhead * 100.0, match ? "identical" : "MISMATCH",
                        overhead > 0.05 ? "  (over 5% target)" : "");
            json.row({{"workload", pipeline_name(w)},
                      {"mode", "tuned+health"},
                      {"host_s", bench::num(att.host_s)},
                      {"detached_s", bench::num(det.host_s)},
                      {"health_overhead", bench::num(overhead)},
                      {"cycles", std::to_string(att.cycles)},
                      {"packets", std::to_string(att.packets)},
                      {"fingerprint_match", match ? "yes" : "NO"}});
            if (!match) {
                std::fprintf(stderr,
                             "FATAL: %s health-attached fingerprint diverges\n",
                             pipeline_name(w));
                ++failures;
            }
            // Hard-fail only at 2x the target: shared runners jitter a few
            // percent even with paired medians, and the JSON row is the
            // precise record the regression gate diffs against baselines.
            if (overhead > 0.10) {
                std::fprintf(stderr,
                             "FATAL: %s health overhead %.1f%% exceeds 5%% "
                             "target by more than 2x\n",
                             pipeline_name(w), overhead * 100.0);
                ++failures;
            }
        }
    }

    bench::heading("Figure 7a forwarding sweep: reference vs tuned host time");
    std::vector<exp::ForwardingPoint> ref_pts, tuned_pts;
    uint64_t cycles = 0;
    double ref_s = fig7_sweep(kModes[0].tuning, ref_pts, cycles);
    double tuned_s = fig7_sweep(kModes[1].tuning, tuned_pts, cycles);
    exp::set_sim_tuning({});
    for (size_t i = 0; i < ref_pts.size(); ++i) {
        // Exactness gate: the speedups must not change a single result.
        if (ref_pts[i].achieved_gbps != tuned_pts[i].achieved_gbps ||
            ref_pts[i].achieved_mpps != tuned_pts[i].achieved_mpps) {
            std::fprintf(stderr, "FATAL: tuned sweep diverges at size %u\n",
                         ref_pts[i].size);
            ++failures;
        }
    }
    double speedup = ref_s / tuned_s;
    std::printf("reference: %.2f s   tuned: %.2f s   speedup: %.2fx "
                "(target >= 2.0x)   results: %s\n",
                ref_s, tuned_s, speedup, failures == 0 ? "identical" : "DIVERGED");
    json.row({{"workload", "fig7_sweep"},
              {"reference_s", bench::num(ref_s)},
              {"tuned_s", bench::num(tuned_s)},
              {"cycles", std::to_string(cycles)},
              {"speedup", bench::num(speedup)}});

    return failures == 0 ? 0 : 1;
}
