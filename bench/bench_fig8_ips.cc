/// Figure 8: IPS case study — bandwidth (a) and packet rate (b) vs packet
/// size for (1) Pigasus-on-Rosebud with the hardware reorder engine,
/// (2) with software reordering on the RISC-V cores, and (3) Snort 3 +
/// Hyperscan on a 32-core Xeon. Workload: 1% attack traffic, 0.3% TCP
/// reordering (paper Section 7.1.3).
///
/// Paper headlines reproduced: HW-reorder reaches ~200 Gbps for packets
/// >= ~1 KB (paper: 800 B); SW-reorder reaches ~100 Gbps at 800 B; Snort
/// plateaus at 4.7-5.6 MPPS far below both.

#include "bench_common.h"
#include "baseline/snort_model.h"
#include "core/experiments.h"
#include "net/tracegen.h"

using namespace rosebud;

int
main() {
    const std::vector<uint32_t> sizes = {64, 128, 256, 512, 800, 1024, 1500, 2048};

    sim::Rng rng(42);
    auto rules = net::IdsRuleSet::synthesize(64, rng);
    baseline::SnortModel snort(rules);

    bench::JsonResults json("fig8_ips");
    bench::heading("Figure 8a/8b: IPS bandwidth and packet rate (1% attack, 0.3% reorder)");
    std::printf("%8s | %13s %13s | %13s %13s | %13s %13s | %10s\n", "size(B)",
                "HW(Gbps)", "HW(Mpps)", "SW(Gbps)", "SW(Mpps)", "Snort(Gbps)",
                "Snort(Mpps)", "line(Gbps)");
    for (uint32_t size : sizes) {
        exp::IpsParams p;
        p.size = size;
        p.mode = exp::IpsMode::kHwReorder;
        auto hw = exp::run_ips(p);
        p.mode = exp::IpsMode::kSwReorder;
        auto sw = exp::run_ips(p);

        net::TrafficSpec spec;
        spec.packet_size = size;
        spec.attack_fraction = 0.01;
        spec.seed = 42;
        net::TraceGenerator gen(spec, &rules);
        auto sn = snort.run(gen, 500);

        std::printf("%8u | %13.1f %13.2f | %13.1f %13.2f | %13.1f %13.2f | %10.1f\n",
                    size, hw.achieved_gbps, hw.achieved_mpps, sw.achieved_gbps,
                    sw.achieved_mpps, sn.gbps, sn.mpps, hw.line_gbps);
        json.row({{"size", std::to_string(size)},
                  {"hw_gbps", bench::num(hw.achieved_gbps)},
                  {"sw_gbps", bench::num(sw.achieved_gbps)},
                  {"snort_gbps", bench::num(sn.gbps)},
                  {"line_gbps", bench::num(hw.line_gbps)}});
    }

    std::printf("\nDetection check (HW reorder, 1024 B): ");
    exp::IpsParams p;
    p.size = 1024;
    auto r = exp::run_ips(p);
    std::printf("%llu/%llu attack packets delivered to host\n",
                (unsigned long long)r.matched_to_host,
                (unsigned long long)r.expected_attacks);
    std::printf("Original Pigasus reference: 100 Gbps line rate "
                "(Rosebud doubles it at >= 1 KB).\n");
    return 0;
}
