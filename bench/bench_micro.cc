/// Google-benchmark microbenchmarks of the substrates themselves (host
/// machine performance, not simulated time): pattern-matching throughput,
/// flow hashing, the RISC-V interpreter, and whole-system simulation rate.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/system.h"
#include "firmware/programs.h"
#include "net/flow.h"
#include "net/patmatch.h"
#include "net/rules.h"
#include "net/tracegen.h"
#include "rv/assembler.h"
#include "rv/core.h"

using namespace rosebud;

namespace {

void
BM_AhoCorasickScan(benchmark::State& state) {
    sim::Rng rng(1);
    auto rules = net::IdsRuleSet::synthesize(size_t(state.range(0)), rng);
    net::AhoCorasick ac;
    for (size_t i = 0; i < rules.size(); ++i) {
        ac.add_pattern(rules.at(i).fast_pattern().bytes, uint32_t(i));
    }
    ac.finalize();
    std::vector<uint8_t> payload(1500);
    for (size_t i = 0; i < payload.size(); ++i) payload[i] = uint8_t(rng.next());
    std::vector<net::PatternMatch> out;
    for (auto _ : state) {
        out.clear();
        benchmark::DoNotOptimize(ac.scan(payload.data(), payload.size(), out));
    }
    state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(payload.size()));
}
BENCHMARK(BM_AhoCorasickScan)->Arg(16)->Arg(64)->Arg(256);

void
BM_FlowHash(benchmark::State& state) {
    net::PacketBuilder b;
    b.ipv4(0x0a000001, 0x0a000002).tcp(1000, 2000).frame_size(64);
    auto p = b.build();
    for (auto _ : state) benchmark::DoNotOptimize(net::packet_flow_hash(*p));
}
BENCHMARK(BM_FlowHash);

void
BM_Crc32c(benchmark::State& state) {
    std::vector<uint8_t> data(size_t(state.range(0)), 0xa5);
    for (auto _ : state) benchmark::DoNotOptimize(net::crc32c(data.data(), data.size()));
    state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(1500);

void
BM_RiscvInterpreter(benchmark::State& state) {
    // Tight ALU loop: measures simulated instructions per host second.
    class NullBus : public rv::Bus {
        Access load(uint32_t, uint32_t) override { return {}; }
        Access store(uint32_t, uint32_t, uint32_t) override { return {}; }
        uint32_t fetch(uint32_t addr) override { return code[(addr / 4) % code.size()]; }

     public:
        std::vector<uint32_t> code;
    } bus;
    rv::Assembler a;
    a.label("loop");
    a.addi(rv::t0, rv::t0, 1);
    a.xor_(rv::t1, rv::t1, rv::t0);
    a.slli(rv::t2, rv::t1, 3);
    a.j("loop");
    bus.code = a.assemble();
    rv::Core core("bench", bus);
    core.reset(0);
    for (auto _ : state) core.tick();
    state.SetItemsProcessed(int64_t(core.instret()));
}
BENCHMARK(BM_RiscvInterpreter);

void
BM_PacketParse(benchmark::State& state) {
    net::PacketBuilder b;
    b.ipv4(1, 2).tcp(3, 4).frame_size(uint32_t(state.range(0)));
    auto p = b.build();
    for (auto _ : state) benchmark::DoNotOptimize(net::parse_packet(*p));
}
BENCHMARK(BM_PacketParse)->Arg(64)->Arg(1500);

void
BM_FullSystemCyclesPerSecond(benchmark::State& state) {
    SystemConfig cfg;
    cfg.rpu_count = unsigned(state.range(0));
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    auto gen = [proto = net::PacketBuilder()
                            .ipv4(0x0a000001, 0x0a000002)
                            .udp(1, 2)
                            .frame_size(512)
                            .build()]() { return std::make_shared<net::Packet>(*proto); };
    sys.add_source({.port = 0, .load = 1.0}, gen);
    sys.add_source({.port = 1, .load = 1.0}, gen);
    for (auto _ : state) sys.run_cycles(1);
    state.SetItemsProcessed(int64_t(state.iterations()));
    state.counters["sim_MHz_per_s"] = benchmark::Counter(
        double(state.iterations()) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullSystemCyclesPerSecond)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
