/// Ablation studies of the design choices DESIGN.md calls out: each sweep
/// varies one structural parameter of the framework and reports its effect
/// on a headline result, showing *why* the paper's numbers look the way
/// they do.
///
///  1. RPU ingress DMA setup gap       -> the Figure 7b (8-RPU) shape;
///  2. per-RPU link width              -> Equation 1's 2/32 latency term;
///  3. packet slot count               -> pipelining depth vs throughput;
///  4. broadcast TX FIFO depth         -> the saturated-latency structure;
///  5. LB policy                       -> forwarding under skewed traffic.

#include <memory>

#include "bench_common.h"
#include "core/experiments.h"
#include "firmware/programs.h"
#include "net/tracegen.h"

using namespace rosebud;

namespace {

/// Forwarding fraction-of-line at one point with a custom system tweak.
double
forwarding_fraction(unsigned rpus, uint32_t size,
                    const std::function<void(SystemConfig&)>& tweak,
                    fwlib::SlotParams slots = {}) {
    SystemConfig cfg;
    cfg.rpu_count = rpus;
    tweak(cfg);
    System sys(cfg);
    auto fw = fwlib::forwarder(slots);
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);
    net::PacketBuilder b;
    b.ipv4(0x0a000001, 0x0a000002).udp(1, 2).frame_size(size);
    auto proto = b.build();
    for (unsigned port = 0; port < 2; ++port) {
        sys.add_source({.port = port, .line_gbps = 100.0, .load = 1.0},
                       [proto] { return std::make_shared<net::Packet>(*proto); });
    }
    sys.run_cycles(25000);
    sys.sink(0).start_window();
    sys.sink(1).start_window();
    sys.run_cycles(60000);
    double secs = 60000.0 / sim::kClockHz;
    double gbps =
        double(sys.sink(0).window_bytes() + sys.sink(1).window_bytes()) * 8 / secs / 1e9;
    return gbps / net::line_rate_goodput_gbps(size, 200.0);
}

}  // namespace

int
main() {
    bench::heading("Ablation 1: RPU ingress DMA setup gap (8 RPUs, 512 B @ 200G)");
    std::printf("The non-overlapped per-packet DMA overhead is what keeps the 8-RPU\n"
                "layout from line rate below ~1 KB (Figure 7b). Default: 11 cycles.\n");
    std::printf("%12s %16s\n", "gap(cycles)", "frac of line");
    for (unsigned gap : {0u, 4u, 8u, 11u, 16u, 24u}) {
        double frac = forwarding_fraction(
            8, 512, [gap](SystemConfig& c) { c.rpu_template.ingress_gap_cycles = gap; });
        std::printf("%12u %15.1f%%\n", gap, 100.0 * frac);
    }

    bench::heading("Ablation 2: per-RPU link width (16 RPUs, latency at 1024 B)");
    std::printf("Equation 1's 2/32 term comes from the 128-bit (16 B/cycle) links;\n"
                "wider links trade fabric resources for latency.\n");
    std::printf("%14s %14s %14s\n", "width(B/cyc)", "latency(us)", "eq1-slope(ns/B)");
    for (uint32_t width : {8u, 16u, 32u, 64u}) {
        SystemConfig cfg;
        cfg.rpu_count = 16;
        cfg.rpu_template.link_bytes_per_cycle = width;
        System sys(cfg);
        auto fw = fwlib::forwarder();
        sys.host().load_firmware_all(fw.image, fw.entry);
        sys.host().boot_all();
        sys.run_cycles(500);
        net::PacketBuilder b;
        b.ipv4(1, 2).udp(1, 2).frame_size(1024);
        auto proto = b.build();
        sys.add_source({.port = 0, .load = 0.03},
                       [proto] { return std::make_shared<net::Packet>(*proto); });
        sys.run_cycles(30000);
        sys.sink(1).start_window();
        sys.run_cycles(120000);
        double us = sys.sink(1).latency().mean() / 1e3;
        double slope = 8.0 * (2.0 / 100.0 + 2.0 / (width * 2.0));
        std::printf("%14u %14.3f %14.2f\n", width, us, slope);
    }

    bench::heading("Ablation 3: packet slot count (16 RPUs, 64 B @ 200G)");
    std::printf("Slots bound how many packets pipeline inside each RPU; too few\n"
                "starve the 16-cycle forwarder loop. Paper default: 32.\n");
    std::printf("%8s %16s\n", "slots", "rate(Mpps)");
    for (uint32_t slots : {2u, 4u, 8u, 16u, 32u}) {
        double frac = forwarding_fraction(
            16, 64, [](SystemConfig&) {}, fwlib::SlotParams{slots, 16 * 1024});
        std::printf("%8u %16.1f\n", slots,
                    frac * net::line_rate_pps(64, 200.0) / 1e6);
    }

    bench::heading("Ablation 4: broadcast TX FIFO depth (16 RPUs, saturated)");
    std::printf("Saturated latency is queueing: depth x ~16-cycle grant period\n"
                "(paper: 18 slots = 16 FIFO + 2 PR registers -> 1596-1680 ns).\n");
    std::printf("%8s %22s\n", "depth", "saturated latency(ns)");
    for (unsigned depth : {8u, 18u, 32u}) {
        SystemConfig cfg;
        cfg.rpu_count = 16;
        cfg.broadcast.tx_fifo_depth = depth;
        System sys(cfg);
        auto stress = fwlib::broadcast_sender(0);
        sys.host().load_firmware_all(stress.image, stress.entry);
        sim::Cycle boot = sys.kernel().now();
        sys.host().boot_all();
        sim::Sampler lat;
        sys.broadcast().set_delivery_probe([&](uint32_t, uint32_t v, sim::Cycle now) {
            if (now > boot + 20000) lat.add(sim::cycles_to_ns(now - boot - v));
        });
        sys.run_cycles(80000);
        std::printf("%8u %12.0f..%-8.0f\n", depth, lat.min(), lat.max());
    }

    bench::heading("Ablation 5: LB policy under skewed flows (16 RPUs, 512 B @ 200G)");
    std::printf("%14s %16s\n", "policy", "frac of line");
    for (auto [name, policy] :
         {std::pair{"round-robin", lb::Policy::kRoundRobin},
          std::pair{"least-loaded", lb::Policy::kLeastLoaded},
          std::pair{"flow-hash", lb::Policy::kHash}}) {
        SystemConfig cfg;
        cfg.rpu_count = 16;
        cfg.lb_policy = policy;
        System sys(cfg);
        auto fw = fwlib::forwarder();
        sys.host().load_firmware_all(fw.image, fw.entry);
        sys.host().boot_all();
        sys.run_cycles(500);
        // Skewed workload: 16 flows, so the hash policy suffers collisions.
        for (unsigned port = 0; port < 2; ++port) {
            net::TrafficSpec spec;
            spec.packet_size = 512;
            spec.flow_count = 16;
            spec.seed = port + 1;
            auto gen = std::make_shared<net::TraceGenerator>(spec);
            sys.add_source({.port = port, .load = 1.0}, [gen] { return gen->next(); });
        }
        sys.run_cycles(25000);
        sys.sink(0).start_window();
        sys.sink(1).start_window();
        sys.run_cycles(60000);
        double secs = 60000.0 / sim::kClockHz;
        double gbps = double(sys.sink(0).window_bytes() + sys.sink(1).window_bytes()) *
                      8 / secs / 1e9;
        std::printf("%14s %15.1f%%\n", name,
                    100.0 * gbps / net::line_rate_goodput_gbps(512, 200.0));
    }
    std::printf("(Flow-hash pays for affinity under few flows — the \"non-perfect\n"
                "load balancing\" the paper observes in the SW-reorder results.)\n");
    return 0;
}
