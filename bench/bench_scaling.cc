/// Scaling study beyond the paper's two layouts (Conclusion/Discussion:
/// hardened RPUs and NoC-based distribution would allow more units):
/// forwarding throughput and small-packet rate as the RPU count grows,
/// showing which structural limit binds at each scale.

#include "bench_common.h"
#include "core/experiments.h"

using namespace rosebud;

int
main() {
    bench::heading("Scaling: forwarding vs RPU count (200 Gbps offered)");
    std::printf("%6s %10s %16s %14s %22s\n", "RPUs", "size(B)", "achieved(Gbps)",
                "rate(Mpps)", "binding limit");
    for (unsigned rpus : {4u, 8u, 16u, 32u}) {
        for (uint32_t size : {64u, 512u, 1500u}) {
            exp::ForwardingParams p;
            p.rpu_count = rpus;
            p.size = size;
            p.warmup = 20000;
            p.window = 60000;
            auto r = exp::run_forwarding(p);
            // Identify what binds: the 16-cycle firmware loop, the
            // per-port 125 MPPS issue limit, or the line itself.
            double fw_cap = double(rpus) * 250.0 / 16.0;       // MPPS
            double lb_cap = 250.0;                             // 2 ports x 125
            const char* limit = "line rate";
            if (r.achieved_mpps < r.line_mpps * 0.99) {
                limit = fw_cap <= lb_cap ? "16-cycle firmware loop"
                                         : "125 MPPS/port distribution";
            }
            std::printf("%6u %10u %16.1f %14.2f %22s\n", rpus, size, r.achieved_gbps,
                        r.achieved_mpps, limit);
        }
    }
    std::printf("\n(The paper's Discussion: hardening the cores or moving the\n"
                "distribution onto a Versal NoC lifts the small-packet caps.)\n");
    return 0;
}
