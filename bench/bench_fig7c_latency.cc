/// Figure 7 (c): round-trip forwarding latency vs packet size, at low and
/// maximum load, against the paper's serialization model (Equation 1):
///
///   est. latency (us) = size * 8 * (2/100 + 2/32) / 1000 + 0.765
///
/// Paper headlines reproduced: low-load latency tracks Eq. 1 (0.7-7 us
/// over the size sweep); maximum load adds only marginal latency except at
/// 64 B, where the full receive FIFO adds ~32.8 us.

#include "bench_common.h"
#include "core/experiments.h"

using namespace rosebud;

int
main() {
    bench::heading("Figure 7c: round-trip latency vs packet size");
    std::printf("%8s %12s %12s %12s %12s %14s\n", "size(B)", "low(us)", "eq1(us)",
                "max(us)", "min(us)", "maxload(us)");
    for (uint32_t size : exp::figure7_sizes()) {
        exp::LatencyParams low;
        low.size = size;
        low.load = 0.05;
        auto l = exp::run_latency(low);

        exp::LatencyParams full;
        full.size = size;
        full.load = 1.0;
        full.warmup = 130000;  // let the receive FIFO reach steady state
        full.window = 50000;
        auto f = exp::run_latency(full);

        std::printf("%8u %12.3f %12.3f %12.3f %12.3f %14.3f\n", size, l.mean_us,
                    l.eq1_us, l.max_us, l.min_us, f.mean_us);
    }
    std::printf("\npaper: 64 B maximum load adds ~32.8 us (full receive FIFO)\n");
    return 0;
}
