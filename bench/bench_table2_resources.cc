/// Table 2: base resource utilization for the 8-RPU Rosebud runtime.

#include "bench_common.h"

int
main() {
    rosebud::SystemConfig cfg;
    cfg.rpu_count = 8;
    rosebud::System sys(cfg);
    rosebud::bench::print_resource_table(
        "Table 2: Base resource utilization for 8 RPUs (paper: 164699 LUTs total)",
        sys.resource_report());
    return 0;
}
