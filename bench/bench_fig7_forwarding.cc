/// Figure 7 (a) and (b): packet-forwarding throughput as a function of
/// packet size, for the 16-RPU and 8-RPU layouts at 100 and 200 Gbps.
/// Paper headlines reproduced:
///  * 16 RPUs, 200G, 64 B: 88% of line = 250 MPPS (the 16-cycle loop cap);
///  * 16 RPUs: line rate for every other size;
///  * 8 RPUs: 125 MPPS cap, full 200G line rate from 1 KB packets;
///  * single port (100G): 88%/89% at 64/65 B for both layouts.

#include "bench_common.h"
#include "core/experiments.h"

using namespace rosebud;

namespace {

void
sweep(unsigned rpus, unsigned ports, bench::JsonResults& json) {
    std::printf("\n--- %u RPUs, %u x 100 Gbps ---\n", rpus, ports);
    std::printf("%8s %14s %14s %12s %12s %8s\n", "size(B)", "achieved(Gbps)",
                "line(Gbps)", "rate(Mpps)", "max(Mpps)", "frac");
    for (uint32_t size : exp::figure7_sizes()) {
        exp::ForwardingParams p;
        p.rpu_count = rpus;
        p.size = size;
        p.ports = ports;
        auto r = exp::run_forwarding(p);
        std::printf("%8u %14.2f %14.2f %12.2f %12.2f %7.1f%%\n", size, r.achieved_gbps,
                    r.line_gbps, r.achieved_mpps, r.line_mpps,
                    100.0 * r.achieved_gbps / r.line_gbps);
        json.row({{"rpus", std::to_string(rpus)},
                  {"ports", std::to_string(ports)},
                  {"size", std::to_string(size)},
                  {"achieved_gbps", bench::num(r.achieved_gbps)},
                  {"line_gbps", bench::num(r.line_gbps)},
                  {"achieved_mpps", bench::num(r.achieved_mpps)}});
    }
}

}  // namespace

int
main() {
    bench::check_with_oracle(oracle::Pipeline::kForwarder, 16);
    bench::check_with_oracle(oracle::Pipeline::kForwarder, 8);
    bench::JsonResults json("fig7_forwarding");
    bench::heading("Figure 7a: forwarding throughput, 16 RPUs");
    sweep(16, 2, json);
    sweep(16, 1, json);
    bench::heading("Figure 7b: forwarding throughput, 8 RPUs");
    sweep(8, 2, json);
    sweep(8, 1, json);
    return 0;
}
