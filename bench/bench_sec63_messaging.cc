/// Section 6.3: inter-RPU messaging performance.
///  * Loopback: two-step forwarding through the single 100G loopback
///    channel — paper: 60%/61% of line at 64/65 B, full rate >= 128 B.
///  * Broadcast: sparse latency 72-92 ns; saturated 1596-1680 ns for the
///    16-RPU design (18-slot FIFOs draining one grant per 16 cycles).

#include "bench_common.h"
#include "core/experiments.h"

using namespace rosebud;

int
main() {
    bench::heading("Section 6.3: loopback two-step forwarding (16 RPUs, 100G offered)");
    std::printf("%8s %14s %12s %8s\n", "size(B)", "achieved(Gbps)", "line(Gbps)", "frac");
    for (uint32_t size : {64u, 65u, 128u, 256u, 512u, 1024u}) {
        auto r = exp::run_loopback(16, size);
        std::printf("%8u %14.2f %12.2f %7.1f%%\n", size, r.achieved_gbps, r.line_gbps,
                    100.0 * r.fraction_of_line);
    }
    std::printf("paper: 60%% at 64 B, 61%% at 65 B, line rate for >= 128 B\n");

    bench::heading("Section 6.3: broadcast messaging latency");
    for (unsigned rpus : {16u, 8u}) {
        auto b = exp::run_broadcast(rpus, 120000);
        std::printf("%2u RPUs: sparse %5.0f..%5.0f ns (mean %5.0f) | "
                    "saturated %6.0f..%6.0f ns (mean %6.0f) | %llu msgs\n",
                    rpus, b.sparse_min_ns, b.sparse_max_ns, b.sparse_mean_ns,
                    b.saturated_min_ns, b.saturated_max_ns, b.saturated_mean_ns,
                    (unsigned long long)b.messages);
    }
    std::printf("paper (16 RPUs): sparse 72-92 ns, saturated 1596-1680 ns\n");
    return 0;
}
