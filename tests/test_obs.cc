/// Observability-stack tests: sampler hardening (percentile clamp,
/// reservoir bounding), CSV escaping, the VCD writer's header/format, the
/// Perfetto exporter's structure, the telemetry cycle-classification
/// invariant (busy+stalled+starved+idle == observed cycles on every net),
/// the firmware PC profiler's conservation property, tracer retention, and
/// the guarantee that attaching telemetry leaves the architectural state
/// fingerprint untouched.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/system.h"
#include "core/tracer.h"
#include "firmware/programs.h"
#include "net/headers.h"
#include "net/tracegen.h"
#include "obs/harness.h"
#include "obs/json.h"
#include "obs/perfetto.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/shardcheck.h"
#include "obs/telemetry.h"
#include "obs/vcd.h"
#include "sim/stats.h"

namespace rosebud {
namespace {

// ---------------------------------------------------------------- sampler

TEST(Sampler, EmptyPercentileIsZero) {
    sim::Sampler s;
    EXPECT_EQ(s.percentile(0.5), 0.0);
    EXPECT_EQ(s.percentile(-1.0), 0.0);
    EXPECT_EQ(s.percentile(2.0), 0.0);
}

TEST(Sampler, PercentileClampsOutOfRange) {
    sim::Sampler s;
    for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
    // Out-of-range p must clamp, not index out of bounds.
    EXPECT_EQ(s.percentile(-0.5), 1.0);
    EXPECT_EQ(s.percentile(1.5), 4.0);
    EXPECT_EQ(s.percentile(17.0), 4.0);
    EXPECT_EQ(s.percentile(std::nan("")), 1.0);
    EXPECT_EQ(s.percentile(0.0), 1.0);
    EXPECT_EQ(s.percentile(1.0), 4.0);
    EXPECT_NEAR(s.percentile(0.5), 2.5, 1e-12);
}

TEST(Sampler, ReservoirBoundsRetentionKeepsExactAggregates) {
    sim::Sampler s;
    s.set_reservoir(64);
    for (int i = 1; i <= 10000; ++i) s.add(double(i));
    EXPECT_EQ(s.count(), 64u);          // bounded retention
    EXPECT_EQ(s.seen(), 10000u);        // all samples accounted
    EXPECT_EQ(s.min(), 1.0);            // aggregates exact over all samples
    EXPECT_EQ(s.max(), 10000.0);
    EXPECT_NEAR(s.mean(), 5000.5, 1e-9);
    // Percentile is an estimate but must come from retained samples.
    double p50 = s.percentile(0.5);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p50, 10000.0);
}

TEST(Sampler, ReservoirTruncatesExistingSamples) {
    sim::Sampler s;
    for (int i = 0; i < 100; ++i) s.add(double(i));
    s.set_reservoir(10);
    EXPECT_EQ(s.count(), 10u);
    EXPECT_EQ(s.seen(), 100u);
}

// -------------------------------------------------------------------- csv

TEST(StatsCsv, QuotesNamesAndEmitsPercentiles) {
    sim::Stats st;
    st.counter("plain").add(5);
    st.counter("weird,name").add(7);
    st.counter("has\"quote").add(1);
    auto& s = st.sampler("lat");
    for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);

    std::string csv = st.to_csv();
    EXPECT_NE(csv.find("name,kind,count,mean,min,max,p50,p99"), std::string::npos);
    EXPECT_NE(csv.find("\"weird,name\",counter,7"), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\",counter,1"), std::string::npos);
    EXPECT_NE(csv.find("plain,counter,5"), std::string::npos);
    // Sampler row: count, mean, min, max, p50, p99.
    EXPECT_NE(csv.find("lat,sampler,4,2.5,1,4,2.5,"), std::string::npos);

    // Round-trip: a minimal RFC 4180 parse of the quoted field recovers
    // the original name.
    size_t pos = csv.find("\"weird,name\"");
    ASSERT_NE(pos, std::string::npos);
    std::string field;
    size_t i = pos + 1;
    while (i < csv.size()) {
        if (csv[i] == '"') {
            if (i + 1 < csv.size() && csv[i + 1] == '"') {
                field += '"';
                i += 2;
                continue;
            }
            break;
        }
        field += csv[i++];
    }
    EXPECT_EQ(field, "weird,name");
}

// ------------------------------------------------------------------- json

TEST(JsonWriter, EscapesAndNests) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("s").value("a\"b\\c\nd");
    w.key("arr").begin_array().value(uint64_t(1)).value(uint64_t(2)).end_array();
    w.key("t").value(true);
    w.end_object();
    EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\",\"arr\":[1,2],\"t\":true}");
}

// -------------------------------------------------------------------- vcd

TEST(Vcd, HeaderTimescaleAndChangeStream) {
    obs::VcdWriter v;
    int a = v.add_signal("top.u0.valid", 1);
    int b = v.add_signal("top.u0.occ", 4);
    v.change(0, a, 0);
    v.change(0, b, 3);
    v.change(8, a, 1);
    v.change(8, a, 1);   // duplicate: must be dropped
    v.change(12, b, 5);

    std::string out = v.str();
    // Golden structural skeleton (GTKWave requirements).
    EXPECT_NE(out.find("$timescale 1 ns $end"), std::string::npos);
    EXPECT_NE(out.find("$scope module top $end"), std::string::npos);
    EXPECT_NE(out.find("$scope module u0 $end"), std::string::npos);
    EXPECT_NE(out.find("$var wire 1 ! valid $end"), std::string::npos);
    EXPECT_NE(out.find("$var wire 4 \" occ [3:0] $end"), std::string::npos);
    EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(out.find("$dumpvars"), std::string::npos);
    EXPECT_NE(out.find("#0\n"), std::string::npos);
    EXPECT_NE(out.find("#8\n"), std::string::npos);
    EXPECT_NE(out.find("#12\n"), std::string::npos);
    EXPECT_NE(out.find("b0011 \""), std::string::npos);
    EXPECT_NE(out.find("b0101 \""), std::string::npos);
    // The duplicate a=1 at t=8 collapses to a single change.
    size_t first = out.find("1!");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(out.find("1!", first + 1), std::string::npos);
    // Header before definitions before dump.
    EXPECT_LT(out.find("$timescale"), out.find("$enddefinitions"));
    EXPECT_LT(out.find("$enddefinitions"), out.find("$dumpvars"));
}

// ------------------------------------------- telemetry classification law

net::PacketPtr
make_packet(uint32_t size, uint64_t id) {
    net::PacketBuilder b;
    b.ipv4(0x0a000001, 0x0a000002).udp(1000, 2000).frame_size(size);
    auto p = b.build();
    p->id = id;
    return p;
}

TEST(Telemetry, EveryNetSumsExactlyToObservedCycles) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();

    obs::Telemetry telem;
    telem.attach(sys);

    sys.run_cycles(300);
    for (int i = 0; i < 20; ++i) sys.fabric().mac_rx(0, make_packet(256, 100 + i));
    sys.run_cycles(3000);

    EXPECT_EQ(telem.cycles_observed(), 3300u);
    ASSERT_FALSE(telem.nets().empty());
    uint64_t total_busy = 0;
    for (const auto& [name, ns] : telem.nets()) {
        EXPECT_EQ(ns.busy + ns.stalled + ns.starved + ns.idle, telem.cycles_observed())
            << "net " << name;
        total_busy += ns.busy;
    }
    EXPECT_GT(total_busy, 0u);  // the run did move data
    telem.detach();
}

TEST(Telemetry, StallReportRanksAndPreservesSums) {
    obs::ProfileSpec s;
    s.pipeline = oracle::Pipeline::kFirewall;
    s.rpu_count = 4;
    s.run_cycles = 8000;
    s.capture_vcd = false;
    auto r = obs::run_profile(s);
    ASSERT_FALSE(r.stalls.links.empty());
    for (const auto& l : r.stalls.links) {
        EXPECT_EQ(l.busy + l.stalled + l.starved + l.idle, r.stalls.cycles)
            << "net " << l.net;
    }
    // Ranking: non-increasing stalled counts.
    for (size_t i = 1; i < r.stalls.links.size(); ++i) {
        EXPECT_GE(r.stalls.links[i - 1].stalled, r.stalls.links[i].stalled);
    }
    std::string text = obs::format_stall_report(r.stalls, 5);
    EXPECT_NE(text.find("component rollup"), std::string::npos);
}

// ------------------------------------------------------------ pc profiler

TEST(PcProfiler, HistogramSumsToProfiledCycles) {
    obs::ProfileSpec s;
    s.pipeline = oracle::Pipeline::kForwarder;
    s.rpu_count = 4;
    s.run_cycles = 5000;
    s.capture_vcd = false;
    auto r = obs::run_profile(s);
    ASSERT_EQ(r.cores.size(), 4u);
    uint64_t agg = 0;
    for (const auto& c : r.cores) {
        uint64_t sum = 0;
        for (const auto& [pc, cy] : c.pc_cycles) sum += cy;
        EXPECT_EQ(sum, c.cycles) << c.name;
        EXPECT_GT(c.cycles, 0u) << c.name;
        agg += sum;
    }
    uint64_t agg_sum = 0;
    for (const auto& [pc, cy] : r.aggregate.pc_cycles) agg_sum += cy;
    EXPECT_EQ(agg_sum, r.aggregate.cycles);
    EXPECT_EQ(agg_sum, agg);

    // The annotated listing mentions the firmware's poll loop.
    std::string ann = obs::annotate(r.firmware.image, r.aggregate);
    EXPECT_NE(ann.find("cycles attributed"), std::string::npos);
    auto spots = obs::hot_spots(r.aggregate, 3);
    ASSERT_FALSE(spots.empty());
    EXPECT_GT(spots[0].frac, 0.0);
}

// --------------------------------------------------------------- perfetto

TEST(Perfetto, EmitsStructurallyValidTrace) {
    obs::ProfileSpec s;
    s.pipeline = oracle::Pipeline::kForwarder;
    s.rpu_count = 4;
    s.run_cycles = 5000;
    s.capture_vcd = false;
    auto r = obs::run_profile(s);
    const std::string& t = r.trace;
    ASSERT_FALSE(t.empty());
    EXPECT_EQ(t.front(), '{');
    EXPECT_EQ(t.back(), '}');
    EXPECT_NE(t.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(t.find("\"ph\":\"b\""), std::string::npos);  // async span begin
    EXPECT_NE(t.find("\"ph\":\"e\""), std::string::npos);  // async span end
    EXPECT_NE(t.find("\"ph\":\"M\""), std::string::npos);  // process metadata
    EXPECT_NE(t.find("\"ph\":\"C\""), std::string::npos);  // counter track
    EXPECT_NE(t.find("process_name"), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check; quotes in the
    // payload are escaped so raw counting is sound).
    long braces = 0, brackets = 0;
    for (char c : t) {
        if (c == '{') ++braces;
        if (c == '}') --braces;
        if (c == '[') ++brackets;
        if (c == ']') --brackets;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

// ----------------------------------------------------------- vcd capture

TEST(Telemetry, VcdCaptureContainsSystemNets) {
    obs::ProfileSpec s;
    s.pipeline = oracle::Pipeline::kForwarder;
    s.rpu_count = 4;
    s.run_cycles = 3000;
    s.capture_vcd = true;
    auto r = obs::run_profile(s);
    ASSERT_FALSE(r.vcd.empty());
    EXPECT_NE(r.vcd.find("$timescale 1 ns $end"), std::string::npos);
    EXPECT_NE(r.vcd.find("$scope module fabric $end"), std::string::npos);
    EXPECT_NE(r.vcd.find("$scope module rpu0 $end"), std::string::npos);
    EXPECT_NE(r.vcd.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(r.vcd.find("$dumpvars"), std::string::npos);
}

// ---------------------------------------------------------------- tracer

TEST(PacketTracer, RetentionCapEvictsOldest) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(300);

    PacketTracer tracer;
    tracer.set_max_packets(8);
    tracer.attach(sys);
    for (int i = 0; i < 32; ++i) {
        sys.fabric().mac_rx(0, make_packet(128, uint64_t(1000 + i)));
        sys.run_cycles(400);
    }
    EXPECT_LE(tracer.packet_ids().size(), 8u);
    EXPECT_GT(tracer.evicted_packets(), 0u);
    // The newest ids survive, the oldest were evicted.
    EXPECT_TRUE(tracer.timeline(1000).empty());
    EXPECT_FALSE(tracer.timeline(1031).empty());
}

// -------------------------------------- zero-overhead / determinism guard

TEST(Telemetry, AttachingDoesNotChangeStateFingerprint) {
    auto run = [](bool with_telemetry) {
        SystemConfig cfg;
        cfg.rpu_count = 4;
        System sys(cfg);
        auto fw = fwlib::forwarder();
        sys.host().load_firmware_all(fw.image, fw.entry);
        sys.host().boot_all();
        obs::Telemetry telem;
        if (with_telemetry) telem.attach(sys);
        sys.run_cycles(300);
        for (int i = 0; i < 16; ++i) sys.fabric().mac_rx(0, make_packet(200, 50 + i));
        sys.run_cycles(4000);
        uint64_t fp = sys.state_fingerprint();
        if (with_telemetry) telem.detach();
        return fp;
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(Telemetry, ShuffleDeterminismHoldsWithTelemetryAttached) {
    auto run = [](uint64_t shuffle_seed) {
        SystemConfig cfg;
        cfg.rpu_count = 4;
        System sys(cfg);
        if (shuffle_seed) sys.kernel().shuffle_tick_order(shuffle_seed);
        auto fw = fwlib::forwarder();
        sys.host().load_firmware_all(fw.image, fw.entry);
        sys.host().boot_all();
        obs::Telemetry telem;
        telem.attach(sys);
        sys.run_cycles(300);
        for (int i = 0; i < 16; ++i) sys.fabric().mac_rx(0, make_packet(200, 50 + i));
        sys.run_cycles(4000);
        uint64_t fp = sys.state_fingerprint();
        // The telemetry's own classification must also be order-independent.
        uint64_t busy = 0, stalled = 0;
        for (const auto& [_, ns] : telem.nets()) {
            busy += ns.busy;
            stalled += ns.stalled;
        }
        telem.detach();
        return std::tuple<uint64_t, uint64_t, uint64_t>(fp, busy, stalled);
    };
    EXPECT_EQ(run(0), run(0xdeadbeef));
}

// ------------------------------------------------- shard-cut cross-check

TEST(ShardCheck, CertifiedBoundsHoldUnderTraffic) {
    obs::ShardCheckSpec spec;
    spec.run_cycles = 10'000;
    obs::ShardCheckResult res = obs::run_shard_check(spec);
    EXPECT_TRUE(res.plan.sound) << res.plan.verdict;
    EXPECT_TRUE(res.ok);
    EXPECT_GT(res.messages, 0u);
    // Every cut net that carried traffic respected its certified minimum.
    bool any_traffic = false;
    for (const obs::CutLatency& c : res.cuts) {
        if (c.messages == 0) continue;
        any_traffic = true;
        EXPECT_GE(c.min_latency, uint64_t(c.certified)) << c.net;
        EXPECT_FALSE(c.undercut) << c.net;
    }
    EXPECT_TRUE(any_traffic);
}

TEST(ShardCheck, RecorderFlagsAnOverstatedBound) {
    // Negative control for the cross-check itself: inflate the certified
    // bounds far beyond reality and the recorder must observe undercuts
    // (with faulting off, it records instead of throwing).
    SystemConfig cfg;
    cfg.rpu_count = 8;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    net::TrafficSpec tspec;
    tspec.seed = 7;
    auto gen = std::make_shared<net::TraceGenerator>(tspec, nullptr, nullptr);
    dist::TrafficSource::Config src;
    src.port = 0;
    src.load = 0.7;
    sys.add_source(src, [gen] { return gen->next(); });

    lint::ShardPlan plan = sys.shard_plan(2);
    ASSERT_TRUE(plan.sound) << plan.verdict;
    for (lint::ShardCut& c : plan.cuts) c.edge.latency = 1000;  // tampered

    obs::ShardLatencyRecorder rec(sys.kernel(), plan, nullptr,
                                  /*fault_on_undercut=*/false);
    sys.kernel().set_telemetry(&rec);
    sys.run_cycles(15'000);
    sys.kernel().set_telemetry(nullptr);

    EXPECT_FALSE(rec.ok()) << rec.report();
}

TEST(ShardCheck, RecorderForwardsToChainedSink) {
    // The recorder must be transparent when stacked in front of another
    // sink: same events in, same events out.
    struct Counter : sim::TelemetrySink {
        uint64_t events = 0, occupancies = 0, cycles = 0;
        void net_event(const std::string&, NetEvent) override { ++events; }
        void net_occupancy(const std::string&, size_t, size_t) override {
            ++occupancies;
        }
        void end_cycle(uint64_t) override { ++cycles; }
    };
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    lint::ShardPlan plan = sys.shard_plan(2);
    Counter direct;
    sys.kernel().set_telemetry(&direct);
    sys.run_cycles(200);
    sys.kernel().set_telemetry(nullptr);

    SystemConfig cfg2;
    cfg2.rpu_count = 4;
    System sys2(cfg2);
    lint::ShardPlan plan2 = sys2.shard_plan(2);
    Counter chained;
    obs::ShardLatencyRecorder rec(sys2.kernel(), plan2, &chained, false);
    sys2.kernel().set_telemetry(&rec);
    sys2.run_cycles(200);
    sys2.kernel().set_telemetry(nullptr);

    EXPECT_EQ(chained.events, direct.events);
    EXPECT_EQ(chained.occupancies, direct.occupancies);
    EXPECT_EQ(chained.cycles, direct.cycles);
}

}  // namespace
}  // namespace rosebud
