/// Unit tests for the simulation kernel primitives: two-phase clocking,
/// registered FIFOs, registers, stats, and the deterministic RNG.

#include <gtest/gtest.h>

#include "sim/fifo.h"
#include "sim/kernel.h"
#include "sim/random.h"
#include "sim/resources.h"
#include "sim/stats.h"

namespace rosebud::sim {
namespace {

class CountingComponent : public Component {
 public:
    CountingComponent(Kernel& k, std::string name) : Component(k, std::move(name)) {}
    void tick() override { ++ticks; }
    int ticks = 0;
};

TEST(Kernel, TicksEveryComponentOncePerCycle) {
    Kernel k;
    CountingComponent a(k, "a");
    CountingComponent b(k, "b");
    k.run(10);
    EXPECT_EQ(a.ticks, 10);
    EXPECT_EQ(b.ticks, 10);
    EXPECT_EQ(k.now(), 10u);
}

TEST(Kernel, NowNsMatchesClock) {
    Kernel k;
    k.run(250);
    EXPECT_DOUBLE_EQ(k.now_ns(), 1000.0);  // 250 cycles at 4 ns
}

TEST(Kernel, RunUntilStopsOnPredicate) {
    Kernel k;
    CountingComponent a(k, "a");
    bool fired = k.run_until([&] { return a.ticks >= 5; }, 100);
    EXPECT_TRUE(fired);
    EXPECT_EQ(a.ticks, 5);
}

TEST(Kernel, RunUntilTimesOut) {
    Kernel k;
    bool fired = k.run_until([] { return false; }, 7);
    EXPECT_FALSE(fired);
    EXPECT_EQ(k.now(), 7u);
}

TEST(Fifo, PushNotVisibleUntilCommit) {
    Kernel k;
    Fifo<int> f(k, "f", 4);
    ASSERT_TRUE(f.push(1));
    EXPECT_TRUE(f.empty());  // same cycle: not yet visible
    k.step();
    ASSERT_FALSE(f.empty());
    EXPECT_EQ(f.front(), 1);
}

TEST(Fifo, CapacityCountsStagedPushes) {
    Kernel k;
    Fifo<int> f(k, "f", 2);
    EXPECT_TRUE(f.push(1));
    EXPECT_TRUE(f.push(2));
    EXPECT_FALSE(f.can_push());
    EXPECT_FALSE(f.push(3));
    k.step();
    EXPECT_EQ(f.size(), 2u);
    EXPECT_FALSE(f.can_push());
}

TEST(Fifo, PopFreesSpaceWithinSameCycle) {
    Kernel k;
    Fifo<int> f(k, "f", 1);
    ASSERT_TRUE(f.push(1));
    k.step();
    EXPECT_FALSE(f.can_push());
    EXPECT_EQ(f.pop(), 1);
    // Skid-buffer behaviour: the pop frees the slot for a same-cycle push.
    EXPECT_TRUE(f.can_push());
    EXPECT_TRUE(f.push(2));
    k.step();
    EXPECT_EQ(f.front(), 2);
}

TEST(Fifo, FifoOrderPreserved) {
    Kernel k;
    Fifo<int> f(k, "f", 8);
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(f.push(i));
    k.step();
    for (int i = 0; i < 5; ++i) EXPECT_EQ(f.pop(), i);
}

TEST(Fifo, ClearDropsEverything) {
    Kernel k;
    Fifo<int> f(k, "f", 8);
    ASSERT_TRUE(f.push(1));
    k.step();
    ASSERT_TRUE(f.push(2));
    f.clear();
    k.step();
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.free_slots(), 8u);
}

TEST(Fifo, FreeSlotsAccounting) {
    Kernel k;
    Fifo<int> f(k, "f", 3);
    EXPECT_EQ(f.free_slots(), 3u);
    ASSERT_TRUE(f.push(1));
    EXPECT_EQ(f.free_slots(), 2u);
    k.step();
    EXPECT_EQ(f.free_slots(), 2u);
}

TEST(Reg, WriteVisibleNextCycle) {
    Kernel k;
    Reg<int> r(k, 7);
    EXPECT_EQ(r.get(), 7);
    r.set(42);
    EXPECT_EQ(r.get(), 7);
    k.step();
    EXPECT_EQ(r.get(), 42);
}

TEST(Reg, LastWriteWins) {
    Kernel k;
    Reg<int> r(k);
    r.set(1);
    r.set(2);
    k.step();
    EXPECT_EQ(r.get(), 2);
}

TEST(Stats, CountersFindOrCreate) {
    Stats s;
    s.counter("a.b").add(3);
    s.counter("a.b").add(2);
    EXPECT_EQ(s.get("a.b"), 5u);
    EXPECT_EQ(s.get("missing"), 0u);
}

TEST(Stats, ResetAll) {
    Stats s;
    s.counter("x").add(9);
    s.sampler("y").add(1.0);
    s.reset_all();
    EXPECT_EQ(s.get("x"), 0u);
    EXPECT_TRUE(s.sampler("y").empty());
}

TEST(Sampler, Statistics) {
    Sampler s;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
}

TEST(Sampler, EmptyIsZero) {
    Sampler s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.99), 0.0);
}

TEST(Rng, DeterministicAcrossInstances) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowIsInRange) {
    Rng r(9);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformIsInUnitInterval) {
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ChanceExtremes) {
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Resources, Arithmetic) {
    ResourceFootprint a{100, 200, 3, 4, 5};
    ResourceFootprint b{10, 20, 1, 1, 1};
    ResourceFootprint sum = a + b;
    EXPECT_EQ(sum.luts, 110u);
    EXPECT_EQ(sum.regs, 220u);
    ResourceFootprint scaled = b * 3;
    EXPECT_EQ(scaled.luts, 30u);
    ResourceFootprint diff = a.saturating_sub(b);
    EXPECT_EQ(diff.luts, 90u);
    ResourceFootprint clamped = b.saturating_sub(a);
    EXPECT_EQ(clamped.luts, 0u);
}

TEST(Resources, FormatRowContainsPercentages) {
    std::string row = format_footprint_row("Test", {118224, 0, 0, 0, 0}, kXcvu9p);
    EXPECT_NE(row.find("Test"), std::string::npos);
    EXPECT_NE(row.find("10.0%"), std::string::npos);
}

}  // namespace
}  // namespace rosebud::sim
