/// Unit tests for the simulation kernel primitives: two-phase clocking,
/// registered FIFOs, registers, stats, and the deterministic RNG.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/system.h"
#include "firmware/programs.h"
#include "net/tracegen.h"
#include "sim/fifo.h"
#include "sim/kernel.h"
#include "sim/random.h"
#include "sim/resources.h"
#include "sim/stats.h"

namespace rosebud::sim {
namespace {

class CountingComponent : public Component {
 public:
    CountingComponent(Kernel& k, std::string name) : Component(k, std::move(name)) {}
    void tick() override { ++ticks; }
    int ticks = 0;
};

TEST(Kernel, TicksEveryComponentOncePerCycle) {
    Kernel k;
    CountingComponent a(k, "a");
    CountingComponent b(k, "b");
    k.run(10);
    EXPECT_EQ(a.ticks, 10);
    EXPECT_EQ(b.ticks, 10);
    EXPECT_EQ(k.now(), 10u);
}

TEST(Kernel, NowNsMatchesClock) {
    Kernel k;
    k.run(250);
    EXPECT_DOUBLE_EQ(k.now_ns(), 1000.0);  // 250 cycles at 4 ns
}

TEST(Kernel, RunUntilStopsOnPredicate) {
    Kernel k;
    CountingComponent a(k, "a");
    bool fired = k.run_until([&] { return a.ticks >= 5; }, 100);
    EXPECT_TRUE(fired);
    EXPECT_EQ(a.ticks, 5);
}

TEST(Kernel, RunUntilTimesOut) {
    Kernel k;
    bool fired = k.run_until([] { return false; }, 7);
    EXPECT_FALSE(fired);
    EXPECT_EQ(k.now(), 7u);
}

TEST(Fifo, PushNotVisibleUntilCommit) {
    Kernel k;
    Fifo<int> f(k, "f", 4);
    ASSERT_TRUE(f.push(1));
    EXPECT_TRUE(f.empty());  // same cycle: not yet visible
    k.step();
    ASSERT_FALSE(f.empty());
    EXPECT_EQ(f.front(), 1);
}

TEST(Fifo, CapacityCountsStagedPushes) {
    Kernel k;
    Fifo<int> f(k, "f", 2);
    EXPECT_TRUE(f.push(1));
    EXPECT_TRUE(f.push(2));
    EXPECT_FALSE(f.can_push());
    EXPECT_FALSE(f.push(3));
    k.step();
    EXPECT_EQ(f.size(), 2u);
    EXPECT_FALSE(f.can_push());
}

TEST(Fifo, PopFreesSpaceWithinSameCycle) {
    Kernel k;
    Fifo<int> f(k, "f", 1);
    ASSERT_TRUE(f.push(1));
    k.step();
    EXPECT_FALSE(f.can_push());
    EXPECT_EQ(f.pop(), 1);
    // Skid-buffer behaviour: the pop frees the slot for a same-cycle push.
    EXPECT_TRUE(f.can_push());
    EXPECT_TRUE(f.push(2));
    k.step();
    EXPECT_EQ(f.front(), 2);
}

TEST(Fifo, FifoOrderPreserved) {
    Kernel k;
    Fifo<int> f(k, "f", 8);
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(f.push(i));
    k.step();
    for (int i = 0; i < 5; ++i) EXPECT_EQ(f.pop(), i);
}

TEST(Fifo, ClearDropsEverything) {
    Kernel k;
    Fifo<int> f(k, "f", 8);
    ASSERT_TRUE(f.push(1));
    k.step();
    ASSERT_TRUE(f.push(2));
    f.clear();
    k.step();
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.free_slots(), 8u);
}

TEST(Fifo, FreeSlotsAccounting) {
    Kernel k;
    Fifo<int> f(k, "f", 3);
    EXPECT_EQ(f.free_slots(), 3u);
    ASSERT_TRUE(f.push(1));
    EXPECT_EQ(f.free_slots(), 2u);
    k.step();
    EXPECT_EQ(f.free_slots(), 2u);
}

TEST(Reg, WriteVisibleNextCycle) {
    Kernel k;
    Reg<int> r(k, 7);
    EXPECT_EQ(r.get(), 7);
    r.set(42);
    EXPECT_EQ(r.get(), 7);
    k.step();
    EXPECT_EQ(r.get(), 42);
}

TEST(Reg, LastWriteWins) {
    Kernel k;
    Reg<int> r(k);
    r.set(1);
    r.set(2);
    k.step();
    EXPECT_EQ(r.get(), 2);
}

TEST(Stats, CountersFindOrCreate) {
    Stats s;
    s.counter("a.b").add(3);
    s.counter("a.b").add(2);
    EXPECT_EQ(s.get("a.b"), 5u);
    EXPECT_EQ(s.get("missing"), 0u);
}

TEST(Stats, ResetAll) {
    Stats s;
    s.counter("x").add(9);
    s.sampler("y").add(1.0);
    s.reset_all();
    EXPECT_EQ(s.get("x"), 0u);
    EXPECT_TRUE(s.sampler("y").empty());
}

TEST(Sampler, Statistics) {
    Sampler s;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
}

TEST(Sampler, EmptyIsZero) {
    Sampler s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.99), 0.0);
}

TEST(Rng, DeterministicAcrossInstances) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowIsInRange) {
    Rng r(9);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformIsInUnitInterval) {
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ChanceExtremes) {
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

// --- quiescence skipping ------------------------------------------------------

/// A consumer that is idle whenever its input FIFO is empty. Declares a
/// read port on the net so the kernel's wake-edge map routes producer
/// pushes back to it while it sleeps.
class SleepyConsumer : public Component {
 public:
    SleepyConsumer(Kernel& k, Fifo<int>& f) : Component(k, "consumer"), f_(f) {
        k.declare_port({name(), f.name(), PortRecord::kRead, 32, 1});
    }
    void tick() override {
        ++ticks;
        if (!f_.empty()) sum += f_.pop();
    }
    bool quiescent() const override { return f_.empty(); }
    void on_wake(Cycle skipped) override { skipped_total += skipped; }
    using Component::flush_skipped;

    Fifo<int>& f_;
    uint64_t ticks = 0;
    uint64_t skipped_total = 0;
    int sum = 0;
};

TEST(Quiescence, SleeperSkipsTicksButMissesNothing) {
    Kernel k;
    Fifo<int> f(k, "q", 4);
    SleepyConsumer c(k, f);

    k.run(1000);
    // The consumer slept through almost the whole window.
    EXPECT_LT(c.ticks, 1000u);

    // Host-phase push while asleep: the wake edge must reactivate it.
    ASSERT_TRUE(f.push(42));
    k.run(10);
    EXPECT_EQ(c.sum, 42);
    EXPECT_EQ(k.now(), 1010u);
}

TEST(Quiescence, IdleSkipOffTicksEveryCycle) {
    Kernel k;
    k.set_idle_skip(false);
    Fifo<int> f(k, "q", 4);
    SleepyConsumer c(k, f);
    k.run(500);
    EXPECT_EQ(c.ticks, 500u);
    EXPECT_EQ(c.skipped_total, 0u);
}

TEST(Quiescence, TickPlusSkippedAccountingIsExact) {
    Kernel k;
    Fifo<int> f(k, "q", 4);
    SleepyConsumer c(k, f);
    // Several sleep/wake rounds. A host-phase push commits at the end of
    // the next stepped cycle, so the value is poppable two cycles later.
    for (int round = 0; round < 5; ++round) {
        k.run(200);
        ASSERT_TRUE(f.push(round));
        k.run(5);
    }
    ASSERT_TRUE(f.push(99));
    k.run(5);
    // Host-boundary sync: settle any window opened by a sleep in the last
    // few cycles, then every cycle must be a tick or an accounted skip.
    c.flush_skipped();
    EXPECT_EQ(c.ticks + c.skipped_total, k.now());
    EXPECT_EQ(c.sum, 0 + 1 + 2 + 3 + 4 + 99);
}

// --- registered-credit wake edges ---------------------------------------------
//
// A kCreditRegistered FIFO returns credit with one cycle of latency, so a
// pop is an observable event for the *writer*: the wake map must include
// the writer as a wake target, or a producer sleeping on a full FIFO
// never learns that space opened.

TEST(Quiescence, WakeMapIncludesRegisteredCreditWriters) {
    Kernel k;
    Fifo<int> reg(k, "reg_q", 2, 32, 0, CreditPolicy::kRegistered);
    Fifo<int> skid(k, "skid_q", 2, 32, 0, CreditPolicy::kSkidBuffer);
    CountingComponent w(k, "w");
    CountingComponent r(k, "r");
    k.declare_port({"w", "reg_q", PortRecord::kWrite, 32, 0});
    k.declare_port({"r", "reg_q", PortRecord::kRead, 32, 0});
    k.declare_port({"w", "skid_q", PortRecord::kWrite, 32, 0});
    k.declare_port({"r", "skid_q", PortRecord::kRead, 32, 0});
    k.step();  // idle skip is on by default: builds the wake map lazily
    ASSERT_TRUE(k.wake_map_built());

    auto contains = [&](const char* net, const char* name) {
        const std::vector<Component*>* l = k.wake_list(net);
        if (!l) return false;
        for (Component* c : *l) {
            if (c->name() == name) return true;
        }
        return false;
    };
    // Registered credit: reader AND writer are wake targets.
    EXPECT_TRUE(contains("reg_q", "r"));
    EXPECT_TRUE(contains("reg_q", "w"));
    // Skid credit: only the reader (cross-component credit observation is
    // illegal there anyway, so there is no sleeping producer to wake).
    EXPECT_TRUE(contains("skid_q", "r"));
    EXPECT_FALSE(contains("skid_q", "w"));
}

/// Producer that fills a registered-credit FIFO and sleeps while it is
/// full; only the consumer's pops can wake it again.
class BlockedProducer : public Component {
 public:
    BlockedProducer(Kernel& k, Fifo<int>& f) : Component(k, "producer"), f_(f) {
        k.declare_port({name(), f.name(), PortRecord::kWrite, 32, 1});
    }
    void tick() override {
        ++ticks;
        if (f_.can_push()) (void)!f_.push(seq++);
    }
    bool quiescent() const override { return f_.free_slots() == 0; }

    Fifo<int>& f_;
    uint64_t ticks = 0;
    int seq = 0;
};

/// Consumer that drains one element every seventh cycle and never sleeps.
class SlowDrain : public Component {
 public:
    SlowDrain(Kernel& k, Fifo<int>& f) : Component(k, "drain"), f_(f) {
        k.declare_port({name(), f.name(), PortRecord::kRead, 32, 1});
    }
    void tick() override {
        if (kernel().now() % 7 == 0 && !f_.empty()) {
            sum += f_.pop();
            ++count;
        }
    }

    Fifo<int>& f_;
    long sum = 0;
    int count = 0;
};

TEST(Quiescence, RegisteredCreditPopWakesBlockedProducer) {
    auto run = [](bool idle_skip) {
        Kernel k;
        k.set_idle_skip(idle_skip);
        Fifo<int> f(k, "q", 4, 32, 0, CreditPolicy::kRegistered);
        BlockedProducer p(k, f);
        SlowDrain d(k, f);
        k.run(700);
        return std::tuple<int, long, int, uint64_t>(p.seq, d.sum, d.count, p.ticks);
    };
    auto [seq_skip, sum_skip, count_skip, ticks_skip] = run(true);
    auto [seq_ref, sum_ref, count_ref, ticks_ref] = run(false);

    // The producer really slept under idle skip...
    EXPECT_LT(ticks_skip, ticks_ref);
    // ...yet produced and the drain consumed exactly the same stream: the
    // pop's credit wake edge re-armed the producer every time.
    EXPECT_EQ(seq_skip, seq_ref);
    EXPECT_EQ(sum_skip, sum_ref);
    EXPECT_EQ(count_skip, count_ref);
    EXPECT_GT(count_skip, 50);
}

// --- execution-schedule equivalence -------------------------------------------
//
// The legality argument for every host-speed mode (DESIGN.md §11) is that
// it cannot change simulated results. Enforce it end-to-end: a real
// 4-RPU forwarding system run under each kernel mode must produce the
// same architectural-state fingerprint, bit for bit.

enum class Sched {
    kSerial,            ///< default: idle skip + race check, serial ticks
    kNoIdleSkip,        ///< every component ticked every cycle
    kCommitCompat,      ///< benchmarking reference regime
    kParallel,          ///< thread-pool tick executor, 2 workers
    kShuffledParallel,  ///< permuted partition assignment + 2 workers
};

uint64_t
run_sched_fingerprint(Sched s) {
    rosebud::SystemConfig cfg;
    cfg.rpu_count = 4;
    rosebud::System sys(cfg);
    switch (s) {
        case Sched::kSerial:
            break;
        case Sched::kNoIdleSkip:
            sys.kernel().set_idle_skip(false);
            break;
        case Sched::kCommitCompat:
            sys.kernel().set_commit_compat(true);
            break;
        case Sched::kShuffledParallel:
            sys.kernel().shuffle_tick_order(0x5eedf00d);
            [[fallthrough]];
        case Sched::kParallel:
            sys.kernel().set_race_check(false);
            sys.kernel().set_parallel_ticks(2);
            break;
    }

    auto fw = rosebud::fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();

    rosebud::net::TrafficSpec tspec;
    tspec.seed = 5;
    auto gen = std::make_shared<rosebud::net::TraceGenerator>(tspec, nullptr,
                                                              nullptr);
    rosebud::dist::TrafficSource::Config src;
    src.port = 0;
    src.load = 0.6;
    src.max_packets = 200;
    sys.add_source(src, [gen] { return gen->next(); });

    sys.run_cycles(25000);
    return sys.state_fingerprint();
}

TEST(ScheduleEquivalence, SerialParallelAndShuffledAreBitIdentical) {
    const uint64_t base = run_sched_fingerprint(Sched::kSerial);
    EXPECT_EQ(run_sched_fingerprint(Sched::kParallel), base);
    EXPECT_EQ(run_sched_fingerprint(Sched::kShuffledParallel), base);
}

TEST(ScheduleEquivalence, IdleSkipAndCommitCompatAreBitIdentical) {
    const uint64_t base = run_sched_fingerprint(Sched::kSerial);
    EXPECT_EQ(run_sched_fingerprint(Sched::kNoIdleSkip), base);
    EXPECT_EQ(run_sched_fingerprint(Sched::kCommitCompat), base);
}

TEST(Resources, Arithmetic) {
    ResourceFootprint a{100, 200, 3, 4, 5};
    ResourceFootprint b{10, 20, 1, 1, 1};
    ResourceFootprint sum = a + b;
    EXPECT_EQ(sum.luts, 110u);
    EXPECT_EQ(sum.regs, 220u);
    ResourceFootprint scaled = b * 3;
    EXPECT_EQ(scaled.luts, 30u);
    ResourceFootprint diff = a.saturating_sub(b);
    EXPECT_EQ(diff.luts, 90u);
    ResourceFootprint clamped = b.saturating_sub(a);
    EXPECT_EQ(clamped.luts, 0u);
}

TEST(Resources, FormatRowContainsPercentages) {
    std::string row = format_footprint_row("Test", {118224, 0, 0, 0, 0}, kXcvu9p);
    EXPECT_NE(row.find("Test"), std::string::npos);
    EXPECT_NE(row.find("10.0%"), std::string::npos);
}

}  // namespace
}  // namespace rosebud::sim
