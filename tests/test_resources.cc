/// Resource-model tests: the composed utilization tables against the
/// paper's Tables 1-4, row by row, with tolerances.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "accel/firewall.h"
#include "accel/pigasus.h"
#include "core/system.h"
#include "net/rules.h"

namespace rosebud {
namespace {

std::map<std::string, sim::ResourceFootprint>
rows_of(System& sys) {
    std::map<std::string, sim::ResourceFootprint> out;
    for (const auto& row : sys.resource_report()) out[row.name] = row.fp;
    return out;
}

void
expect_near_row(const sim::ResourceFootprint& got, uint64_t luts, uint64_t regs,
                double tol, const char* what) {
    EXPECT_NEAR(double(got.luts), double(luts), double(luts) * tol) << what << " LUTs";
    EXPECT_NEAR(double(got.regs), double(regs), double(regs) * tol) << what << " FFs";
}

TEST(Table1, SixteenRpuBaseUtilization) {
    SystemConfig cfg;
    cfg.rpu_count = 16;
    System sys(cfg);
    auto rows = rows_of(sys);

    expect_near_row(rows["Single RPU"], 4541, 3788, 0.10, "Single RPU");
    EXPECT_EQ(rows["Single RPU"].bram, 24u);
    EXPECT_EQ(rows["Single RPU"].uram, 32u);
    expect_near_row(rows["LB"], 8221, 22503, 0.05, "LB");
    expect_near_row(rows["Single Interconnect"], 2793, 2955, 0.05, "Interconnect");
    expect_near_row(rows["CMAC"], 6397, 14849, 0.01, "CMAC");
    expect_near_row(rows["PCIe"], 41526, 63742, 0.01, "PCIe");
    expect_near_row(rows["Switching"], 86234, 123654, 0.02, "Switching");
    expect_near_row(rows["Complete design"], 259713, 332636, 0.05, "Complete");
    EXPECT_EQ(rows["VU9P device"].luts, 1182240u);
    EXPECT_EQ(rows["VU9P device"].uram, 960u);

    // Remaining (PR) = region - RPU, and the region is Table 4's RPU row.
    EXPECT_EQ(rows["Single RPU"].luts + rows["Remaining (PR)"].luts, 27839u);
    EXPECT_EQ(rows["Single RPU"].bram + rows["Remaining (PR)"].bram, 36u);
}

TEST(Table2, EightRpuBaseUtilization) {
    SystemConfig cfg;
    cfg.rpu_count = 8;
    System sys(cfg);
    auto rows = rows_of(sys);

    expect_near_row(rows["LB"], 7580, 22076, 0.05, "LB");
    expect_near_row(rows["Switching"], 48402, 68890, 0.02, "Switching");
    expect_near_row(rows["Complete design"], 164699, 224404, 0.06, "Complete");
    // Region capacity is Table 3's RPU row for the 8-RPU layout.
    EXPECT_EQ(rows["Single RPU"].luts + rows["Remaining (PR)"].luts, 64161u);
    EXPECT_EQ(rows["Single RPU"].uram + rows["Remaining (PR)"].uram, 64u);
}

TEST(Table2, EightRpuUsesLessThanSixteen) {
    SystemConfig c16, c8;
    c16.rpu_count = 16;
    c8.rpu_count = 8;
    System s16(c16), s8(c8);
    auto r16 = rows_of(s16);
    auto r8 = rows_of(s8);
    EXPECT_LT(r8["Complete design"].luts, r16["Complete design"].luts);
    EXPECT_LT(r8["Complete design"].uram, r16["Complete design"].uram);
}

TEST(Table3, PigasusRpuUtilization) {
    sim::Rng rng(1);
    auto rules = net::IdsRuleSet::synthesize(16, rng);
    SystemConfig cfg;
    cfg.rpu_count = 8;
    cfg.lb_policy = lb::Policy::kHash;
    System sys(cfg);
    sys.attach_accelerators([&] { return std::make_unique<accel::PigasusMatcher>(rules); });

    auto pig_fp = sys.rpu(0).accelerator()->resources();
    expect_near_row(pig_fp, 36012, 49364, 0.05, "Pigasus");
    EXPECT_EQ(pig_fp.dsp, 80u);

    // Total (core + mem + manager + Pigasus) vs Table 3: 42364 / 54037.
    auto total = sys.rpu(0).resources().saturating_sub({.regs = 1808});  // PR border
    expect_near_row(total, 42364, 54037, 0.10, "Total");

    // Everything fits in the 8-RPU region (the paper's headline fit).
    auto region = pr_region_capacity(8);
    EXPECT_LE(sys.rpu(0).resources().luts, region.luts);
    EXPECT_LE(sys.rpu(0).resources().uram, region.uram);

    // Hash LB row: 10467 / 24872 / 26 BRAM.
    expect_near_row(sys.lb().resources(), 10467, 24872, 0.05, "Hash LB");
}

TEST(Table3, ThirtyTwoEnginesWouldNotFitSixteenRpuRegion) {
    // The paper's porting story: the full 32-engine Pigasus did not fit;
    // 16 engines did. Check both against the region models.
    sim::Rng rng(1);
    auto rules = net::IdsRuleSet::synthesize(16, rng);
    accel::PigasusMatcher::Params p32;
    p32.engines = 32;
    accel::PigasusMatcher full(rules, p32);
    auto region16 = pr_region_capacity(16);
    EXPECT_GT(full.resources().luts, region16.luts);  // would not fit
    accel::PigasusMatcher half(rules);
    auto region8 = pr_region_capacity(8);
    EXPECT_LT(half.resources().luts, region8.luts);  // fits with 16 engines
}

TEST(Table4, FirewallRpuUtilization) {
    sim::Rng rng(2);
    auto bl = net::Blacklist::synthesize(1050, rng);
    SystemConfig cfg;
    cfg.rpu_count = 16;
    System sys(cfg);
    sys.attach_accelerators([&] { return std::make_unique<accel::FirewallMatcher>(bl); });

    auto fw_fp = sys.rpu(0).accelerator()->resources();
    expect_near_row(fw_fp, 835, 197, 0.05, "Firewall IP checker");

    // Fits comfortably in the 16-RPU region with room for more engines.
    auto region = pr_region_capacity(16);
    auto used = sys.rpu(0).resources();
    EXPECT_LT(double(used.luts), 0.4 * double(region.luts));
}

TEST(Regions, LbRegionLargerInEightRpuLayout) {
    EXPECT_GT(lb_region_capacity(8).luts, lb_region_capacity(16).luts);
    EXPECT_GT(pr_region_capacity(8).luts, pr_region_capacity(16).luts);
}

TEST(Report, CompleteDesignIsSumOfParts) {
    SystemConfig cfg;
    cfg.rpu_count = 16;
    System sys(cfg);
    auto rows = rows_of(sys);
    uint64_t total = rows["Single RPU"].luts * 16 + rows["LB"].luts +
                     rows["Single Interconnect"].luts * 16 + rows["CMAC"].luts +
                     rows["PCIe"].luts + rows["Switching"].luts;
    EXPECT_EQ(rows["Complete design"].luts, total);
}

TEST(Report, CompleteDesignFitsDevice) {
    for (unsigned n : {8u, 16u}) {
        SystemConfig cfg;
        cfg.rpu_count = n;
        System sys(cfg);
        auto rows = rows_of(sys);
        EXPECT_LT(rows["Complete design"].luts, rows["VU9P device"].luts);
        EXPECT_LT(rows["Complete design"].uram, rows["VU9P device"].uram);
        EXPECT_LT(rows["Complete design"].bram, rows["VU9P device"].bram);
    }
}

}  // namespace
}  // namespace rosebud
