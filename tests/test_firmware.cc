/// Firmware programs on full systems: the firewall case study (blacklisted
/// sources dropped, safe forwarded, non-IP dropped), the Pigasus firmware
/// (matches appended + redirected to host, safe traffic forwarded, SW
/// reorder strips the prepended hash), the two-step loopback relay, and
/// the broadcast sender/sink pair.

#include <gtest/gtest.h>

#include <memory>

#include "accel/firewall.h"
#include "accel/pigasus.h"
#include "core/system.h"
#include "firmware/programs.h"
#include "net/flow.h"
#include "net/headers.h"

namespace rosebud {
namespace {

TEST(FirmwareImages, AllProgramsAssemble) {
    EXPECT_GT(fwlib::forwarder().image.size(), 8u);
    EXPECT_GT(fwlib::two_step_forwarder(16).image.size(), 20u);
    EXPECT_GT(fwlib::firewall().image.size(), 20u);
    EXPECT_GT(fwlib::pigasus_hw_reorder().image.size(), 50u);
    EXPECT_GT(fwlib::pigasus_sw_reorder().image.size(), 90u);
    EXPECT_GT(fwlib::broadcast_sender(100).image.size(), 10u);
    EXPECT_GT(fwlib::broadcast_sink().image.size(), 10u);
    EXPECT_GT(fwlib::broadcast_stress().image.size(), 10u);
}

struct FirewallSystem {
    System sys;
    net::Blacklist blacklist;

    FirewallSystem() : sys(make_config()) {
        sim::Rng rng(77);
        blacklist = net::Blacklist::synthesize(64, rng);
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::FirewallMatcher>(blacklist); });
        auto fw = fwlib::firewall();
        sys.host().load_firmware_all(fw.image, fw.entry);
        sys.host().boot_all();
        sys.run_cycles(300);
    }

    static SystemConfig make_config() {
        SystemConfig cfg;
        cfg.rpu_count = 4;
        return cfg;
    }
};

TEST(FirewallFirmware, DropsBlacklistedForwardsSafe) {
    FirewallSystem f;
    // Safe packet.
    net::PacketBuilder safe;
    safe.ipv4(0x0a000001, 0x0a000002).tcp(1, 2).frame_size(128);
    // Blacklisted source.
    net::PacketBuilder bad;
    bad.ipv4(f.blacklist.entries()[0].prefix, 0x0a000002).tcp(1, 2).frame_size(128);

    ASSERT_TRUE(f.sys.fabric().mac_rx(0, safe.build()));
    ASSERT_TRUE(f.sys.fabric().mac_rx(0, bad.build()));
    f.sys.run_cycles(2000);

    EXPECT_EQ(f.sys.sink(1).frames(), 1u);  // only the safe packet
    uint64_t drops = 0;
    for (unsigned i = 0; i < 4; ++i) {
        drops += f.sys.stats().get("rpu" + std::to_string(i) + ".dropped_packets");
    }
    EXPECT_EQ(drops, 1u);
}

TEST(FirewallFirmware, DropsNonIpv4) {
    FirewallSystem f;
    auto p = net::make_packet(64);
    p->data[12] = 0x08;
    p->data[13] = 0x06;  // ARP
    ASSERT_TRUE(f.sys.fabric().mac_rx(0, p));
    f.sys.run_cycles(2000);
    EXPECT_EQ(f.sys.sink(0).frames() + f.sys.sink(1).frames(), 0u);
}

TEST(FirewallFirmware, ForwardsToOppositePort) {
    FirewallSystem f;
    net::PacketBuilder b;
    b.ipv4(0x0a000001, 0x0a000002).udp(9, 9).frame_size(256);
    ASSERT_TRUE(f.sys.fabric().mac_rx(1, b.build()));
    f.sys.run_cycles(2000);
    EXPECT_EQ(f.sys.sink(0).frames(), 1u);
    EXPECT_EQ(f.sys.sink(1).frames(), 0u);
}

struct PigasusSystem {
    System sys;
    net::IdsRuleSet rules;
    std::vector<net::PacketPtr> host_rx;

    explicit PigasusSystem(bool sw_mode) : sys(make_config(sw_mode)) {
        rules = net::IdsRuleSet::parse(
            "alert tcp any any -> any any (content:\"attackpattern99\"; sid:777;)\n"
            "alert udp any any -> any 53 (content:\"dnsbadness\"; sid:778;)\n");
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::PigasusMatcher>(rules); });
        auto fw = sw_mode ? fwlib::pigasus_sw_reorder() : fwlib::pigasus_hw_reorder();
        sys.host().load_firmware_all(fw.image, fw.entry);
        sys.host().boot_all();
        sys.run_cycles(300);
        sys.host().set_rx_handler([this](net::PacketPtr p) { host_rx.push_back(p); });
    }

    static SystemConfig make_config(bool sw_mode) {
        SystemConfig cfg;
        cfg.rpu_count = 4;
        cfg.lb_policy = sw_mode ? lb::Policy::kHash : lb::Policy::kRoundRobin;
        cfg.hw_reassembler = !sw_mode;
        return cfg;
    }

    net::PacketPtr attack_tcp(uint32_t seq = 1) {
        net::PacketBuilder b;
        b.ipv4(0x0a000001, 0x0a000002).tcp(1000, 2000, seq);
        b.payload_str("....attackpattern99....");
        b.frame_size(256);
        auto p = b.build();
        p->is_attack = true;
        return p;
    }

    net::PacketPtr safe_tcp(uint32_t seq = 1) {
        net::PacketBuilder b;
        b.ipv4(0x0a000001, 0x0a000002).tcp(1000, 2000, seq).frame_size(256);
        return b.build();
    }
};

class PigasusModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(PigasusModeTest, SafePacketForwardedToWire) {
    PigasusSystem f(GetParam());
    auto p = f.safe_tcp();
    std::vector<uint8_t> original = p->data;
    ASSERT_TRUE(f.sys.fabric().mac_rx(0, p));
    f.sys.run_cycles(3000);
    ASSERT_EQ(f.sys.sink(1).frames(), 1u);
    EXPECT_TRUE(f.host_rx.empty());
}

TEST_P(PigasusModeTest, AttackPacketGoesToHostWithRuleId) {
    PigasusSystem f(GetParam());
    ASSERT_TRUE(f.sys.fabric().mac_rx(0, f.attack_tcp()));
    f.sys.run_cycles(3000);
    ASSERT_EQ(f.host_rx.size(), 1u);
    EXPECT_EQ(f.sys.sink(0).frames() + f.sys.sink(1).frames(), 0u);
    // The matched rule id (777) is appended at the aligned end.
    const auto& d = f.host_rx[0]->data;
    ASSERT_GE(d.size(), 4u);
    uint32_t appended;
    std::memcpy(&appended, &d[d.size() - 4], 4);
    EXPECT_EQ(appended, 777u);
}

TEST_P(PigasusModeTest, UdpRuleMatchesOnPort) {
    PigasusSystem f(GetParam());
    net::PacketBuilder b;
    b.ipv4(0x0a000001, 0x0a000002).udp(5555, 53).payload_str("xx dnsbadness xx");
    b.frame_size(128);
    ASSERT_TRUE(f.sys.fabric().mac_rx(0, b.build()));
    f.sys.run_cycles(3000);
    ASSERT_EQ(f.host_rx.size(), 1u);

    // Same payload on the wrong port: forwarded as safe.
    net::PacketBuilder b2;
    b2.ipv4(0x0a000001, 0x0a000002).udp(5555, 54).payload_str("xx dnsbadness xx");
    b2.frame_size(128);
    ASSERT_TRUE(f.sys.fabric().mac_rx(0, b2.build()));
    f.sys.run_cycles(3000);
    EXPECT_EQ(f.host_rx.size(), 1u);
    EXPECT_EQ(f.sys.sink(1).frames(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Modes, PigasusModeTest, ::testing::Bool(),
                         [](const auto& info) {
                             return info.param ? "SwReorder" : "HwReorder";
                         });

TEST(PigasusSwFirmware, StripsHashOnWireForward) {
    PigasusSystem f(/*sw_mode=*/true);
    auto p = f.safe_tcp();
    std::vector<uint8_t> original = p->data;
    net::PacketPtr got;
    f.sys.fabric().set_mac_tx_sink(1, [&](net::PacketPtr q) { got = q; });
    ASSERT_TRUE(f.sys.fabric().mac_rx(0, p));
    f.sys.run_cycles(3000);
    ASSERT_NE(got, nullptr);
    // The 4-byte LB hash must not leak onto the wire.
    EXPECT_EQ(got->data, original);
}

TEST(PigasusSwFirmware, ReorderedPairScannedInOrder) {
    PigasusSystem f(/*sw_mode=*/true);
    uint32_t payload = 256 - 54;
    auto p1 = f.safe_tcp(1000);
    auto p2 = f.safe_tcp(1000 + payload);
    auto p3 = f.safe_tcp(1000 + 2 * payload);
    // Deliver p1, then swap p3 before p2.
    ASSERT_TRUE(f.sys.fabric().mac_rx(0, p1));
    f.sys.run_cycles(2000);
    ASSERT_TRUE(f.sys.fabric().mac_rx(0, p3));
    f.sys.run_cycles(2000);
    EXPECT_EQ(f.sys.sink(1).frames(), 1u);  // p3 held (out of order)
    ASSERT_TRUE(f.sys.fabric().mac_rx(0, p2));
    f.sys.run_cycles(4000);
    // Gap filled: both p2 and the held p3 released.
    EXPECT_EQ(f.sys.sink(1).frames(), 3u);
    EXPECT_TRUE(f.host_rx.empty());
    // No slots leaked.
    for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(f.sys.rpu(i).occupancy(), 0u);
}

TEST(TwoStepForwarder, RelaysThroughLoopback) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    auto fw = fwlib::two_step_forwarder(4);
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(300);
    sys.host().set_recv_mask(0x3);  // first half receives from the wire

    net::PacketBuilder b;
    b.ipv4(0x0a000001, 0x0a000002).udp(1, 2).frame_size(200);
    auto p = b.build();
    std::vector<uint8_t> original = p->data;
    ASSERT_TRUE(sys.fabric().mac_rx(0, p));
    sys.run_cycles(5000);

    EXPECT_EQ(sys.stats().get("loopback.frames"), 1u);
    EXPECT_EQ(sys.sink(0).frames() + sys.sink(1).frames(), 1u);
    for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(sys.rpu(i).occupancy(), 0u) << i;
}

TEST(ChainedFirewall, HeterogeneousPipelineFiltersInStages) {
    // Firewall RPUs (0-1) chain into Pigasus RPUs (2-3) over loopback.
    auto blacklist = net::Blacklist::parse("203.0.113.0/24\n");
    auto rules = net::IdsRuleSet::parse(
        "alert tcp any any -> any any (content:\"chainattack7\"; sid:55;)\n");
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    auto chain_fw = fwlib::chained_firewall(4);
    auto ids_fw = fwlib::pigasus_hw_reorder();
    for (unsigned i = 0; i < 2; ++i) {
        sys.rpu(i).attach_accelerator(std::make_unique<accel::FirewallMatcher>(blacklist));
        sys.host().load_firmware(i, chain_fw.image, chain_fw.entry);
    }
    for (unsigned i = 2; i < 4; ++i) {
        sys.rpu(i).attach_accelerator(std::make_unique<accel::PigasusMatcher>(rules));
        sys.host().load_firmware(i, ids_fw.image, ids_fw.entry);
    }
    sys.host().boot_all();
    sys.run_cycles(300);
    sys.host().set_recv_mask(0x3);
    std::vector<net::PacketPtr> host_rx;
    sys.host().set_rx_handler([&](net::PacketPtr p) { host_rx.push_back(p); });

    auto mk = [](const char* src, const char* payload) {
        net::PacketBuilder b;
        b.ipv4(net::parse_ipv4_addr(src), 2).tcp(1, 2).payload_str(payload);
        b.frame_size(200);
        return b.build();
    };
    ASSERT_TRUE(sys.fabric().mac_rx(0, mk("10.0.0.1", "benign")));
    sys.run_cycles(3000);
    ASSERT_TRUE(sys.fabric().mac_rx(0, mk("203.0.113.5", "chainattack7")));
    sys.run_cycles(3000);
    ASSERT_TRUE(sys.fabric().mac_rx(0, mk("10.0.0.1", "xx chainattack7 xx")));
    sys.run_cycles(3000);

    EXPECT_EQ(sys.sink(0).frames() + sys.sink(1).frames(), 1u);  // benign
    ASSERT_EQ(host_rx.size(), 1u);                               // IDS alert
    uint64_t dropped = sys.stats().get("rpu0.dropped_packets") +
                       sys.stats().get("rpu1.dropped_packets");
    EXPECT_EQ(dropped, 1u);  // blacklisted, never reached the IDS
    EXPECT_EQ(sys.stats().get("loopback.frames"), 2u);
    for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(sys.rpu(i).occupancy(), 0u);
}

TEST(BroadcastFirmware, SinkAccumulatesLatency) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    auto sender = fwlib::broadcast_sender(500);
    auto sink = fwlib::broadcast_sink();
    sys.host().load_firmware(0, sender.image, sender.entry);
    for (unsigned i = 1; i < 4; ++i) sys.host().load_firmware(i, sink.image, sink.entry);
    sys.host().boot_all();
    sys.run_cycles(5000);

    for (unsigned i = 1; i < 4; ++i) {
        uint32_t count = sys.host().debug_high(i);
        uint32_t sum = sys.host().debug_low(i);
        EXPECT_GT(count, 3u) << "rpu " << i;
        // Mean firmware-observed latency: tens of cycles, not thousands.
        EXPECT_LT(sum / count, 64u) << "rpu " << i;
        EXPECT_GT(sum / count, 10u) << "rpu " << i;
    }
}

}  // namespace
}  // namespace rosebud
