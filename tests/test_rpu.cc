/// Standalone RPU tests: memory map, MMIO interconnect registers, the
/// RX/TX engine timing (32 Gbps link serialization), slot configuration,
/// descriptor flow, drops, broadcast endpoint behaviour, and host debug
/// access — all without the distribution fabric.

#include <gtest/gtest.h>

#include "mem/memory.h"
#include "net/headers.h"
#include "rpu/descriptor.h"
#include "rpu/rpu.h"
#include "rv/assembler.h"
#include "sim/kernel.h"
#include "sim/stats.h"

namespace rosebud::rpu {
namespace {

using rv::Assembler;
using namespace rv;

/// Firmware that configures slots and then parks.
std::vector<uint32_t>
slot_config_firmware(uint32_t count = 8, uint32_t size = 16384) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.li(t0, int32_t(count));
    a.sw(t0, kRegSlotCount, gp);
    a.lui(t0, 0x1000);
    a.sw(t0, kRegSlotBase, gp);
    a.li(t0, int32_t(size));
    a.sw(t0, kRegSlotSize, gp);
    a.lui(t0, 0x804);
    a.sw(t0, kRegHdrBase, gp);
    a.li(t0, 128);
    a.sw(t0, kRegHdrSize, gp);
    a.sw(zero, kRegSlotCommit, gp);
    a.label("park");
    a.j("park");
    return a.assemble();
}

struct Fixture {
    sim::Kernel kernel;
    sim::Stats stats;
    Rpu rpu;
    std::vector<net::PacketPtr> egressed;
    std::vector<std::pair<uint8_t, uint8_t>> freed;

    Fixture() : rpu(kernel, stats, Rpu::Config{.id = 3}) {
        rpu.set_egress_handler([this](net::PacketPtr p) {
            egressed.push_back(p);
            return true;
        });
        rpu.set_slot_free_handler(
            [this](uint8_t r, uint8_t s) { freed.push_back({r, s}); });
    }

    void boot(const std::vector<uint32_t>& image) {
        rpu.load_firmware(image);
        rpu.boot();
        kernel.run(100);
    }

    net::PacketPtr make_pkt(uint32_t size, uint8_t slot) {
        net::PacketBuilder b;
        b.ipv4(0x01020304, 0x05060708).udp(123, 456).frame_size(size);
        auto p = b.build();
        p->dest_slot = slot;
        p->in_iface = net::Iface::kPort0;
        return p;
    }
};

TEST(RpuDesc, PackUnpackRoundTrip) {
    Desc d;
    d.len = 1500;
    d.slot = 17;
    d.port = 2;
    d.addr = 0x01004000;
    Desc u = Desc::unpack(d.low(), d.high());
    EXPECT_EQ(u.len, d.len);
    EXPECT_EQ(u.slot, d.slot);
    EXPECT_EQ(u.port, d.port);
    EXPECT_EQ(u.addr, d.addr);
}

TEST(RpuDesc, PortToggleViaXori) {
    Desc d;
    d.len = 64;
    d.slot = 1;
    d.port = 0;
    Desc t = Desc::unpack(d.low() ^ 1, 0);
    EXPECT_EQ(t.port, 1);
    EXPECT_EQ(t.slot, d.slot);
    EXPECT_EQ(t.len, d.len);
}

TEST(RpuTest, SlotConfigReachesCallback) {
    Fixture f;
    SlotConfig seen;
    f.rpu.set_slot_config_handler([&](uint8_t, const SlotConfig& c) { seen = c; });
    f.boot(slot_config_firmware(12, 8192));
    EXPECT_EQ(seen.count, 12u);
    EXPECT_EQ(seen.base, kPmemBase);
    EXPECT_EQ(seen.size, 8192u);
    EXPECT_EQ(seen.hdr_base, kDefaultHdrBase);
    EXPECT_EQ(f.rpu.slot_config().count, 12u);
}

TEST(RpuTest, RxWritesPacketAndHeaderCopy) {
    Fixture f;
    f.boot(slot_config_firmware());
    auto pkt = f.make_pkt(256, 2);
    std::vector<uint8_t> original = pkt->data;
    ASSERT_TRUE(f.rpu.rx_ready());
    f.rpu.begin_rx(pkt);
    f.kernel.run(64);

    // Packet memory at slot 2 = PMEM + 16384.
    std::vector<uint8_t> stored(256);
    f.rpu.pmem().read_block(16384, stored.data(), 256);
    EXPECT_EQ(stored, original);

    // Header copy in DMEM at hdr_base + (2-1)*128.
    std::vector<uint8_t> hdr(128);
    f.rpu.dmem().read_block(kDefaultHdrBase - kDmemBase + 128, hdr.data(), 128);
    EXPECT_TRUE(std::equal(hdr.begin(), hdr.end(), original.begin()));
    EXPECT_EQ(f.rpu.occupancy(), 1u);
}

TEST(RpuTest, RxSerializationTakesLinkCycles) {
    Fixture f;
    f.boot(slot_config_firmware());
    auto pkt = f.make_pkt(1024, 1);
    f.rpu.begin_rx(pkt);
    // 1024 bytes at 16 B/cycle = 64 cycles; not ready during transfer.
    f.kernel.run(32);
    EXPECT_FALSE(f.rpu.rx_ready());
    EXPECT_EQ(f.stats.get("rpu3.rx_packets"), 0u);
    f.kernel.run(40);
    EXPECT_EQ(f.stats.get("rpu3.rx_packets"), 1u);
    // Setup gap still holds rx_ready low right after the transfer.
    EXPECT_FALSE(f.rpu.rx_ready());
    f.kernel.run(16);
    EXPECT_TRUE(f.rpu.rx_ready());
}

TEST(RpuTest, HashPrependedPacketStoresHashFirst) {
    Fixture f;
    f.boot(slot_config_firmware());
    auto pkt = f.make_pkt(128, 1);
    pkt->lb_hash = 0xa1b2c3d4;
    pkt->hash_prepended = true;
    f.rpu.begin_rx(pkt);
    f.kernel.run(32);
    EXPECT_EQ(f.rpu.pmem().read32(0), 0xa1b2c3d4u);
    EXPECT_EQ(f.rpu.pmem().read8(4), pkt->data[0]);
}

TEST(RpuTest, ForwarderRoundTrip) {
    // Full firmware loop: receive, toggle port, send; check egress packet.
    Assembler a;
    a.lui(gp, 0x2000);
    a.li(t0, 8);
    a.sw(t0, kRegSlotCount, gp);
    a.lui(t0, 0x1000);
    a.sw(t0, kRegSlotBase, gp);
    a.li(t0, 16384 / 4);
    a.slli(t0, t0, 2);
    a.sw(t0, kRegSlotSize, gp);
    a.sw(zero, kRegSlotCommit, gp);
    a.label("loop");
    a.lw(a0, kRegRecvLow, gp);
    a.beqz(a0, "loop");
    a.sw(zero, kRegRecvRelease, gp);
    a.xori(a0, a0, 1);
    a.sw(a0, kRegSendLow, gp);
    a.sw(zero, kRegSendHigh, gp);
    a.j("loop");

    Fixture f;
    f.boot(a.assemble());
    auto pkt = f.make_pkt(200, 3);
    std::vector<uint8_t> original = pkt->data;
    f.rpu.begin_rx(pkt);
    f.kernel.run(300);

    ASSERT_EQ(f.egressed.size(), 1u);
    EXPECT_EQ(f.egressed[0]->data, original);
    EXPECT_EQ(f.egressed[0]->out_iface, net::Iface::kPort1);
    ASSERT_EQ(f.freed.size(), 1u);
    EXPECT_EQ(f.freed[0].first, 3);   // rpu id
    EXPECT_EQ(f.freed[0].second, 3);  // slot
    EXPECT_EQ(f.rpu.occupancy(), 0u);
}

TEST(RpuTest, ZeroLengthSendDropsPacket) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.li(t0, 8);
    a.sw(t0, kRegSlotCount, gp);
    a.lui(t0, 0x1000);
    a.sw(t0, kRegSlotBase, gp);
    a.lui(t0, 0x4);  // 16384
    a.sw(t0, kRegSlotSize, gp);
    a.sw(zero, kRegSlotCommit, gp);
    a.label("loop");
    a.lw(a0, kRegRecvLow, gp);
    a.beqz(a0, "loop");
    a.sw(zero, kRegRecvRelease, gp);
    a.slli(a0, a0, 20);  // len := 0
    a.srli(a0, a0, 20);
    a.sw(a0, kRegSendLow, gp);
    a.sw(zero, kRegSendHigh, gp);
    a.j("loop");

    Fixture f;
    f.boot(a.assemble());
    f.rpu.begin_rx(f.make_pkt(64, 1));
    f.kernel.run(200);
    EXPECT_EQ(f.egressed.size(), 0u);
    EXPECT_EQ(f.stats.get("rpu3.dropped_packets"), 1u);
    EXPECT_EQ(f.freed.size(), 1u);
    EXPECT_EQ(f.rpu.occupancy(), 0u);
}

TEST(RpuTest, EgressBackpressureStallsTx) {
    Fixture f;
    bool accept = false;
    f.rpu.set_egress_handler([&](net::PacketPtr p) {
        if (accept) f.egressed.push_back(p);
        return accept;
    });
    // Forwarder firmware.
    Assembler a;
    a.lui(gp, 0x2000);
    a.li(t0, 8);
    a.sw(t0, kRegSlotCount, gp);
    a.lui(t0, 0x1000);
    a.sw(t0, kRegSlotBase, gp);
    a.lui(t0, 0x4);
    a.sw(t0, kRegSlotSize, gp);
    a.sw(zero, kRegSlotCommit, gp);
    a.label("loop");
    a.lw(a0, kRegRecvLow, gp);
    a.beqz(a0, "loop");
    a.sw(zero, kRegRecvRelease, gp);
    a.sw(a0, kRegSendLow, gp);
    a.sw(zero, kRegSendHigh, gp);
    a.j("loop");
    f.boot(a.assemble());

    f.rpu.begin_rx(f.make_pkt(64, 1));
    f.kernel.run(300);
    EXPECT_EQ(f.egressed.size(), 0u);
    EXPECT_EQ(f.rpu.occupancy(), 1u);  // slot not freed while blocked
    EXPECT_GT(f.stats.get("rpu3.tx_stall_cycles"), 0u);
    accept = true;
    f.kernel.run(10);
    EXPECT_EQ(f.egressed.size(), 1u);
    EXPECT_EQ(f.rpu.occupancy(), 0u);
}

TEST(RpuTest, DebugRegistersVisibleToHost) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.li(t0, 0x1234);
    a.sw(t0, kRegDebugLow, gp);
    a.li(t0, 0x5678);
    a.sw(t0, kRegDebugHigh, gp);
    a.ebreak();

    Fixture f;
    f.boot(a.assemble());
    EXPECT_EQ(f.rpu.debug_low(), 0x1234u);
    EXPECT_EQ(f.rpu.debug_high(), 0x5678u);
    EXPECT_TRUE(f.rpu.core_halted());
    EXPECT_FALSE(f.rpu.core_faulted());
}

TEST(RpuTest, CoreIdAndIrqRegisters) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, kRegCoreId, gp);
    a.sw(t0, kRegDebugLow, gp);
    a.li(t0, 0x30);  // enable evict + poke
    a.sw(t0, kRegIrqMask, gp);
    a.label("wait");
    a.lw(t1, kRegIrqStatus, gp);
    a.beqz(t1, "wait");
    a.sw(t1, kRegDebugHigh, gp);
    a.ebreak();

    Fixture f;
    f.boot(a.assemble());
    EXPECT_EQ(f.rpu.debug_low(), 3u);  // core id
    EXPECT_FALSE(f.rpu.core_halted());
    f.rpu.raise_poke();
    f.kernel.run(50);
    EXPECT_TRUE(f.rpu.core_halted());
    EXPECT_EQ(f.rpu.debug_high(), uint32_t(kIrqPoke));
}

TEST(RpuTest, MaskedInterruptInvisible) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.sw(zero, kRegIrqMask, gp);  // mask everything
    a.li(t2, 100);
    a.label("wait");
    a.lw(t1, kRegIrqStatus, gp);
    a.bnez(t1, "seen");
    a.addi(t2, t2, -1);
    a.bnez(t2, "wait");
    a.li(t3, 1);  // timed out: interrupt never seen
    a.sw(t3, kRegDebugLow, gp);
    a.ebreak();
    a.label("seen");
    a.li(t3, 2);
    a.sw(t3, kRegDebugLow, gp);
    a.ebreak();

    Fixture f;
    f.rpu.load_firmware(a.assemble());
    f.rpu.boot();
    f.rpu.raise_evict();
    f.kernel.run(2000);
    EXPECT_EQ(f.rpu.debug_low(), 1u);
}

TEST(RpuTest, BroadcastStoreBlocksUntilAccepted) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.lui(s5, 0x2020);
    a.li(t0, 0x77);
    a.sw(t0, 0, s5);  // broadcast write
    a.li(t0, 1);
    a.sw(t0, kRegDebugLow, gp);
    a.ebreak();

    Fixture f;
    int deny = 30;
    uint32_t sent_value = 0;
    f.rpu.set_broadcast_sender([&](uint8_t, uint32_t off, uint32_t val) {
        if (deny > 0) {
            --deny;
            return false;
        }
        EXPECT_EQ(off, 0u);
        sent_value = val;
        return true;
    });
    f.rpu.load_firmware(a.assemble());
    f.rpu.boot();
    f.kernel.run(20);
    EXPECT_EQ(f.rpu.debug_low(), 0u);  // still blocked
    f.kernel.run(50);
    EXPECT_EQ(f.rpu.debug_low(), 1u);
    EXPECT_EQ(sent_value, 0x77u);
}

TEST(RpuTest, BroadcastDeliveryUpdatesLocalCopyAndNotifies) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.lui(s5, 0x2020);
    a.label("wait");
    a.lw(t0, kRegBcastReady, gp);
    a.beqz(t0, "wait");
    a.lw(t1, kRegBcastAddr, gp);
    a.lw(t2, kRegBcastData, gp);
    a.sw(zero, kRegBcastPop, gp);
    a.sw(t1, kRegDebugLow, gp);
    a.sw(t2, kRegDebugHigh, gp);
    // Also read the semi-coherent local copy.
    a.lw(t3, 0x40, s5);
    a.bne(t3, t2, "bad");
    a.ebreak();
    a.label("bad");
    a.sw(zero, kRegDebugHigh, gp);
    a.ebreak();

    Fixture f;
    f.rpu.load_firmware(a.assemble());
    f.rpu.boot();
    f.kernel.run(10);
    f.rpu.broadcast_deliver(0x40, 0xfeed);
    f.kernel.run(100);
    EXPECT_TRUE(f.rpu.core_halted());
    EXPECT_EQ(f.rpu.debug_low(), 0x40u);
    EXPECT_EQ(f.rpu.debug_high(), 0xfeedu);
}

TEST(RpuTest, UnmappedAccessFaultsCore) {
    Assembler a;
    a.lui(t0, 0x50000);  // far outside every region
    a.lw(t1, 0, t0);
    a.ebreak();
    Fixture f;
    f.rpu.load_firmware(a.assemble());
    f.rpu.boot();
    f.kernel.run(50);
    EXPECT_TRUE(f.rpu.core_faulted());
}

TEST(RpuTest, BootResetsEngineState) {
    Fixture f;
    f.boot(slot_config_firmware());
    f.rpu.begin_rx(f.make_pkt(64, 1));
    f.kernel.run(2);
    f.rpu.boot();  // mid-transfer reconfiguration
    EXPECT_EQ(f.rpu.occupancy(), 0u);
    EXPECT_EQ(f.rpu.slot_config().count, 0u);
    f.kernel.run(100);  // firmware reconfigures slots again
    EXPECT_EQ(f.rpu.slot_config().count, 8u);
}

TEST(RpuTest, ResourcesScaleWithMemories) {
    Fixture f;
    auto fp = f.rpu.base_resources();
    // BRAM: (64 KB IMEM + 32 KB DMEM) / 4 KB = 24 blocks; URAM: 1 MB / 32 KB.
    EXPECT_EQ(fp.bram, 24u);
    EXPECT_EQ(fp.uram, 32u);
    // Calibrated near the paper's "Single RPU" row (4541 LUTs / 3788 FFs).
    EXPECT_NEAR(double(fp.luts), 4541.0, 4541.0 * 0.1);
    EXPECT_NEAR(double(fp.regs), 3788.0, 3788.0 * 0.1);
}

}  // namespace
}  // namespace rosebud::rpu
