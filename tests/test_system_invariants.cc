/// Whole-system property tests: packet conservation (every packet offered
/// is exactly one of forwarded / host-delivered / dropped-with-a-counter),
/// no duplication, slot-accounting closure, and determinism of complete
/// runs — under randomized traffic mixes and configurations.
///
/// Expressed against the golden-oracle scoreboard (src/oracle): a run with
/// zero divergences already proves per-packet conservation, no duplication,
/// no stuck packets, and byte-exact outputs, so these tests assert on the
/// scoreboard's counts instead of re-deriving them from raw stats.

#include <gtest/gtest.h>

#include <memory>

#include "accel/firewall.h"
#include "core/system.h"
#include "firmware/programs.h"
#include "net/tracegen.h"
#include "oracle/harness.h"

namespace rosebud {
namespace {

namespace oracle = rosebud::oracle;

/// Forwarder pipeline under a randomized traffic mix, checked online by
/// the differential scoreboard.
oracle::RunResult
run_random_mix(uint64_t seed, unsigned rpus, lb::Policy policy, double load,
               uint32_t size) {
    oracle::RunSpec s;
    s.pipeline = oracle::Pipeline::kForwarder;
    s.rpu_count = rpus;
    s.policy = policy;
    s.seed = seed;
    s.load = load;
    s.packet_size = size;
    s.max_packets = 400;
    s.udp_fraction = 0.3;
    return oracle::run_differential(s);
}

class ConservationTest
    : public ::testing::TestWithParam<std::tuple<unsigned, lb::Policy, double>> {};

TEST_P(ConservationTest, EveryPacketAccountedExactlyOnce) {
    auto [rpus, policy, load] = GetParam();
    oracle::RunResult res = run_random_mix(7, rpus, policy, load, 300);
    // Zero divergences covers duplication (a second terminal for the same
    // packet diverges) and stuck packets (flagged by finish()).
    EXPECT_TRUE(res.ok) << res.report;
    EXPECT_EQ(res.counts.divergences, 0u) << res.report;
    EXPECT_EQ(res.counts.offered,
              res.counts.forwarded_wire + res.counts.host_delivered +
                  res.counts.fw_dropped + res.counts.congestion_dropped);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, ConservationTest,
    ::testing::Values(std::make_tuple(4u, lb::Policy::kRoundRobin, 0.3),
                      std::make_tuple(4u, lb::Policy::kRoundRobin, 1.0),
                      std::make_tuple(8u, lb::Policy::kHash, 0.5),
                      std::make_tuple(8u, lb::Policy::kLeastLoaded, 1.0),
                      std::make_tuple(16u, lb::Policy::kRoundRobin, 1.0)),
    [](const auto& info) {
        return "rpus" + std::to_string(std::get<0>(info.param)) + "_policy" +
               std::to_string(int(std::get<1>(info.param))) + "_load" +
               std::to_string(int(std::get<2>(info.param) * 10));
    });

TEST(SystemInvariants, SlotAccountingClosesAfterDrain) {
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        oracle::RunResult res =
            run_random_mix(seed, 8, lb::Policy::kRoundRobin, 1.0, 128);
        EXPECT_EQ(res.counts.divergences, 0u) << res.report;
        EXPECT_GT(res.counts.forwarded_wire, 0u);
    }
    SystemConfig cfg;
    cfg.rpu_count = 8;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);
    for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(sys.lb().free_slots(uint8_t(i)), 32u);
}

TEST(SystemInvariants, RunsAreBitIdenticalAcrossProcessReplays) {
    auto fingerprint = [](uint64_t seed) {
        oracle::RunResult res = run_random_mix(seed, 8, lb::Policy::kHash, 0.8, 200);
        EXPECT_EQ(res.counts.divergences, 0u) << res.report;
        // output_byte_hash digests (egress kind, packet id, bytes) for
        // every terminal: equal digests mean byte-identical runs.
        uint64_t fp = res.counts.output_byte_hash;
        fp = fp * 1000003 + res.counts.forwarded_wire;
        fp = fp * 10007 + res.counts.host_delivered;
        fp = fp * 101 + res.counts.fw_dropped + res.counts.congestion_dropped;
        return fp;
    };
    EXPECT_EQ(fingerprint(11), fingerprint(11));
    EXPECT_NE(fingerprint(11), fingerprint(12));
}

TEST(SystemInvariants, FirewallConservationWithDrops) {
    // Scoreboard attached directly to a hand-built System: the oracle does
    // not just count drops, it checks each one was justified (blacklisted
    // source) and each forward was byte-exact.
    sim::Rng rng(9);
    auto bl = net::Blacklist::synthesize(64, rng);
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    sys.attach_accelerators([&] { return std::make_unique<accel::FirewallMatcher>(bl); });
    auto fw = fwlib::firewall();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);

    oracle::OracleConfig ocfg;
    ocfg.pipeline = oracle::Pipeline::kFirewall;
    ocfg.lb_policy = lb::Policy::kRoundRobin;
    ocfg.rpu_count = 4;
    ocfg.blacklist = &bl;
    oracle::DataplaneOracle orc(ocfg);
    oracle::Scoreboard sb(sys, orc);

    net::TrafficSpec spec;
    spec.packet_size = 200;
    spec.attack_fraction = 0.3;
    spec.seed = 9;
    auto gen = std::make_shared<net::TraceGenerator>(spec, nullptr, &bl);
    uint64_t attacks = 0;
    auto& src = sys.add_source({.port = 0, .load = 0.3, .max_packets = 300},
                               [gen, &attacks] {
                                   auto p = gen->next();
                                   attacks += p->is_attack;
                                   return p;
                               });
    sys.run_cycles(100000);

    auto counts = sb.finish();
    EXPECT_EQ(sb.divergence_count(), 0u) << sb.report();
    EXPECT_EQ(src.offered(), 300u);
    EXPECT_EQ(counts.fw_dropped, attacks);              // exactly the blacklisted traffic
    EXPECT_EQ(counts.forwarded_wire, 300u - attacks);   // everything else came out
}

TEST(SystemInvariants, NoDuplicationAcrossReconfiguration) {
    // Partial reconfiguration mid-traffic (host drains the target RPU,
    // swaps the region, reboots it, resumes traffic) must not duplicate,
    // lose, or corrupt a single packet. The scoreboard would flag any of
    // those as a divergence.
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);

    oracle::OracleConfig ocfg;
    ocfg.pipeline = oracle::Pipeline::kForwarder;
    ocfg.lb_policy = lb::Policy::kRoundRobin;
    ocfg.rpu_count = 4;
    oracle::DataplaneOracle orc(ocfg);
    oracle::Scoreboard sb(sys, orc);

    net::TrafficSpec spec;
    spec.packet_size = 256;
    spec.seed = 21;
    auto gen = std::make_shared<net::TraceGenerator>(spec);
    auto& src = sys.add_source({.port = 0, .load = 0.5, .max_packets = 600},
                               [gen] { return gen->next(); });

    sys.run_cycles(1000);  // traffic in full flight
    sim::Rng rng(5);
    sys.host().reconfigure(1, nullptr, fw.image, fw.entry, rng);
    sys.run_cycles(1000);
    sys.host().reconfigure(2, nullptr, fw.image, fw.entry, rng);

    for (int i = 0; i < 30 && sb.outstanding() > 0; ++i) sys.run_cycles(10000);
    auto counts = sb.finish();
    EXPECT_EQ(sb.divergence_count(), 0u) << sb.report();
    EXPECT_EQ(src.offered(), 600u);
    EXPECT_EQ(counts.offered,
              counts.forwarded_wire + counts.host_delivered + counts.fw_dropped +
                  counts.congestion_dropped);
    EXPECT_EQ(sys.stats().get("host.pr_loads"), 2u);
}

}  // namespace
}  // namespace rosebud
