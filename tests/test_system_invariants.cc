/// Whole-system property tests: packet conservation (every packet offered
/// is exactly one of forwarded / host-delivered / dropped-with-a-counter),
/// no duplication, slot-accounting closure, and determinism of complete
/// runs — under randomized traffic mixes and configurations.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "accel/firewall.h"
#include "core/system.h"
#include "firmware/programs.h"
#include "net/tracegen.h"

namespace rosebud {
namespace {

struct RunCounts {
    uint64_t offered = 0;
    uint64_t forwarded = 0;
    uint64_t host = 0;
    uint64_t rx_fifo_drops = 0;
    uint64_t fw_drops = 0;
    uint64_t in_flight = 0;  // still inside at the end
    uint64_t byte_hash = 0;  // rolling hash over delivered frame bytes
    std::map<uint64_t, int> sink_ids;
};

RunCounts
run_random_mix(uint64_t seed, unsigned rpus, lb::Policy policy, double load,
               uint32_t size) {
    SystemConfig cfg;
    cfg.rpu_count = rpus;
    cfg.lb_policy = policy;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);

    RunCounts rc;
    auto sink = [&](net::PacketPtr p) {
        ++rc.forwarded;
        ++rc.sink_ids[p->id];
        for (uint8_t b : p->data) rc.byte_hash = rc.byte_hash * 131 + b;
    };
    sys.fabric().set_mac_tx_sink(0, sink);
    sys.fabric().set_mac_tx_sink(1, sink);
    sys.host().set_rx_handler([&](net::PacketPtr) { ++rc.host; });

    net::TrafficSpec spec;
    spec.packet_size = size;
    spec.seed = seed;
    spec.udp_fraction = 0.3;
    auto gen = std::make_shared<net::TraceGenerator>(spec);
    auto& src = sys.add_source(
        {.port = 0, .load = load, .max_packets = 400},
        [gen] { return gen->next(); });
    sys.run_cycles(120000);  // enough to fully drain at any load

    rc.offered = src.offered();
    rc.rx_fifo_drops = sys.stats().get("port0.rx_fifo_drops") +
                       sys.stats().get("port1.rx_fifo_drops");
    for (unsigned i = 0; i < rpus; ++i) {
        rc.fw_drops += sys.stats().get("rpu" + std::to_string(i) + ".dropped_packets");
        rc.in_flight += sys.rpu(i).occupancy();
    }
    return rc;
}

class ConservationTest
    : public ::testing::TestWithParam<std::tuple<unsigned, lb::Policy, double>> {};

TEST_P(ConservationTest, EveryPacketAccountedExactlyOnce) {
    auto [rpus, policy, load] = GetParam();
    RunCounts rc = run_random_mix(7, rpus, policy, load, 300);
    EXPECT_EQ(rc.offered,
              rc.forwarded + rc.host + rc.rx_fifo_drops + rc.fw_drops + rc.in_flight);
    EXPECT_EQ(rc.in_flight, 0u) << "packets stuck inside after drain";
    for (const auto& [id, count] : rc.sink_ids) {
        EXPECT_EQ(count, 1) << "packet " << id << " duplicated";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, ConservationTest,
    ::testing::Values(std::make_tuple(4u, lb::Policy::kRoundRobin, 0.3),
                      std::make_tuple(4u, lb::Policy::kRoundRobin, 1.0),
                      std::make_tuple(8u, lb::Policy::kHash, 0.5),
                      std::make_tuple(8u, lb::Policy::kLeastLoaded, 1.0),
                      std::make_tuple(16u, lb::Policy::kRoundRobin, 1.0)),
    [](const auto& info) {
        return "rpus" + std::to_string(std::get<0>(info.param)) + "_policy" +
               std::to_string(int(std::get<1>(info.param))) + "_load" +
               std::to_string(int(std::get<2>(info.param) * 10));
    });

TEST(SystemInvariants, SlotAccountingClosesAfterDrain) {
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        RunCounts rc = run_random_mix(seed, 8, lb::Policy::kRoundRobin, 1.0, 128);
        EXPECT_EQ(rc.in_flight, 0u);
        EXPECT_GT(rc.forwarded, 0u);
    }
    SystemConfig cfg;
    cfg.rpu_count = 8;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);
    for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(sys.lb().free_slots(uint8_t(i)), 32u);
}

TEST(SystemInvariants, RunsAreBitIdenticalAcrossProcessReplays) {
    auto fingerprint = [](uint64_t seed) {
        RunCounts rc = run_random_mix(seed, 8, lb::Policy::kHash, 0.8, 200);
        uint64_t fp = rc.forwarded * 1000003 + rc.host * 10007 + rc.fw_drops * 101 +
                      rc.rx_fifo_drops + rc.byte_hash;
        for (const auto& [id, n] : rc.sink_ids) fp = fp * 31 + id * uint64_t(n);
        return fp;
    };
    EXPECT_EQ(fingerprint(11), fingerprint(11));
    EXPECT_NE(fingerprint(11), fingerprint(12));
}

TEST(SystemInvariants, FirewallConservationWithDrops) {
    sim::Rng rng(9);
    auto bl = net::Blacklist::synthesize(64, rng);
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    sys.attach_accelerators([&] { return std::make_unique<accel::FirewallMatcher>(bl); });
    auto fw = fwlib::firewall();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);

    uint64_t forwarded = 0;
    sys.fabric().set_mac_tx_sink(0, [&](net::PacketPtr) { ++forwarded; });
    sys.fabric().set_mac_tx_sink(1, [&](net::PacketPtr) { ++forwarded; });

    net::TrafficSpec spec;
    spec.packet_size = 200;
    spec.attack_fraction = 0.3;
    spec.seed = 9;
    auto gen = std::make_shared<net::TraceGenerator>(spec, nullptr, &bl);
    uint64_t attacks = 0;
    auto& src = sys.add_source({.port = 0, .load = 0.3, .max_packets = 300},
                               [gen, &attacks] {
                                   auto p = gen->next();
                                   attacks += p->is_attack;
                                   return p;
                               });
    sys.run_cycles(100000);

    uint64_t drops = 0;
    for (unsigned i = 0; i < 4; ++i) {
        drops += sys.stats().get("rpu" + std::to_string(i) + ".dropped_packets");
    }
    EXPECT_EQ(src.offered(), 300u);
    EXPECT_EQ(drops, attacks);              // exactly the blacklisted traffic
    EXPECT_EQ(forwarded, 300u - attacks);   // everything else came out
}

}  // namespace
}  // namespace rosebud
