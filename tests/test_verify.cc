/// Static firmware verifier tests: every shipped firmware program must
/// verify with zero diagnostics, every hand-crafted bad image must be
/// rejected with the right diagnostic, and the host-side load gate must
/// enforce/warn per its policy.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/system.h"
#include "firmware/programs.h"
#include "rpu/descriptor.h"
#include "rv/assembler.h"
#include "rv/isa.h"
#include "sim/log.h"
#include "verify/verifier.h"

namespace rosebud {
namespace {

using namespace rosebud::rv;
using verify::Check;
using verify::Options;
using verify::Report;
using verify::Severity;

bool
has_error(const Report& r, Check c) {
    for (const auto& d : r.diags) {
        if (d.check == c && d.severity == Severity::kError) return true;
    }
    return false;
}

// --- shipped firmware ------------------------------------------------------

struct Shipped {
    const char* name;
    fwlib::Program prog;
};

std::vector<Shipped>
shipped_programs() {
    std::vector<Shipped> out;
    out.push_back({"forwarder", fwlib::forwarder()});
    out.push_back({"two_step_forwarder", fwlib::two_step_forwarder(16)});
    out.push_back({"firewall", fwlib::firewall()});
    out.push_back({"pigasus_hw_reorder", fwlib::pigasus_hw_reorder()});
    out.push_back({"pigasus_sw_reorder", fwlib::pigasus_sw_reorder()});
    out.push_back({"nat", fwlib::nat()});
    out.push_back({"nat_hash_prepended", fwlib::nat(fwlib::SlotParams{16, 16 * 1024}, true)});
    out.push_back({"chained_firewall", fwlib::chained_firewall(16)});
    out.push_back({"broadcast_sender", fwlib::broadcast_sender(64)});
    out.push_back({"broadcast_sink", fwlib::broadcast_sink()});
    out.push_back({"broadcast_stress", fwlib::broadcast_stress()});
    return out;
}

TEST(Verifier, ShippedFirmwareVerifiesWithZeroDiagnostics) {
    for (const auto& s : shipped_programs()) {
        Options opts;
        opts.entry = s.prog.entry;
        Report r = verify::verify_image(s.prog.image, opts);
        EXPECT_TRUE(r.ok()) << s.name << ":\n" << r.summary();
        EXPECT_EQ(r.diags.size(), 0u) << s.name << ":\n" << r.summary();
        EXPECT_GT(r.instructions, 0u) << s.name;
        EXPECT_GE(r.blocks.size(), 2u) << s.name;
    }
}

TEST(Verifier, SlotWindowCrossCheckAcceptsPaperDefaults) {
    auto fw = fwlib::forwarder();
    Options opts;
    opts.slots = {32, 16 * 1024, rpu::kPmemBase};
    Report r = verify::verify_image(fw.image, opts);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, SlotWindowOverflowingPmemIsRejected) {
    auto fw = fwlib::forwarder();
    Options opts;
    opts.slots = {128, 16 * 1024, rpu::kPmemBase};  // 2 MB > 1 MB of PMEM
    Report r = verify::verify_image(fw.image, opts);
    EXPECT_TRUE(has_error(r, Check::kSlots)) << r.summary();
}

TEST(Verifier, CfgDotRendersBlocksAndEdges) {
    auto fw = fwlib::forwarder();
    Report r = verify::verify_image(fw.image, Options{});
    std::string dot = verify::cfg_dot(fw.image, r, "forwarder");
    EXPECT_NE(dot.find("digraph \"forwarder\""), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);  // at least one edge
    EXPECT_NE(dot.find("lui"), std::string::npos); // disassembly in labels
}

// --- hand-crafted bad firmware (satellite: negative tests) -----------------

TEST(Verifier, OutOfBoundsStoreIsRejected) {
    Assembler a;
    a.li(t0, 0x03000000);  // past the broadcast region
    a.sw(zero, 0, t0);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_error(r, Check::kMemory)) << r.summary();
}

TEST(Verifier, StoreToImemIsRejected) {
    Assembler a;
    a.li(t0, 0x100);  // inside IMEM: loads are fine, stores fault
    a.sw(zero, 0, t0);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kMemory)) << r.summary();
}

TEST(Verifier, JumpPastImemIsRejected) {
    std::vector<uint32_t> image = {
        encode_j(0x40000, zero),  // target 0x40000 is past the 64 KB IMEM
        0x00100073,               // ebreak
    };
    Report r = verify::verify_image(image, Options{});
    EXPECT_TRUE(has_error(r, Check::kCfg)) << r.summary();
}

TEST(Verifier, JumpPastImageEndIsRejected) {
    std::vector<uint32_t> image = {
        encode_j(0x1000, zero),  // inside IMEM but past the loaded image
        0x00100073,
    };
    Report r = verify::verify_image(image, Options{});
    EXPECT_TRUE(has_error(r, Check::kCfg)) << r.summary();
}

TEST(Verifier, MisalignedBranchTargetIsRejected) {
    std::vector<uint32_t> image = {
        encode_b(2, zero, zero, 0),  // beq zero, zero, +2: lands mid-word
        0x00100073,
    };
    Report r = verify::verify_image(image, Options{});
    EXPECT_TRUE(has_error(r, Check::kCfg)) << r.summary();
}

TEST(Verifier, UninitializedRegisterReadIsRejected) {
    Assembler a;
    a.addi(t1, t0, 1);  // t0 never written
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kUninit)) << r.summary();

    Options lenient;
    lenient.check_uninit = false;
    EXPECT_TRUE(verify::verify_image(a.assemble(), lenient).ok());
}

TEST(Verifier, ProvablyInfiniteLoopIsRejected) {
    Assembler a;
    a.li(t0, 0);
    a.label("self");
    a.j("self");  // no exit edge, no MMIO access, no interrupts
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kLoop)) << r.summary();

    Options lenient;
    lenient.check_loops = false;
    EXPECT_TRUE(verify::verify_image(a.assemble(), lenient).ok());
}

TEST(Verifier, PollLoopWithExitEdgeIsAccepted) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.label("poll");
    a.lw(t0, rpu::kRegRxReady, gp);
    a.beqz(t0, "poll");
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, MmioLoopWithoutExitIsAcceptedAsObservable) {
    // A loop that hammers the debug register forever: no exit edge, but
    // the stores are host-visible side effects, so it is not "provably
    // useless" and must not be flagged.
    Assembler a;
    a.lui(gp, 0x2000);
    a.li(t0, 1);
    a.label("spin");
    a.sw(t0, rpu::kRegDebugLow, gp);
    a.j("spin");
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, ReservedCsrAccessIsRejected) {
    Assembler a;
    a.li(t0, 1);
    a.csrrw(zero, 0x123, t0);  // not implemented by the core
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kCsr)) << r.summary();
}

TEST(Verifier, ReservedMmioOffsetIsRejected) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.sw(zero, 0x0c, gp);  // gap between RecvRelease (0x08) and SendLow (0x10)
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kMmio)) << r.summary();
}

TEST(Verifier, LoadFromWriteOnlyMmioRegisterIsRejected) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegSendLow, gp);  // TX latch is write-only
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kMmio)) << r.summary();
}

TEST(Verifier, FallOffTheEndIsRejected) {
    Assembler a;
    a.li(t0, 1);  // no terminator follows
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kCfg)) << r.summary();
}

TEST(Verifier, UndecodableInstructionIsRejected) {
    std::vector<uint32_t> image = {0xffffffffu};
    Report r = verify::verify_image(image, Options{});
    EXPECT_TRUE(has_error(r, Check::kDecode)) << r.summary();
}

TEST(Verifier, EmptyImageIsRejected) {
    Report r = verify::verify_image({}, Options{});
    EXPECT_FALSE(r.ok());
}

TEST(Verifier, UnreachableCodeIsAWarningNotAnError) {
    Assembler a;
    a.ebreak();
    a.li(t0, 42);  // dead code after the terminator
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_FALSE(r.check_passed(Check::kUnreachable));
    EXPECT_GE(r.warnings(), 1u);
}

TEST(Verifier, InterruptHandlerDiscoveredThroughMtvecIsAnalyzed) {
    // The handler installed via a constant mtvec write becomes a CFG root;
    // a bad store inside it must still be caught.
    Assembler a;
    a.li(t0, 0x40);
    a.csrrw(zero, kCsrMtvec, t0);
    a.li(t0, 8);
    a.csrrs(zero, kCsrMstatus, t0);
    a.ebreak();
    while (a.here() < 0x40) a.nop();
    a.label("handler");
    a.li(t1, 0x03000000);
    a.sw(zero, 0, t1);  // out of bounds, inside the handler
    a.mret();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kMemory)) << r.summary();
    EXPECT_EQ(r.roots.size(), 2u);
}

// --- M-extension interval transfer functions --------------------------------

TEST(Verifier, RemuBoundsAnUnknownValueForAddressing) {
    // The `hash % N` steering idiom: an unknown word modulo a constant is
    // a valid table index. Without the remu transfer function the result
    // is top and the DMEM store below is flagged out of bounds.
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);  // unknown but initialized word
    a.li(t1, 16);
    a.remu(t2, t0, t1);  // [0, 15]
    a.slli(t2, t2, 2);   // [0, 60]
    a.li(t3, rpu::kDmemBase);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);  // provably inside DMEM
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, DivuBoundsTheQuotientByTheDivisor) {
    // An unknown word divided by 2^26 is at most 63: scaled by 4 it stays
    // inside DMEM. Exercises the divu corner arithmetic.
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);
    a.li(t1, 1 << 26);
    a.divu(t2, t0, t1);  // [0, 63]
    a.slli(t2, t2, 2);   // [0, 252]
    a.li(t3, rpu::kDmemBase);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, DivByPositiveConstantKeepsNonNegativeRangeExact) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);
    a.andi(t0, t0, 0x7ff);  // [0, 2047]
    a.li(t1, 8);
    a.div(t2, t0, t1);  // [0, 255]
    a.slli(t2, t2, 2);  // [0, 1020]
    a.li(t3, rpu::kDmemBase);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, RemKeepsNonNegativeDividendSign) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);
    a.andi(t0, t0, 0x7ff);  // non-negative dividend [0, 2047]
    a.li(t1, 32);
    a.rem(t2, t0, t1);  // [0, 31]
    a.slli(t2, t2, 2);  // [0, 124]
    a.li(t3, rpu::kDmemBase);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, RemuRangePlacedOutsideEveryRegionIsRejected) {
    // Negative control that only fires *because of* the remu transfer
    // function: the bounded range [0x03000000, 0x0300000f] is provably
    // outside every mapped region. With remu going to top, the address
    // would be unknown and the verifier could not prove the violation.
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);
    a.li(t1, 16);
    a.remu(t2, t0, t1);    // [0, 15]
    a.li(t3, 0x03000000);  // past the broadcast region
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kMemory)) << r.summary();
}

TEST(Verifier, DivRangePlacedOutsideEveryRegionIsRejected) {
    // Same shape for signed div: [0, 2047]/2 = [0, 1023], provably out of
    // bounds once rebased past the mapped regions.
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);
    a.andi(t0, t0, 0x7ff);
    a.li(t1, 2);
    a.div(t2, t0, t1);     // [0, 1023]
    a.li(t3, 0x03000000);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kMemory)) << r.summary();
}

// --- host load gate --------------------------------------------------------

SystemConfig
small_cfg() {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    return cfg;
}

TEST(VerifierGate, HostRejectsBadFirmwareByDefault) {
    System sys(small_cfg());
    EXPECT_THROW(sys.host().load_firmware_all({0xffffffffu}), sim::FatalError);
    EXPECT_THROW(sys.host().load_firmware(0, {0xffffffffu}), sim::FatalError);
}

TEST(VerifierGate, WarnModeLoadsBadFirmwareAnyway) {
    System sys(small_cfg());
    sys.host().set_firmware_check(host::FirmwareCheck::kWarn);
    EXPECT_NO_THROW(sys.host().load_firmware(0, {0xffffffffu}));
    sys.host().set_firmware_check(host::FirmwareCheck::kOff);
    EXPECT_NO_THROW(sys.host().load_firmware(0, {0xffffffffu}));
}

TEST(VerifierGate, SystemConfigPolicyIsForwarded) {
    SystemConfig cfg = small_cfg();
    cfg.firmware_check = host::FirmwareCheck::kWarn;
    System sys(cfg);
    EXPECT_EQ(sys.host().firmware_check(), host::FirmwareCheck::kWarn);
    EXPECT_NO_THROW(sys.host().load_firmware(0, {0xffffffffu}));
}

TEST(VerifierGate, ReconfigureVerifiesBeforeDraining) {
    System sys(small_cfg());
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(300);
    sim::Rng rng(7);
    EXPECT_THROW(sys.host().reconfigure(0, nullptr, {0xffffffffu}, 0, rng),
                 sim::FatalError);
    // The RPU was never halted: the gate fired before the drain started.
    EXPECT_FALSE(sys.rpu(0).core_halted());
}

}  // namespace
}  // namespace rosebud
