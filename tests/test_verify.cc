/// Static firmware verifier tests: every shipped firmware program must
/// verify with zero diagnostics, every hand-crafted bad image must be
/// rejected with the right diagnostic, and the host-side load gate must
/// enforce/warn per its policy.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/system.h"
#include "firmware/programs.h"
#include "obs/profile.h"
#include "rpu/descriptor.h"
#include "rv/assembler.h"
#include "rv/isa.h"
#include "sim/log.h"
#include "verify/verifier.h"

namespace rosebud {
namespace {

using namespace rosebud::rv;
using verify::Check;
using verify::Options;
using verify::Report;
using verify::Severity;

bool
has_error(const Report& r, Check c) {
    for (const auto& d : r.diags) {
        if (d.check == c && d.severity == Severity::kError) return true;
    }
    return false;
}

// --- shipped firmware ------------------------------------------------------

struct Shipped {
    const char* name;
    fwlib::Program prog;
};

std::vector<Shipped>
shipped_programs() {
    std::vector<Shipped> out;
    out.push_back({"forwarder", fwlib::forwarder()});
    out.push_back({"two_step_forwarder", fwlib::two_step_forwarder(16)});
    out.push_back({"firewall", fwlib::firewall()});
    out.push_back({"pigasus_hw_reorder", fwlib::pigasus_hw_reorder()});
    out.push_back({"pigasus_sw_reorder", fwlib::pigasus_sw_reorder()});
    out.push_back({"nat", fwlib::nat()});
    out.push_back({"nat_hash_prepended", fwlib::nat(fwlib::SlotParams{16, 16 * 1024}, true)});
    out.push_back({"chained_firewall", fwlib::chained_firewall(16)});
    out.push_back({"broadcast_sender", fwlib::broadcast_sender(64)});
    out.push_back({"broadcast_sink", fwlib::broadcast_sink()});
    out.push_back({"broadcast_stress", fwlib::broadcast_stress()});
    return out;
}

TEST(Verifier, ShippedFirmwareVerifiesWithZeroDiagnostics) {
    for (const auto& s : shipped_programs()) {
        Options opts;
        opts.entry = s.prog.entry;
        Report r = verify::verify_image(s.prog.image, opts);
        EXPECT_TRUE(r.ok()) << s.name << ":\n" << r.summary();
        EXPECT_EQ(r.diags.size(), 0u) << s.name << ":\n" << r.summary();
        EXPECT_GT(r.instructions, 0u) << s.name;
        EXPECT_GE(r.blocks.size(), 2u) << s.name;
    }
}

TEST(Verifier, SlotWindowCrossCheckAcceptsPaperDefaults) {
    auto fw = fwlib::forwarder();
    Options opts;
    opts.slots = {32, 16 * 1024, rpu::kPmemBase};
    Report r = verify::verify_image(fw.image, opts);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, SlotWindowOverflowingPmemIsRejected) {
    auto fw = fwlib::forwarder();
    Options opts;
    opts.slots = {128, 16 * 1024, rpu::kPmemBase};  // 2 MB > 1 MB of PMEM
    Report r = verify::verify_image(fw.image, opts);
    EXPECT_TRUE(has_error(r, Check::kSlots)) << r.summary();
}

TEST(Verifier, CfgDotRendersBlocksAndEdges) {
    auto fw = fwlib::forwarder();
    Report r = verify::verify_image(fw.image, Options{});
    std::string dot = verify::cfg_dot(fw.image, r, "forwarder");
    EXPECT_NE(dot.find("digraph \"forwarder\""), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);  // at least one edge
    EXPECT_NE(dot.find("lui"), std::string::npos); // disassembly in labels
}

// --- hand-crafted bad firmware (satellite: negative tests) -----------------

TEST(Verifier, OutOfBoundsStoreIsRejected) {
    Assembler a;
    a.li(t0, 0x03000000);  // past the broadcast region
    a.sw(zero, 0, t0);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(has_error(r, Check::kMemory)) << r.summary();
}

TEST(Verifier, StoreToImemIsRejected) {
    Assembler a;
    a.li(t0, 0x100);  // inside IMEM: loads are fine, stores fault
    a.sw(zero, 0, t0);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kMemory)) << r.summary();
}

TEST(Verifier, JumpPastImemIsRejected) {
    std::vector<uint32_t> image = {
        encode_j(0x40000, zero),  // target 0x40000 is past the 64 KB IMEM
        0x00100073,               // ebreak
    };
    Report r = verify::verify_image(image, Options{});
    EXPECT_TRUE(has_error(r, Check::kCfg)) << r.summary();
}

TEST(Verifier, JumpPastImageEndIsRejected) {
    std::vector<uint32_t> image = {
        encode_j(0x1000, zero),  // inside IMEM but past the loaded image
        0x00100073,
    };
    Report r = verify::verify_image(image, Options{});
    EXPECT_TRUE(has_error(r, Check::kCfg)) << r.summary();
}

TEST(Verifier, MisalignedBranchTargetIsRejected) {
    std::vector<uint32_t> image = {
        encode_b(2, zero, zero, 0),  // beq zero, zero, +2: lands mid-word
        0x00100073,
    };
    Report r = verify::verify_image(image, Options{});
    EXPECT_TRUE(has_error(r, Check::kCfg)) << r.summary();
}

TEST(Verifier, UninitializedRegisterReadIsRejected) {
    Assembler a;
    a.addi(t1, t0, 1);  // t0 never written
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kUninit)) << r.summary();

    Options lenient;
    lenient.check_uninit = false;
    EXPECT_TRUE(verify::verify_image(a.assemble(), lenient).ok());
}

TEST(Verifier, ProvablyInfiniteLoopIsRejected) {
    Assembler a;
    a.li(t0, 0);
    a.label("self");
    a.j("self");  // no exit edge, no MMIO access, no interrupts
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kLoop)) << r.summary();

    Options lenient;
    lenient.check_loops = false;
    EXPECT_TRUE(verify::verify_image(a.assemble(), lenient).ok());
}

TEST(Verifier, PollLoopWithExitEdgeIsAccepted) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.label("poll");
    a.lw(t0, rpu::kRegRxReady, gp);
    a.beqz(t0, "poll");
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, MmioLoopWithoutExitIsAcceptedAsObservable) {
    // A loop that hammers the debug register forever: no exit edge, but
    // the stores are host-visible side effects, so it is not "provably
    // useless" and must not be flagged.
    Assembler a;
    a.lui(gp, 0x2000);
    a.li(t0, 1);
    a.label("spin");
    a.sw(t0, rpu::kRegDebugLow, gp);
    a.j("spin");
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, ReservedCsrAccessIsRejected) {
    Assembler a;
    a.li(t0, 1);
    a.csrrw(zero, 0x123, t0);  // not implemented by the core
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kCsr)) << r.summary();
}

TEST(Verifier, ReservedMmioOffsetIsRejected) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.sw(zero, 0x0c, gp);  // gap between RecvRelease (0x08) and SendLow (0x10)
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kMmio)) << r.summary();
}

TEST(Verifier, LoadFromWriteOnlyMmioRegisterIsRejected) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegSendLow, gp);  // TX latch is write-only
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kMmio)) << r.summary();
}

TEST(Verifier, FallOffTheEndIsRejected) {
    Assembler a;
    a.li(t0, 1);  // no terminator follows
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kCfg)) << r.summary();
}

TEST(Verifier, UndecodableInstructionIsRejected) {
    std::vector<uint32_t> image = {0xffffffffu};
    Report r = verify::verify_image(image, Options{});
    EXPECT_TRUE(has_error(r, Check::kDecode)) << r.summary();
}

TEST(Verifier, EmptyImageIsRejected) {
    Report r = verify::verify_image({}, Options{});
    EXPECT_FALSE(r.ok());
}

TEST(Verifier, UnreachableCodeIsAWarningNotAnError) {
    Assembler a;
    a.ebreak();
    a.li(t0, 42);  // dead code after the terminator
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_FALSE(r.check_passed(Check::kUnreachable));
    EXPECT_GE(r.warnings(), 1u);
}

TEST(Verifier, InterruptHandlerDiscoveredThroughMtvecIsAnalyzed) {
    // The handler installed via a constant mtvec write becomes a CFG root;
    // a bad store inside it must still be caught.
    Assembler a;
    a.li(t0, 0x40);
    a.csrrw(zero, kCsrMtvec, t0);
    a.li(t0, 8);
    a.csrrs(zero, kCsrMstatus, t0);
    a.ebreak();
    while (a.here() < 0x40) a.nop();
    a.label("handler");
    a.li(t1, 0x03000000);
    a.sw(zero, 0, t1);  // out of bounds, inside the handler
    a.mret();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kMemory)) << r.summary();
    EXPECT_EQ(r.roots.size(), 2u);
}

// --- M-extension interval transfer functions --------------------------------

TEST(Verifier, RemuBoundsAnUnknownValueForAddressing) {
    // The `hash % N` steering idiom: an unknown word modulo a constant is
    // a valid table index. Without the remu transfer function the result
    // is top and the DMEM store below is flagged out of bounds.
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);  // unknown but initialized word
    a.li(t1, 16);
    a.remu(t2, t0, t1);  // [0, 15]
    a.slli(t2, t2, 2);   // [0, 60]
    a.li(t3, rpu::kDmemBase);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);  // provably inside DMEM
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, DivuBoundsTheQuotientByTheDivisor) {
    // An unknown word divided by 2^26 is at most 63: scaled by 4 it stays
    // inside DMEM. Exercises the divu corner arithmetic.
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);
    a.li(t1, 1 << 26);
    a.divu(t2, t0, t1);  // [0, 63]
    a.slli(t2, t2, 2);   // [0, 252]
    a.li(t3, rpu::kDmemBase);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, DivByPositiveConstantKeepsNonNegativeRangeExact) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);
    a.andi(t0, t0, 0x7ff);  // [0, 2047]
    a.li(t1, 8);
    a.div(t2, t0, t1);  // [0, 255]
    a.slli(t2, t2, 2);  // [0, 1020]
    a.li(t3, rpu::kDmemBase);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, RemKeepsNonNegativeDividendSign) {
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);
    a.andi(t0, t0, 0x7ff);  // non-negative dividend [0, 2047]
    a.li(t1, 32);
    a.rem(t2, t0, t1);  // [0, 31]
    a.slli(t2, t2, 2);  // [0, 124]
    a.li(t3, rpu::kDmemBase);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, RemuRangePlacedOutsideEveryRegionIsRejected) {
    // Negative control that only fires *because of* the remu transfer
    // function: the bounded range [0x03000000, 0x0300000f] is provably
    // outside every mapped region. With remu going to top, the address
    // would be unknown and the verifier could not prove the violation.
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);
    a.li(t1, 16);
    a.remu(t2, t0, t1);    // [0, 15]
    a.li(t3, 0x03000000);  // past the broadcast region
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kMemory)) << r.summary();
}

TEST(Verifier, DivRangePlacedOutsideEveryRegionIsRejected) {
    // Same shape for signed div: [0, 2047]/2 = [0, 1023], provably out of
    // bounds once rebased past the mapped regions.
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);
    a.andi(t0, t0, 0x7ff);
    a.li(t1, 2);
    a.div(t2, t0, t1);     // [0, 1023]
    a.li(t3, 0x03000000);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kMemory)) << r.summary();
}

// --- host load gate --------------------------------------------------------

SystemConfig
small_cfg() {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    return cfg;
}

TEST(VerifierGate, HostRejectsBadFirmwareByDefault) {
    System sys(small_cfg());
    EXPECT_THROW(sys.host().load_firmware_all({0xffffffffu}), sim::FatalError);
    EXPECT_THROW(sys.host().load_firmware(0, {0xffffffffu}), sim::FatalError);
}

TEST(VerifierGate, WarnModeLoadsBadFirmwareAnyway) {
    System sys(small_cfg());
    sys.host().set_firmware_check(host::FirmwareCheck::kWarn);
    EXPECT_NO_THROW(sys.host().load_firmware(0, {0xffffffffu}));
    sys.host().set_firmware_check(host::FirmwareCheck::kOff);
    EXPECT_NO_THROW(sys.host().load_firmware(0, {0xffffffffu}));
}

TEST(VerifierGate, SystemConfigPolicyIsForwarded) {
    SystemConfig cfg = small_cfg();
    cfg.firmware_check = host::FirmwareCheck::kWarn;
    System sys(cfg);
    EXPECT_EQ(sys.host().firmware_check(), host::FirmwareCheck::kWarn);
    EXPECT_NO_THROW(sys.host().load_firmware(0, {0xffffffffu}));
}

TEST(VerifierGate, ReconfigureVerifiesBeforeDraining) {
    System sys(small_cfg());
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(300);
    sim::Rng rng(7);
    EXPECT_THROW(sys.host().reconfigure(0, nullptr, {0xffffffffu}, 0, rng),
                 sim::FatalError);
    // The RPU was never halted: the gate fired before the drain started.
    EXPECT_FALSE(sys.rpu(0).core_halted());
}

// --- bounded-shift interval transfer functions ------------------------------

TEST(Verifier, SllWithBoundedAmountScalesTheRange) {
    // A table stride computed as 1 << k for unknown k in [0, 7]: the
    // bounded-shift transfer keeps [1, 128], which rebased into DMEM is a
    // provably legal store. Without it the result is top.
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);  // unknown word
    a.andi(t0, t0, 0x7);             // shift amount [0, 7]
    a.li(t1, 1);
    a.sll(t2, t1, t0);  // [1, 128]
    a.li(t3, rpu::kDmemBase);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, SrlWithBoundedAmountBoundsAnUnknownWord) {
    // An unknown word shifted right by at least 24 is at most 255 even
    // though the operand itself is top: the minimum-shift fallback.
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);  // top
    a.lw(t1, rpu::kRegRxReady, gp);
    a.andi(t1, t1, 0x7);
    a.addi(t1, t1, 24);  // amount [24, 31]
    a.srl(t2, t0, t1);   // [0, 255]
    a.slli(t2, t2, 2);   // [0, 1020]
    a.li(t3, rpu::kDmemBase);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, SraWithBoundedAmountKeepsExactCorners) {
    // [0, 2047] >> [4, 7] = [0, 127]: a word-range operand takes the exact
    // corner evaluation, not the unknown-operand fallback.
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);
    a.andi(t0, t0, 0x7ff);  // [0, 2047]
    a.lw(t1, rpu::kRegRxReady, gp);
    a.andi(t1, t1, 0x3);
    a.addi(t1, t1, 4);  // amount [4, 7]
    a.sra(t2, t0, t1);  // [0, 127]
    a.slli(t2, t2, 2);  // [0, 508]
    a.li(t3, rpu::kDmemBase);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, SrlRangePlacedOutsideEveryRegionIsRejected) {
    // Negative control that only fires *because of* the shift transfer:
    // top >> [28, 31] is [0, 15], provably outside every mapped region once
    // rebased past the broadcast window. With the shift going to top the
    // address would be unknown and the violation unprovable.
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);  // top
    a.lw(t1, rpu::kRegRxReady, gp);
    a.andi(t1, t1, 0x3);
    a.addi(t1, t1, 28);  // amount [28, 31]
    a.srl(t2, t0, t1);   // [0, 15]
    a.li(t3, 0x03000000);
    a.add(t3, t3, t2);
    a.sw(zero, 0, t3);
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(has_error(r, Check::kMemory)) << r.summary();
}

// --- line-rate certificate ---------------------------------------------------

/// The five dataplane images named by the line-rate acceptance criteria
/// (plus the hash-steered NAT variant): each must certify a finite WCET, a
/// finite stack bound, and a clean text-segment write-separation proof.
std::vector<Shipped>
dataplane_programs() {
    std::vector<Shipped> out;
    out.push_back({"forwarder", fwlib::forwarder()});
    out.push_back({"two_step_forwarder", fwlib::two_step_forwarder(16)});
    out.push_back({"firewall", fwlib::firewall()});
    out.push_back({"pigasus_hw_reorder", fwlib::pigasus_hw_reorder()});
    out.push_back({"pigasus_sw_reorder", fwlib::pigasus_sw_reorder()});
    out.push_back({"nat", fwlib::nat()});
    return out;
}

TEST(Certifier, ShippedDataplaneFirmwareCertifiesFinite) {
    for (const auto& s : dataplane_programs()) {
        Options opts;
        opts.entry = s.prog.entry;
        Report r = verify::verify_image(s.prog.image, opts);
        const verify::Certificate& cert = r.cert;
        EXPECT_TRUE(cert.wcet_bounded) << s.name;
        EXPECT_GT(cert.wcet_instructions, 0u) << s.name;
        EXPECT_GE(cert.wcet_cycles, cert.wcet_instructions) << s.name;
        EXPECT_TRUE(cert.stack_bounded) << s.name;
        EXPECT_TRUE(cert.text_write_separation) << s.name;
        EXPECT_EQ(cert.unproven_stores, 0u) << s.name;
        ASSERT_FALSE(cert.roots.empty()) << s.name;
        for (const auto& root : cert.roots) {
            EXPECT_TRUE(root.bounded) << s.name;
        }
        // Per-activation semantics: any unbounded cycle left in the CFG must
        // be an observable service/poll loop, or the WCET could not be finite.
        for (const auto& lb : cert.loops) {
            if (!lb.bounded) {
                EXPECT_TRUE(lb.observable) << s.name;
            }
        }
    }
}

TEST(Certifier, CountedDelayLoopIsBoundedAndExemptFromBusyLoopCheck) {
    // A pure delay loop has no observable side effect; only the trip-count
    // inference keeps it out of the busy-loop diagnostic, and the inferred
    // bound (100 trips + slack) feeds the WCET.
    Assembler a;
    a.li(t0, 0);
    a.li(t1, 100);
    a.label("spin");
    a.addi(t0, t0, 1);
    a.blt(t0, t1, "spin");
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_FALSE(has_error(r, Check::kLoop)) << r.summary();
    ASSERT_EQ(r.cert.loops.size(), 1u);
    EXPECT_TRUE(r.cert.loops[0].bounded);
    EXPECT_GE(r.cert.loops[0].max_trips, 100u);
    EXPECT_LE(r.cert.loops[0].max_trips, 110u);  // formula slack only
    EXPECT_TRUE(r.cert.wcet_bounded);
    EXPECT_GE(r.cert.wcet_instructions, 200u);  // ~2 insns x 100 trips
}

TEST(Certifier, UnknownTripComputeLoopIsUnbounded) {
    // The limit register is an arbitrary MMIO word and the body touches
    // nothing observable: no trip bound exists, so the certificate must
    // report an unbounded WCET — while the *safety* verdict stays clean
    // (the loop has an exit edge; it is merely unprovable, not illegal).
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t1, rpu::kRegRxReady, gp);  // unknown trip limit
    a.li(t0, 0);
    a.label("spin");
    a.addi(t0, t0, 1);
    a.bne(t0, t1, "spin");
    a.ebreak();
    Report r = verify::verify_image(a.assemble(), Options{});
    EXPECT_TRUE(r.ok()) << r.summary();
    ASSERT_EQ(r.cert.loops.size(), 1u);
    EXPECT_FALSE(r.cert.loops[0].bounded);
    EXPECT_FALSE(r.cert.loops[0].observable);
    EXPECT_FALSE(r.cert.wcet_bounded);
    EXPECT_EQ(r.cert.wcet_instructions, 0u);
}

TEST(Certifier, CfgDotCarriesCostsLoopBoundsAndCriticalPath) {
    auto fw = fwlib::pigasus_sw_reorder();
    Options opts;
    opts.entry = fw.entry;
    Report r = verify::verify_image(fw.image, opts);
    std::string dot = verify::cfg_dot(fw.image, r, "ids-sw");
    EXPECT_NE(dot.find("cyc]"), std::string::npos);       // per-block cost
    EXPECT_NE(dot.find("loop <="), std::string::npos);    // counted loop bound
    EXPECT_NE(dot.find("service loop"), std::string::npos);
    EXPECT_NE(dot.find("color=red"), std::string::npos);  // critical path
}

TEST(Certifier, CertificateJsonCarriesTheBounds) {
    auto fw = fwlib::forwarder();
    Report r = verify::verify_image(fw.image, Options{});
    std::string json = verify::certificate_json(r, "forwarder");
    EXPECT_NE(json.find("\"name\":\"forwarder\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"wcet\":"), std::string::npos) << json;
    EXPECT_NE(json.find("\"bounded\":true"), std::string::npos) << json;
    EXPECT_NE(json.find("\"text_write_separation\":true"), std::string::npos) << json;
    EXPECT_NE(json.find("\"stack\":"), std::string::npos) << json;
}

// --- obs PC-profiler cross-check --------------------------------------------

TEST(Certifier, WcetCrossCheckUnitVerdicts) {
    obs::CoreProfile p;
    p.name = "rpu0";
    p.halted = true;
    p.instret = 100;

    verify::Certificate cert;
    cert.wcet_bounded = true;
    cert.wcet_instructions = 99;  // deliberately understated
    auto checks = obs::wcet_cross_check({p}, cert);
    ASSERT_EQ(checks.size(), 1u);
    EXPECT_TRUE(checks[0].applicable);
    EXPECT_FALSE(checks[0].ok);

    cert.wcet_instructions = 100;  // exact bound: sound
    EXPECT_TRUE(obs::wcet_cross_check({p}, cert)[0].ok);

    p.halted = false;  // live service loop: not applicable, never fails
    auto live = obs::wcet_cross_check({p}, cert);
    EXPECT_FALSE(live[0].applicable);
    EXPECT_TRUE(live[0].ok);
}

TEST(Certifier, ObsCrossCheckFiresOnUnderstatedBoundEndToEnd) {
    // Run a halting image on real cores, certify it, then hand the profiler
    // a certificate with a deliberately understated bound: the cross-check
    // must fire for every core, and must pass with the genuine certificate.
    Assembler a;
    a.li(t0, 1);
    a.addi(t0, t0, 1);
    a.addi(t0, t0, 1);
    a.ebreak();
    auto image = a.assemble();

    System sys(small_cfg());
    sys.host().load_firmware_all(image);
    sys.host().boot_all();
    sys.run_cycles(200);
    auto profiles = obs::collect_profiles(sys);
    ASSERT_FALSE(profiles.empty());
    for (const auto& p : profiles) {
        ASSERT_TRUE(p.halted);
        ASSERT_GT(p.instret, 0u);
    }

    Report r = verify::verify_image(image, Options{});
    ASSERT_TRUE(r.cert.wcet_bounded);
    for (const auto& c : obs::wcet_cross_check(profiles, r.cert)) {
        EXPECT_TRUE(c.ok) << c.core << ": observed " << c.observed
                          << " > bound " << c.bound;
    }

    verify::Certificate lied = r.cert;
    lied.wcet_instructions = profiles[0].instret - 1;
    for (const auto& c : obs::wcet_cross_check(profiles, lied)) {
        EXPECT_TRUE(c.applicable);
        EXPECT_FALSE(c.ok);
    }
}

// --- host line-rate admission gate ------------------------------------------

std::vector<uint32_t>
unbounded_loop_image() {
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t1, rpu::kRegRxReady, gp);
    a.li(t0, 0);
    a.label("spin");
    a.addi(t0, t0, 1);
    a.bne(t0, t1, "spin");
    a.ebreak();
    return a.assemble();
}

std::vector<uint32_t>
unproven_store_image() {
    // The store address is an arbitrary word: the safety pass cannot prove
    // it out of bounds (sound for rejection), but the certificate cannot
    // prove it misses the text segment either — a self-modifying-code risk
    // the admission gate must reject.
    Assembler a;
    a.lui(gp, 0x2000);
    a.lw(t0, rpu::kRegRxReady, gp);
    a.sw(zero, 0, t0);
    a.ebreak();
    return a.assemble();
}

TEST(WcetGate, OffByDefaultAdmitsUncertifiableFirmware) {
    System sys(small_cfg());
    EXPECT_NO_THROW(sys.host().load_firmware(0, unbounded_loop_image()));
    EXPECT_NO_THROW(sys.host().load_firmware(1, unproven_store_image()));
}

TEST(WcetGate, EnforceRejectsUnboundedComputeLoop) {
    SystemConfig cfg = small_cfg();
    cfg.wcet_check = host::FirmwareCheck::kEnforce;
    System sys(cfg);
    EXPECT_THROW(sys.host().load_firmware(0, unbounded_loop_image()),
                 sim::FatalError);
}

TEST(WcetGate, EnforceRejectsUnprovenStore) {
    SystemConfig cfg = small_cfg();
    cfg.wcet_check = host::FirmwareCheck::kEnforce;
    System sys(cfg);
    EXPECT_THROW(sys.host().load_firmware(0, unproven_store_image()),
                 sim::FatalError);
}

TEST(WcetGate, EnforceAdmitsCertifiedDataplaneFirmware) {
    SystemConfig cfg = small_cfg();
    cfg.wcet_check = host::FirmwareCheck::kEnforce;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    EXPECT_NO_THROW(sys.host().load_firmware_all(fw.image, fw.entry));
}

TEST(WcetGate, WarnModeAdmitsUncertifiableFirmware) {
    SystemConfig cfg = small_cfg();
    cfg.wcet_check = host::FirmwareCheck::kWarn;
    System sys(cfg);
    EXPECT_NO_THROW(sys.host().load_firmware(0, unbounded_loop_image()));
    EXPECT_NO_THROW(sys.host().load_firmware(1, unproven_store_image()));
}

TEST(WcetGate, CycleBudgetIsEnforced) {
    auto fw = fwlib::forwarder();
    {
        SystemConfig cfg = small_cfg();
        cfg.wcet_check = host::FirmwareCheck::kEnforce;
        cfg.wcet_budget_cycles = 1;  // forwarder needs ~38
        System sys(cfg);
        EXPECT_THROW(sys.host().load_firmware(0, fw.image, fw.entry),
                     sim::FatalError);
    }
    {
        SystemConfig cfg = small_cfg();
        cfg.wcet_check = host::FirmwareCheck::kEnforce;
        cfg.wcet_budget_cycles = 1'000'000;
        System sys(cfg);
        EXPECT_NO_THROW(sys.host().load_firmware(0, fw.image, fw.entry));
    }
}

TEST(WcetGate, SystemConfigPolicyIsForwarded) {
    SystemConfig cfg = small_cfg();
    cfg.wcet_check = host::FirmwareCheck::kWarn;
    cfg.wcet_budget_cycles = 12345;
    System sys(cfg);
    EXPECT_EQ(sys.host().wcet_check(), host::FirmwareCheck::kWarn);
    EXPECT_EQ(sys.host().wcet_budget_cycles(), 12345u);
}

}  // namespace
}  // namespace rosebud
