/// Elaboration-time netlist linter and dynamic race detector tests.
///
/// Three layers, mirroring src/lint/'s design:
///  * every static check has a negative test that provably fires on a
///    hand-declared bad netlist (and a positive control showing the same
///    shape passes once fixed);
///  * the two-phase race detector faults on same-cycle cross-component
///    FIFO/register access patterns whose outcome would depend on tick
///    order, and stays silent on the legal patterns;
///  * a full System elaborates with zero violations, and its runs are
///    bit-identical (same state fingerprint) under shuffled tick orders.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/firewall.h"
#include "core/system.h"
#include "firmware/programs.h"
#include "lint/netlist.h"
#include "lint/shard.h"
#include "net/rules.h"
#include "net/tracegen.h"
#include "sim/fifo.h"
#include "sim/kernel.h"
#include "sim/log.h"
#include "sim/random.h"

namespace rosebud {
namespace {

using lint::Check;
using lint::Violation;
using sim::NetRecord;
using sim::PortRecord;

bool
has(const std::vector<Violation>& vs, Check c, const std::string& subject = "") {
    for (const auto& v : vs) {
        if (v.check == c && (subject.empty() || v.subject == subject)) return true;
    }
    return false;
}

std::vector<Violation>
run_checks(const sim::Kernel& k) {
    return lint::check_netlist(k, {});
}

// --- static checks: one firing negative test per check -----------------------

TEST(LintStatic, CleanHandNetlistHasNoViolations) {
    sim::Kernel k;
    k.declare_net({"a.q", NetRecord::kFifo, 64, 8, 0});
    k.declare_port({"w", "a.q", PortRecord::kWrite, 64, 8});
    k.declare_port({"r", "a.q", PortRecord::kRead, 64, 0});
    auto vs = run_checks(k);
    EXPECT_TRUE(vs.empty()) << lint::report(vs);
}

TEST(LintStatic, UnknownNetFires) {
    sim::Kernel k;
    k.declare_port({"w", "ghost", PortRecord::kWrite, 0, 0});
    EXPECT_TRUE(has(run_checks(k), Check::kUnknownNet, "ghost"));
}

TEST(LintStatic, DanglingNetFires) {
    sim::Kernel k;
    k.declare_net({"orphan", NetRecord::kFifo, 64, 4, 0});
    EXPECT_TRUE(has(run_checks(k), Check::kDangling, "orphan"));
}

TEST(LintStatic, NeverWrittenFiresUnlessExternalSource) {
    sim::Kernel k;
    k.declare_net({"ro", NetRecord::kFifo, 64, 4, 0});
    k.declare_port({"r", "ro", PortRecord::kRead, 0, 0});
    EXPECT_TRUE(has(run_checks(k), Check::kNeverWritten, "ro"));

    sim::Kernel k2;
    k2.declare_net({"ro", NetRecord::kFifo, 64, 4, sim::kNetExternalSource});
    k2.declare_port({"r", "ro", PortRecord::kRead, 0, 0});
    EXPECT_FALSE(has(run_checks(k2), Check::kNeverWritten));
}

TEST(LintStatic, NeverReadFiresUnlessExternalSink) {
    sim::Kernel k;
    k.declare_net({"wo", NetRecord::kFifo, 64, 4, 0});
    k.declare_port({"w", "wo", PortRecord::kWrite, 0, 0});
    EXPECT_TRUE(has(run_checks(k), Check::kNeverRead, "wo"));

    sim::Kernel k2;
    k2.declare_net({"wo", NetRecord::kFifo, 64, 4, sim::kNetExternalSink});
    k2.declare_port({"w", "wo", PortRecord::kWrite, 0, 0});
    EXPECT_FALSE(has(run_checks(k2), Check::kNeverRead));
}

TEST(LintStatic, MultiWriterFiresWithoutArbitrationFlag) {
    sim::Kernel k;
    k.declare_net({"q", NetRecord::kFifo, 64, 4, 0});
    k.declare_port({"w1", "q", PortRecord::kWrite, 0, 0});
    k.declare_port({"w2", "q", PortRecord::kWrite, 0, 0});
    k.declare_port({"r", "q", PortRecord::kRead, 0, 0});
    EXPECT_TRUE(has(run_checks(k), Check::kMultiWriter, "q"));

    sim::Kernel k2;
    k2.declare_net({"q", NetRecord::kFifo, 64, 4, sim::kNetMultiWriter});
    k2.declare_port({"w1", "q", PortRecord::kWrite, 0, 0});
    k2.declare_port({"w2", "q", PortRecord::kWrite, 0, 0});
    k2.declare_port({"r", "q", PortRecord::kRead, 0, 0});
    EXPECT_FALSE(has(run_checks(k2), Check::kMultiWriter));
}

TEST(LintStatic, MultiReaderFiresWithoutFanoutFlag) {
    sim::Kernel k;
    k.declare_net({"q", NetRecord::kFifo, 64, 4, 0});
    k.declare_port({"w", "q", PortRecord::kWrite, 0, 0});
    k.declare_port({"r1", "q", PortRecord::kRead, 0, 0});
    k.declare_port({"r2", "q", PortRecord::kRead, 0, 0});
    EXPECT_TRUE(has(run_checks(k), Check::kMultiReader, "q"));

    sim::Kernel k2;
    k2.declare_net({"q", NetRecord::kFifo, 64, 4, sim::kNetMultiReader});
    k2.declare_port({"w", "q", PortRecord::kWrite, 0, 0});
    k2.declare_port({"r1", "q", PortRecord::kRead, 0, 0});
    k2.declare_port({"r2", "q", PortRecord::kRead, 0, 0});
    EXPECT_FALSE(has(run_checks(k2), Check::kMultiReader));
}

TEST(LintStatic, WidthMismatchFires) {
    sim::Kernel k;
    k.declare_net({"q", NetRecord::kFifo, 64, 4, 0});
    k.declare_port({"w", "q", PortRecord::kWrite, 32, 0});  // expects 32b
    k.declare_port({"r", "q", PortRecord::kRead, 64, 0});
    EXPECT_TRUE(has(run_checks(k), Check::kWidthMismatch, "q"));
}

TEST(LintStatic, PaperWidthFiresOnWrongBusWidth) {
    // A 128-bit VOQ inside the stage-1 switch contradicts the paper's
    // 512-bit main-switch datapath.
    sim::Kernel k;
    k.declare_net({"fabric.voq.r0.s0", NetRecord::kFifo, 128, 8, 0});
    k.declare_port({"fabric", "fabric.voq.r0.s0", PortRecord::kWrite, 0, 0});
    k.declare_port({"fabric", "fabric.voq.r0.s0", PortRecord::kRead, 0, 0});
    auto vs = lint::check_netlist(k, lint::paper_width_table());
    EXPECT_TRUE(has(vs, Check::kPaperWidth, "fabric.voq.r0.s0")) << lint::report(vs);
}

TEST(LintStatic, PaperWidthFiresOnWrongLinkDepth) {
    // The per-RPU link is a 1-deep 128-bit registered channel.
    sim::Kernel k;
    k.declare_net({"rpu3.link_in", NetRecord::kLink, 128, 2, 0});
    k.declare_port({"fabric", "rpu3.link_in", PortRecord::kWrite, 0, 0});
    k.declare_port({"rpu3", "rpu3.link_in", PortRecord::kRead, 0, 0});
    auto vs = lint::check_netlist(k, lint::paper_width_table());
    EXPECT_TRUE(has(vs, Check::kPaperWidth, "rpu3.link_in")) << lint::report(vs);
}

TEST(LintStatic, ZeroDepthFifoFires) {
    sim::Kernel k;
    k.declare_net({"q", NetRecord::kFifo, 64, 0, 0});
    k.declare_port({"w", "q", PortRecord::kWrite, 0, 0});
    k.declare_port({"r", "q", PortRecord::kRead, 0, 0});
    EXPECT_TRUE(has(run_checks(k), Check::kZeroDepth, "q"));
}

TEST(LintStatic, CreditDepthMismatchFires) {
    // The producer sized its credit counter for 16 slots; the FIFO has 8.
    sim::Kernel k;
    k.declare_net({"q", NetRecord::kFifo, 64, 8, 0});
    k.declare_port({"w", "q", PortRecord::kWrite, 64, 16});
    k.declare_port({"r", "q", PortRecord::kRead, 64, 0});
    EXPECT_TRUE(has(run_checks(k), Check::kCreditDepth, "q"));
}

TEST(LintStatic, ResourceSumFiresOnMismatch) {
    sim::ResourceFootprint child{100, 200, 1, 0, 0};
    sim::ResourceFootprint total = child * 4;
    EXPECT_TRUE(lint::check_resource_sum("top", total, {{"c", child, 4}}).empty());
    total.luts += 1;
    auto vs = lint::check_resource_sum("top", total, {{"c", child, 4}});
    EXPECT_TRUE(has(vs, Check::kResourceSum, "top")) << lint::report(vs);
}

TEST(LintStatic, ResourceFitFiresOnOverflow) {
    sim::ResourceFootprint device{1000, 1000, 10, 10, 10};
    EXPECT_TRUE(lint::check_resource_fit("d", {999, 0, 0, 0, 0}, device).empty());
    auto vs = lint::check_resource_fit("d", {1001, 0, 0, 0, 0}, device);
    EXPECT_TRUE(has(vs, Check::kResourceFit, "d")) << lint::report(vs);
}

TEST(LintStatic, DotDumpRendersComponentsAndNets) {
    sim::Kernel k;
    k.declare_net({"a.q", NetRecord::kFifo, 64, 8, 0});
    k.declare_port({"w", "a.q", PortRecord::kWrite, 64, 8});
    k.declare_port({"r", "a.q", PortRecord::kRead, 0, 0});
    std::string dot = lint::to_dot(k);
    EXPECT_NE(dot.find("digraph netlist"), std::string::npos);
    EXPECT_NE(dot.find("\"w\" -> \"a.q\""), std::string::npos);
    EXPECT_NE(dot.find("\"a.q\" -> \"r\""), std::string::npos);
    EXPECT_NE(dot.find("64b x8"), std::string::npos);
}

// --- dynamic race detector ----------------------------------------------------

/// Minimal component running an injected lambda as its tick.
struct Poker : sim::Component {
    Poker(sim::Kernel& k, std::string name) : Component(k, std::move(name)) {}
    void tick() override {
        if (fn) fn();
    }
    std::function<void()> fn;
};

TEST(LintStatic, WakeEdgeFiresForUnregisteredReader) {
    // "phantom" reads the FIFO but no component with that name exists, so
    // the kernel's wake map cannot route pushes to it: a sleeping reader
    // declared under the wrong name would never wake.
    sim::Kernel k;
    Poker writer(k, "w");
    sim::Fifo<int> f(k, "q", 4, 64);
    k.declare_port({"w", "q", PortRecord::kWrite, 64, 0});
    k.declare_port({"phantom", "q", PortRecord::kRead, 64, 0});
    auto vs = run_checks(k);
    EXPECT_TRUE(has(vs, Check::kWakeEdge, "q")) << lint::report(vs);
}

TEST(LintStatic, WakeEdgeSilentForRegisteredOrExternalReader) {
    // Registered reader: resolvable, no violation.
    sim::Kernel k;
    Poker writer(k, "w"), reader(k, "r");
    sim::Fifo<int> f(k, "q", 4, 64);
    k.declare_port({"w", "q", PortRecord::kWrite, 64, 0});
    k.declare_port({"r", "q", PortRecord::kRead, 64, 0});
    auto vs = run_checks(k);
    EXPECT_FALSE(has(vs, Check::kWakeEdge)) << lint::report(vs);

    // External sink (e.g. the host draining a queue): exempt, like
    // never-read.
    sim::Kernel k2;
    Poker writer2(k2, "w");
    sim::Fifo<int> f2(k2, "out", 4, 64, sim::kNetExternalSink);
    k2.declare_port({"w", "out", PortRecord::kWrite, 64, 0});
    k2.declare_port({"host", "out", PortRecord::kRead, 64, 0});
    auto vs2 = run_checks(k2);
    EXPECT_FALSE(has(vs2, Check::kWakeEdge)) << lint::report(vs2);
}

TEST(RaceDetector, CrossComponentDoubleStageFaults) {
    sim::Kernel k;
    sim::Fifo<int> f(k, "f", 8, 32);
    Poker a(k, "a"), b(k, "b");
    a.fn = [&] { (void)!f.push(1); };
    b.fn = [&] { (void)!f.push(2); };
    EXPECT_THROW(k.step(), sim::FatalError);
}

TEST(RaceDetector, CrossComponentDoublePopFaults) {
    sim::Kernel k;
    sim::Fifo<int> f(k, "f", 8, 32);
    Poker a(k, "a"), b(k, "b");
    (void)!f.push(1);
    (void)!f.push(2);
    k.step();  // commit host-phase pushes
    a.fn = [&] { (void)f.pop(); };
    b.fn = [&] { (void)f.pop(); };
    EXPECT_THROW(k.step(), sim::FatalError);
}

TEST(RaceDetector, ReadAfterSameCyclePopFaults) {
    sim::Kernel k;
    sim::Fifo<int> f(k, "f", 8, 32);
    Poker a(k, "a"), b(k, "b");
    (void)!f.push(1);
    k.step();
    a.fn = [&] { (void)f.pop(); };
    b.fn = [&] { (void)f.empty(); };  // observes the pop: order-dependent
    EXPECT_THROW(k.step(), sim::FatalError);
}

TEST(RaceDetector, SkidBufferCreditReadRacesWithPop) {
    // can_push on a skid-buffer FIFO observes same-cycle pops, so a
    // producer in another component gets a tick-order-dependent answer.
    sim::Kernel k;
    sim::Fifo<int> f(k, "f", 8, 32);  // default kSkidBuffer
    Poker a(k, "a"), b(k, "b");
    (void)!f.push(1);
    k.step();
    a.fn = [&] { (void)f.pop(); };
    b.fn = [&] { (void)f.can_push(); };
    EXPECT_THROW(k.step(), sim::FatalError);
}

TEST(RaceDetector, RegisteredCreditAllowsCrossComponentProducer) {
    // The same pattern is legal under registered credit: can_push ignores
    // same-cycle pops, so the answer is order-independent.
    sim::Kernel k;
    sim::Fifo<int> f(k, "f", 8, 32, 0, sim::CreditPolicy::kRegistered);
    Poker a(k, "a"), b(k, "b");
    (void)!f.push(1);
    k.step();
    a.fn = [&] { (void)f.pop(); };
    b.fn = [&] {
        if (f.can_push()) (void)!f.push(7);
    };
    EXPECT_NO_THROW(k.step());
    EXPECT_EQ(f.size(), 1u);  // one popped, one pushed
}

TEST(RaceDetector, SameComponentPushAndPopIsLegal) {
    sim::Kernel k;
    sim::Fifo<int> f(k, "f", 8, 32);
    Poker a(k, "a");
    (void)!f.push(1);
    k.step();
    a.fn = [&] {
        (void)f.pop();
        if (f.can_push()) (void)!f.push(2);
    };
    EXPECT_NO_THROW(k.step());
    EXPECT_EQ(f.size(), 1u);
}

TEST(RaceDetector, RegCrossComponentDoubleSetFaults) {
    sim::Kernel k;
    sim::Reg<int> r(k, "r", 0, 32);
    Poker a(k, "a"), b(k, "b");
    a.fn = [&] { r.set(1); };
    b.fn = [&] { r.set(2); };
    EXPECT_THROW(k.step(), sim::FatalError);
}

TEST(RaceDetector, RegGetAfterSameCycleSetFaults) {
    sim::Kernel k;
    sim::Reg<int> r(k, "r", 0, 32);
    Poker a(k, "a"), b(k, "b");
    a.fn = [&] { r.set(1); };
    b.fn = [&] { (void)r.get(); };
    EXPECT_THROW(k.step(), sim::FatalError);
}

TEST(RaceDetector, HostPhaseAccessIsExempt) {
    sim::Kernel k;
    sim::Fifo<int> f(k, "f", 8, 32);
    sim::Reg<int> r(k, "r", 0, 32);
    (void)!f.push(1);
    r.set(5);
    k.step();
    EXPECT_EQ(f.size(), 1u);
    (void)f.pop();  // host-phase pop, no active component
    EXPECT_EQ(r.get(), 5);
    EXPECT_NO_THROW(k.step());
}

TEST(RaceDetector, DisablingRaceCheckSuppressesTheFault) {
    sim::Kernel k;
    k.set_race_check(false);
    sim::Fifo<int> f(k, "f", 8, 32);
    Poker a(k, "a"), b(k, "b");
    a.fn = [&] { (void)!f.push(1); };
    b.fn = [&] { (void)!f.push(2); };
    EXPECT_NO_THROW(k.step());
}

// --- full-System lint + tick-order determinism --------------------------------

TEST(LintSystem, CleanSystemElaboratesZeroViolations) {
    for (unsigned n : {4u, 8u, 16u}) {
        SystemConfig cfg;
        cfg.rpu_count = n;
        System sys(cfg);
        auto vs = sys.lint_check();
        EXPECT_TRUE(vs.empty()) << n << " RPUs:\n" << lint::report(vs);
    }
}

TEST(LintSystem, HashReassemblerConfigIsAlsoClean) {
    SystemConfig cfg;
    cfg.rpu_count = 8;
    cfg.lb_policy = lb::Policy::kHash;
    cfg.hw_reassembler = true;
    System sys(cfg);
    auto vs = sys.lint_check();
    EXPECT_TRUE(vs.empty()) << lint::report(vs);
}

TEST(LintSystem, EnforceModeFaultsBeforeCycleZeroOnBadNetlist) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    // Sabotage the netlist after elaboration: a port on an undeclared net.
    sys.kernel().declare_port({"rogue", "no.such.net", PortRecord::kRead, 0, 0});
    EXPECT_THROW(sys.run_cycles(1), sim::FatalError);
}

TEST(LintSystem, WarnAndOffModesProceed) {
    for (LintMode mode : {LintMode::kWarn, LintMode::kOff}) {
        SystemConfig cfg;
        cfg.rpu_count = 4;
        cfg.lint = mode;
        System sys(cfg);
        sys.kernel().declare_port({"rogue", "no.such.net", PortRecord::kRead, 0, 0});
        EXPECT_NO_THROW(sys.run_cycles(1));
    }
}

/// Run a small workload and return the architectural-state fingerprint.
/// `shuffle_seed` 0 = default registration order.
uint64_t
run_fingerprint(bool firewall, uint64_t shuffle_seed) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    if (shuffle_seed != 0) sys.kernel().shuffle_tick_order(shuffle_seed);

    sim::Rng rng(42);
    net::Blacklist blacklist;
    fwlib::Program fw;
    if (firewall) {
        blacklist = net::Blacklist::synthesize(32, rng);
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::FirewallMatcher>(blacklist); });
        fw = fwlib::firewall();
    } else {
        fw = fwlib::forwarder();
    }
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();

    net::TrafficSpec tspec;
    tspec.seed = 99;
    auto gen = std::make_shared<net::TraceGenerator>(tspec, nullptr,
                                                     firewall ? &blacklist : nullptr);
    dist::TrafficSource::Config src;
    src.port = 0;
    src.load = 0.6;
    src.max_packets = 250;
    sys.add_source(src, [gen] { return gen->next(); });

    sys.run_cycles(30000);
    return sys.state_fingerprint();
}

TEST(TickOrderDeterminism, ForwarderIsBitIdenticalUnderShuffledOrders) {
    const uint64_t base = run_fingerprint(false, 0);
    for (uint64_t seed : {0xdeadbeefull, 42ull, 7777777ull}) {
        EXPECT_EQ(run_fingerprint(false, seed), base) << "seed " << seed;
    }
}

TEST(TickOrderDeterminism, FirewallIsBitIdenticalUnderShuffledOrders) {
    const uint64_t base = run_fingerprint(true, 0);
    for (uint64_t seed : {1ull, 0xabcdefull, 999983ull}) {
        EXPECT_EQ(run_fingerprint(true, seed), base) << "seed " << seed;
    }
}

// --- shard-cut certifier ------------------------------------------------------

/// Paper configuration plus two attached traffic sources: the sources and
/// sinks are the MAC-boundary components every sound plan cuts along.
/// No cycle ever runs, so the inert generators are never called.
std::unique_ptr<System>
paper_system_with_sources() {
    SystemConfig cfg;
    cfg.rpu_count = 16;
    auto sys = std::make_unique<System>(cfg);
    for (unsigned port = 0; port < 2; ++port) {
        dist::TrafficSource::Config src;
        src.port = port;
        sys->add_source(src, [] { return net::PacketPtr(); });
    }
    return sys;
}

TEST(ShardCertifier, LatencyGraphCarriesDeclaredBounds) {
    sim::Kernel k;
    k.declare_net({"q", NetRecord::kFifo, 64, 8, 0, NetRecord::kCreditRegistered});
    k.declare_port({"a", "q", PortRecord::kWrite, 64, 0});
    k.declare_port({"b", "q", PortRecord::kRead, 64, 0});
    k.declare_net({"r", NetRecord::kReg, 32, 1, 0, NetRecord::kCreditNone});
    k.declare_port({"a", "r", PortRecord::kWrite, 32, 0});
    k.declare_port({"b", "r", PortRecord::kRead, 32, 0});

    auto edges = lint::latency_graph(k);
    ASSERT_EQ(edges.size(), 3u);
    unsigned data1 = 0, credit1 = 0, comb = 0;
    for (const auto& e : edges) {
        if (e.kind == lint::LatencyEdge::kData && e.latency == 1) ++data1;
        if (e.kind == lint::LatencyEdge::kCredit && e.latency == 1) ++credit1;
        if (e.latency == 0) ++comb;
    }
    EXPECT_EQ(data1, 1u);    // a -[q]-> b: registered fifo forwards at T+1
    EXPECT_EQ(credit1, 1u);  // b -[q credit]-> a: registered credit return
    EXPECT_EQ(comb, 1u);     // a -[r]-> b: polled register, no bound
}

TEST(ShardCertifier, PaperConfigTwoAndFourWayAreSound) {
    auto sys = paper_system_with_sources();
    for (unsigned shards : {2u, 4u}) {
        lint::ShardPlan plan = sys->shard_plan(shards);
        EXPECT_TRUE(plan.sound) << plan.verdict;
        EXPECT_EQ(plan.shards.size(), shards);
        EXPECT_GE(plan.min_lookahead, 1u);
        EXPECT_FALSE(plan.cuts.empty());
        for (const auto& c : plan.cuts) {
            EXPECT_GE(c.edge.latency, 1u)
                << c.edge.from << " -> " << c.edge.to << " via " << c.edge.net;
        }
        std::string why;
        EXPECT_TRUE(lint::validate_plan(sys->kernel(), plan, &why)) << why;
    }
}

TEST(ShardCertifier, PaperConfigEightWayIsProvenNoSafeCut) {
    auto sys = paper_system_with_sources();
    lint::ShardPlan plan = sys->shard_plan(8);
    EXPECT_FALSE(plan.sound);
    EXPECT_NE(plan.verdict.find("no safe 8-way cut"), std::string::npos)
        << plan.verdict;
    // The proof names what pins the components together.
    EXPECT_NE(plan.verdict.find("zero-latency"), std::string::npos) << plan.verdict;
    std::string why;
    EXPECT_TRUE(lint::validate_plan(sys->kernel(), plan, &why)) << why;
}

TEST(ShardCertifier, UnregisteredCreditLoopAcrossCutIsRejected) {
    // Two components cross-pushing skid-credit FIFOs: each credit
    // observation is combinational in the reverse direction, so the pair
    // forms a directed zero-latency cycle and no 2-way cut between them
    // can be sound.
    sim::Kernel k;
    k.declare_net({"a2b", NetRecord::kFifo, 64, 8, 0, NetRecord::kCreditSkid});
    k.declare_net({"b2a", NetRecord::kFifo, 64, 8, 0, NetRecord::kCreditSkid});
    k.declare_port({"a", "a2b", PortRecord::kWrite, 64, 0});
    k.declare_port({"b", "a2b", PortRecord::kRead, 64, 0});
    k.declare_port({"b", "b2a", PortRecord::kWrite, 64, 0});
    k.declare_port({"a", "b2a", PortRecord::kRead, 64, 0});

    lint::ShardPlan plan = lint::certify_partition(k, 2);
    EXPECT_FALSE(plan.sound);
    ASSERT_FALSE(plan.zero_cycles.empty());
    // The report names the offending path through the credit edges.
    EXPECT_NE(plan.verdict.find("zero-latency"), std::string::npos) << plan.verdict;
    const std::string& path = plan.zero_cycles.front().path;
    EXPECT_NE(path.find("credit"), std::string::npos) << path;
    EXPECT_TRUE(path.find("a2b") != std::string::npos ||
                path.find("b2a") != std::string::npos)
        << path;
    std::string why;
    EXPECT_TRUE(lint::validate_plan(k, plan, &why)) << why;

    // Positive control: registering both credit returns breaks the cycle
    // and the same topology certifies with lookahead 1 on every cut edge.
    sim::Kernel k2;
    k2.declare_net({"a2b", NetRecord::kFifo, 64, 8, 0, NetRecord::kCreditRegistered});
    k2.declare_net({"b2a", NetRecord::kFifo, 64, 8, 0, NetRecord::kCreditRegistered});
    k2.declare_port({"a", "a2b", PortRecord::kWrite, 64, 0});
    k2.declare_port({"b", "a2b", PortRecord::kRead, 64, 0});
    k2.declare_port({"b", "b2a", PortRecord::kWrite, 64, 0});
    k2.declare_port({"a", "b2a", PortRecord::kRead, 64, 0});
    lint::ShardPlan fixed = lint::certify_partition(k2, 2);
    EXPECT_TRUE(fixed.sound) << fixed.verdict;
    EXPECT_EQ(fixed.cuts.size(), 4u);  // 2 data + 2 registered-credit edges
    EXPECT_EQ(fixed.min_lookahead, 1u);
}

TEST(ShardCertifier, PlanJsonAndReportRenderVerdicts) {
    auto sys = paper_system_with_sources();
    lint::ShardPlan plan = sys->shard_plan(2);
    std::string json = lint::plan_json(plan);
    EXPECT_NE(json.find("\"sound\":true"), std::string::npos);
    EXPECT_NE(json.find("\"min_lookahead\":1"), std::string::npos);
    // No cut may carry zero lookahead (blockers legitimately do — they are
    // the zero-latency edges the plan routes *around*).
    size_t cuts_begin = json.find("\"cuts\":[");
    size_t cuts_end = json.find("],\"blockers\"");
    ASSERT_NE(cuts_begin, std::string::npos);
    ASSERT_NE(cuts_end, std::string::npos);
    std::string cuts = json.substr(cuts_begin, cuts_end - cuts_begin);
    EXPECT_EQ(cuts.find("\"lookahead\":0"), std::string::npos);
    std::string report = lint::plan_report(plan);
    EXPECT_NE(report.find("sound"), std::string::npos);
    EXPECT_NE(report.find("min lookahead 1"), std::string::npos);
}

TEST(ShardCertifier, SystemConfigGateWarnsOrFaultsOnUnsoundPlan) {
    // certify_shards with an impossible count: kEnforce faults before
    // cycle 0, kWarn proceeds (plan export is advisory there).
    SystemConfig cfg;
    cfg.rpu_count = 4;
    cfg.certify_shards = 64;  // far more shards than atoms
    cfg.lint = LintMode::kEnforce;
    System sys(cfg);
    EXPECT_THROW(sys.run_cycles(1), sim::FatalError);

    SystemConfig cfg2;
    cfg2.rpu_count = 4;
    cfg2.certify_shards = 64;
    cfg2.lint = LintMode::kWarn;
    System sys2(cfg2);
    EXPECT_NO_THROW(sys2.run_cycles(1));
}

// --- DOT escaping -------------------------------------------------------------

/// Minimal DOT well-formedness check (the container has no `dot` binary):
/// braces and brackets must balance outside quoted strings, every quoted
/// string must terminate on the same line, and the only escapes inside
/// quotes are \" \\ \n \l \r.
bool
dot_well_formed(const std::string& dot, std::string* why) {
    int braces = 0, brackets = 0;
    bool in_quote = false;
    for (size_t i = 0; i < dot.size(); ++i) {
        char c = dot[i];
        if (in_quote) {
            if (c == '\\') {
                char n = i + 1 < dot.size() ? dot[i + 1] : 0;
                if (n != '"' && n != '\\' && n != 'n' && n != 'l' && n != 'r') {
                    *why = "bad escape at offset " + std::to_string(i);
                    return false;
                }
                ++i;
            } else if (c == '"') {
                in_quote = false;
            } else if (c == '\n') {
                *why = "unterminated quote at offset " + std::to_string(i);
                return false;
            }
        } else {
            if (c == '"') in_quote = true;
            if (c == '{') ++braces;
            if (c == '}') --braces;
            if (c == '[') ++brackets;
            if (c == ']') --brackets;
            if (braces < 0 || brackets < 0) {
                *why = "unbalanced close at offset " + std::to_string(i);
                return false;
            }
        }
    }
    if (in_quote) { *why = "unterminated quote at EOF"; return false; }
    if (braces != 0) { *why = "unbalanced braces"; return false; }
    if (brackets != 0) { *why = "unbalanced brackets"; return false; }
    return true;
}

TEST(DotEscape, EscapesQuotesBackslashesAndNewlines) {
    EXPECT_EQ(lint::dot_escape("plain"), "plain");
    EXPECT_EQ(lint::dot_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(lint::dot_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(lint::dot_escape("a\nb"), "a\\nb");
    EXPECT_EQ(lint::dot_escape("a\rb"), "ab");
}

TEST(DotEscape, HostileNamesRoundTripThroughBothDumps) {
    sim::Kernel k;
    // Names with every character class the DOT grammar cares about.
    const std::string net = "evil\"net[0]{x}";
    const std::string writer = "w\\riter";
    const std::string reader = "re\"ad]er";
    k.declare_net({net, NetRecord::kFifo, 64, 8, 0, NetRecord::kCreditRegistered});
    k.declare_port({writer, net, PortRecord::kWrite, 64, 0});
    k.declare_port({reader, net, PortRecord::kRead, 64, 0});

    std::string why;
    std::string netlist_dot = lint::to_dot(k);
    EXPECT_TRUE(dot_well_formed(netlist_dot, &why)) << why << "\n" << netlist_dot;

    lint::ShardPlan plan = lint::certify_partition(k, 2);
    std::string shard_dot = lint::plan_dot(k, plan);
    EXPECT_TRUE(dot_well_formed(shard_dot, &why)) << why << "\n" << shard_dot;

    // And the real netlists stay well-formed too.
    auto sys = paper_system_with_sources();
    EXPECT_TRUE(dot_well_formed(lint::to_dot(sys->kernel()), &why)) << why;
    EXPECT_TRUE(
        dot_well_formed(lint::plan_dot(sys->kernel(), sys->shard_plan(2)), &why))
        << why;
}

TEST(LintJson, SummarizesNetlistAndViolations) {
    auto sys = paper_system_with_sources();
    auto violations = sys->lint_check();
    std::string json = lint::lint_json(sys->kernel(), violations);
    EXPECT_NE(json.find("\"netlist\":"), std::string::npos);
    EXPECT_NE(json.find("\"nets\":"), std::string::npos);
    EXPECT_NE(json.find("\"violation_count\":0"), std::string::npos);

    sim::Kernel bad;
    bad.declare_net({"orphan", NetRecord::kFifo, 64, 4, 0});
    auto bad_vs = lint::check_netlist(bad, {});
    ASSERT_FALSE(bad_vs.empty());
    std::string bad_json = lint::lint_json(bad, bad_vs);
    EXPECT_NE(bad_json.find("\"violations\":[{"), std::string::npos);
    EXPECT_NE(bad_json.find("orphan"), std::string::npos);
}

TEST(TickOrderDeterminism, ShuffleActuallyPermutesTheOrder) {
    SystemConfig cfg;
    cfg.rpu_count = 8;
    System sys(cfg);
    auto before = sys.kernel().tick_order();
    sys.kernel().shuffle_tick_order(0xdeadbeef);
    auto after = sys.kernel().tick_order();
    ASSERT_EQ(before.size(), after.size());
    EXPECT_NE(before, after);  // astronomically unlikely to be a fixpoint
    auto sb = before, sa = after;
    std::sort(sb.begin(), sb.end());
    std::sort(sa.begin(), sa.end());
    EXPECT_EQ(sb, sa);  // a permutation, not a different set
}

}  // namespace
}  // namespace rosebud
