/// Tests for the pcap interchange format and the per-packet lifecycle
/// tracer.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/system.h"
#include "core/tracer.h"
#include "accel/firewall.h"
#include "firmware/programs.h"
#include "net/headers.h"
#include "net/pcap.h"
#include "net/tracegen.h"

namespace rosebud {
namespace {

TEST(Pcap, SerializeParseRoundTrip) {
    std::vector<net::PcapRecord> records;
    for (int i = 0; i < 5; ++i) {
        net::PcapRecord rec;
        rec.ts_ns = 1e9 + i * 1000.0;
        rec.data.assign(size_t(64 + i), uint8_t(i));
        records.push_back(rec);
    }
    auto parsed = net::pcap_parse(net::pcap_serialize(records));
    ASSERT_EQ(parsed.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(parsed[i].data, records[i].data);
        EXPECT_DOUBLE_EQ(parsed[i].ts_ns, records[i].ts_ns);
    }
}

TEST(Pcap, HeaderIsWellFormed) {
    auto bytes = net::pcap_serialize({});
    ASSERT_EQ(bytes.size(), 24u);  // global header only
    uint32_t magic;
    std::memcpy(&magic, bytes.data(), 4);
    EXPECT_EQ(magic, 0xa1b23c4du);  // nanosecond pcap
    uint32_t linktype;
    std::memcpy(&linktype, bytes.data() + 20, 4);
    EXPECT_EQ(linktype, 1u);  // Ethernet
}

TEST(Pcap, RejectsGarbage) {
    std::vector<uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_THROW(net::pcap_parse(garbage), sim::FatalError);
    std::vector<uint8_t> truncated = net::pcap_serialize({{0, {1, 2, 3}}});
    truncated.pop_back();
    EXPECT_THROW(net::pcap_parse(truncated), sim::FatalError);
}

TEST(Pcap, MicrosecondVariantParses) {
    auto bytes = net::pcap_serialize({{2.5e9, {0xaa, 0xbb}}});
    // Patch the magic to the classic microsecond format and scale the
    // fractional field by hand (ns field / 1000).
    bytes[0] = 0xd4;
    bytes[1] = 0xc3;
    bytes[2] = 0xb2;
    bytes[3] = 0xa1;
    uint32_t frac;
    std::memcpy(&frac, bytes.data() + 24 + 4, 4);
    frac /= 1000;
    std::memcpy(bytes.data() + 24 + 4, &frac, 4);
    auto parsed = net::pcap_parse(bytes);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_DOUBLE_EQ(parsed[0].ts_ns, 2.5e9);
}

TEST(Pcap, FileRoundTripThroughGenerator) {
    net::TrafficSpec spec;
    spec.packet_size = 256;
    spec.seed = 12;
    net::TraceGenerator gen(spec);
    auto packets = gen.make(20);
    for (size_t i = 0; i < packets.size(); ++i) packets[i]->tx_ns = double(i) * 100;

    std::string path = testing::TempDir() + "/rosebud_test.pcap";
    net::pcap_write_file(path, packets);
    auto loaded = net::pcap_read_file(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.size(), packets.size());
    for (size_t i = 0; i < packets.size(); ++i) {
        EXPECT_EQ(loaded[i]->data, packets[i]->data);
        EXPECT_DOUBLE_EQ(loaded[i]->tx_ns, packets[i]->tx_ns);
    }
    // Replayed packets still parse as proper frames.
    for (const auto& p : loaded) EXPECT_TRUE(net::parse_packet(*p).has_value());
}

TEST(Tracer, RecordsFullPacketLifecycle) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(300);

    PacketTracer tracer;
    tracer.attach(sys);

    net::PacketBuilder b;
    b.ipv4(1, 2).udp(3, 4).frame_size(200);
    auto p = b.build();
    p->id = 42;
    ASSERT_TRUE(sys.fabric().mac_rx(0, p));
    sys.run_cycles(2000);

    const auto& tl = tracer.timeline(42);
    ASSERT_GE(tl.size(), 6u);
    std::vector<std::string> stages;
    for (const auto& e : tl) stages.push_back(e.stage);
    // The canonical path, in order.
    auto idx = [&](const char* s) {
        return std::find(stages.begin(), stages.end(), s) - stages.begin();
    };
    EXPECT_LT(idx("mac_rx"), idx("lb_assign"));
    EXPECT_LT(idx("lb_assign"), idx("rpu_link_dispatch"));
    EXPECT_LT(idx("rpu_link_dispatch"), idx("rpu_rx_complete"));
    EXPECT_LT(idx("rpu_rx_complete"), idx("fw_send"));
    EXPECT_LT(idx("fw_send"), idx("mac_tx"));
    // Cycles are monotone.
    for (size_t i = 1; i < tl.size(); ++i) EXPECT_GE(tl[i].cycle, tl[i - 1].cycle);
    EXPECT_GT(tracer.transit_cycles(42), 100u);  // ~0.8 us RTT

    std::string text = tracer.format_timeline(42);
    EXPECT_NE(text.find("mac_tx"), std::string::npos);
    EXPECT_NE(text.find("packet 42"), std::string::npos);
}

TEST(Tracer, DropsAreVisible) {
    // Firewall drop shows up as fw_drop, and the packet never hits mac_tx.
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    sim::Rng rng(5);
    auto bl = net::Blacklist::parse("66.0.0.1\n");
    sys.attach_accelerators([&] { return std::make_unique<accel::FirewallMatcher>(bl); });
    auto fw = fwlib::firewall();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(300);

    PacketTracer tracer;
    tracer.attach(sys);
    net::PacketBuilder b;
    b.ipv4(net::parse_ipv4_addr("66.0.0.1"), 2).tcp(1, 2).frame_size(128);
    auto p = b.build();
    p->id = 7;
    ASSERT_TRUE(sys.fabric().mac_rx(0, p));
    sys.run_cycles(2000);

    std::vector<std::string> stages;
    for (const auto& e : tracer.timeline(7)) stages.push_back(e.stage);
    EXPECT_NE(std::find(stages.begin(), stages.end(), "fw_drop"), stages.end());
    EXPECT_EQ(std::find(stages.begin(), stages.end(), "mac_tx"), stages.end());
}

TEST(Tracer, UnknownPacketHasEmptyTimeline) {
    PacketTracer tracer;
    EXPECT_TRUE(tracer.timeline(999).empty());
    EXPECT_EQ(tracer.transit_cycles(999), 0u);
    EXPECT_NE(tracer.format_timeline(999).find("no events"), std::string::npos);
}

}  // namespace
}  // namespace rosebud
