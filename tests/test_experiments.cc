/// Experiment-harness integration tests: assert the headline shapes of
/// every paper table/figure on reduced windows (the bench binaries run
/// the full sweeps).

#include <gtest/gtest.h>

#include "core/experiments.h"

namespace rosebud::exp {
namespace {

TEST(Fig7, SixteenRpu64BytesIs88Percent) {
    ForwardingParams p;
    p.rpu_count = 16;
    p.size = 64;
    p.ports = 2;
    p.warmup = 15000;
    p.window = 40000;
    auto r = run_forwarding(p);
    // Paper: 88% of max rate at 200 Gbps = 250 MPPS.
    EXPECT_NEAR(r.achieved_mpps, 250.0, 5.0);
    EXPECT_NEAR(r.achieved_gbps / r.line_gbps, 0.88, 0.02);
}

TEST(Fig7, SixteenRpuLineRateFrom128Bytes) {
    for (uint32_t size : {128u, 512u, 1500u}) {
        ForwardingParams p;
        p.rpu_count = 16;
        p.size = size;
        p.warmup = 15000;
        p.window = 40000;
        auto r = run_forwarding(p);
        EXPECT_GT(r.achieved_gbps / r.line_gbps, 0.99) << size;
    }
}

TEST(Fig7, EightRpuCappedAt125Mpps) {
    ForwardingParams p;
    p.rpu_count = 8;
    p.size = 64;
    p.warmup = 15000;
    p.window = 40000;
    auto r = run_forwarding(p);
    // 8 RPUs x 250 MHz / 16-cycle loop = 125 MPPS.
    EXPECT_NEAR(r.achieved_mpps, 125.0, 3.0);
}

TEST(Fig7, EightRpuReachesLineRateByOneKilobyte) {
    ForwardingParams p;
    p.rpu_count = 8;
    p.warmup = 15000;
    p.window = 40000;
    p.size = 512;
    auto mid = run_forwarding(p);
    p.size = 1024;
    auto large = run_forwarding(p);
    EXPECT_GT(large.achieved_gbps / large.line_gbps, 0.99);
    EXPECT_GT(mid.achieved_gbps / mid.line_gbps, 0.9);  // close but not full
}

TEST(Fig7, SinglePortMatchesHundredGigResults) {
    for (unsigned rpus : {16u, 8u}) {
        ForwardingParams p;
        p.rpu_count = rpus;
        p.size = 64;
        p.ports = 1;
        p.warmup = 15000;
        p.window = 40000;
        auto r = run_forwarding(p);
        // Paper: 88% of line at 100 Gbps (125 MPPS) for both layouts.
        EXPECT_NEAR(r.achieved_mpps, 125.0, 3.0) << rpus;
    }
}

TEST(Fig7c, LatencyFollowsEquationOne) {
    for (uint32_t size : {64u, 512u, 4096u}) {
        LatencyParams p;
        p.size = size;
        p.load = 0.05;
        p.warmup = 15000;
        p.window = 60000;
        auto r = run_latency(p);
        EXPECT_NEAR(r.mean_us, r.eq1_us, r.eq1_us * 0.05) << size;
    }
}

TEST(Fig7c, MaxLoadAddsFifoDelayOnlyAt64Bytes) {
    LatencyParams small;
    small.size = 64;
    small.load = 1.0;
    // The 256 KB receive FIFO fills at ~4.3 B/cycle of excess offered
    // load; give it time to reach steady state.
    small.warmup = 110000;
    small.window = 40000;
    auto r64 = run_latency(small);
    // Paper: the full receive FIFO adds ~32.8 us in steady state.
    EXPECT_NEAR(r64.mean_us, eq1_latency_us(64) + 32.8, 3.0);

    LatencyParams big;
    big.size = 1024;
    big.load = 1.0;
    big.warmup = 40000;
    big.window = 40000;
    auto r1k = run_latency(big);
    EXPECT_NEAR(r1k.mean_us, eq1_latency_us(1024), 0.3);  // marginal only
}

TEST(Sec63, LoopbackSixtyPercentAtSmallSizes) {
    auto r64 = run_loopback(16, 64, 15000, 40000);
    EXPECT_NEAR(r64.fraction_of_line, 0.58, 0.05);  // paper: 60%
    auto r65 = run_loopback(16, 65, 15000, 40000);
    EXPECT_NEAR(r65.fraction_of_line, 0.59, 0.05);  // paper: 61%
    auto r256 = run_loopback(16, 256, 15000, 40000);
    EXPECT_GT(r256.fraction_of_line, 0.97);  // line rate for big packets
}

TEST(Sec63, BroadcastLatencyBands) {
    auto r = run_broadcast(16, 80000);
    // Paper: 72-92 ns sparse; 1596-1680 ns saturated (16 RPUs).
    EXPECT_GE(r.sparse_min_ns, 55.0);
    EXPECT_LE(r.sparse_max_ns, 105.0);
    EXPECT_GE(r.saturated_min_ns, 1450.0);
    EXPECT_LE(r.saturated_max_ns, 1750.0);
    EXPECT_GT(r.messages, 100u);
}

TEST(Sec63, EightRpuBroadcastDrainsTwiceAsFast) {
    auto r = run_broadcast(8, 80000);
    // 18-deep FIFO drains every 8 cycles -> roughly half the 16-RPU wait.
    EXPECT_GT(r.saturated_min_ns, 650.0);
    EXPECT_LT(r.saturated_max_ns, 1000.0);
}

TEST(Fig8, HwReorderBeatsSwReorderBeatsSnort) {
    IpsParams p;
    p.size = 800;
    p.warmup = 20000;
    p.window = 50000;
    p.mode = IpsMode::kHwReorder;
    auto hw = run_ips(p);
    p.mode = IpsMode::kSwReorder;
    auto sw = run_ips(p);
    // Paper Figure 8a at 800 B: HW ~194 Gbps (line), SW ~100 Gbps,
    // Snort ~30 Gbps (5 MPPS x 800 B).
    EXPECT_GT(hw.achieved_gbps, 165.0);
    EXPECT_NEAR(sw.achieved_gbps, 100.0, 20.0);
    EXPECT_GT(hw.achieved_gbps, sw.achieved_gbps);
    EXPECT_GT(sw.achieved_gbps, 35.0);  // both beat Snort's ~30 Gbps
}

TEST(Fig8, HwReorderHitsLineRateAtLargePackets) {
    IpsParams p;
    p.size = 1024;
    p.warmup = 20000;
    p.window = 50000;
    auto r = run_ips(p);
    EXPECT_GT(r.achieved_gbps / r.line_gbps, 0.98);
}

TEST(Fig8, MatcherFindsAllAttacksWhenNotOverloaded) {
    IpsParams p;
    p.size = 1024;
    p.warmup = 20000;
    p.window = 50000;
    p.mode = IpsMode::kHwReorder;
    auto r = run_ips(p);
    // At line rate every attack in the window reaches the host (small
    // window-edge tolerance).
    EXPECT_NEAR(double(r.matched_to_host), double(r.expected_attacks),
                0.15 * double(r.expected_attacks) + 4);
}

TEST(Fig9, CyclesPerPacketBands) {
    // Paper simulation: 61 safe-TCP / 59 safe-UDP / 82 attack cycles for
    // HW reorder; ~138 at 64 B for SW reorder. Our firmware lands close
    // (documented in EXPERIMENTS.md); assert the bands and orderings.
    SingleRpuParams p;
    p.mode = IpsMode::kHwReorder;
    double tcp = run_single_rpu_cycles_per_packet(p);
    p.udp = true;
    double udp = run_single_rpu_cycles_per_packet(p);
    p.udp = false;
    p.attack = true;
    double attack = run_single_rpu_cycles_per_packet(p);
    EXPECT_NEAR(tcp, 82.0, 10.0);
    EXPECT_NEAR(udp, 83.0, 10.0);
    EXPECT_GT(attack, tcp + 10.0);  // match handling costs extra

    SingleRpuParams s;
    s.mode = IpsMode::kSwReorder;
    s.size = 64;
    double sw64 = run_single_rpu_cycles_per_packet(s);
    EXPECT_NEAR(sw64, 133.0, 15.0);  // paper: 138.4
    EXPECT_GT(sw64, tcp + 30.0);     // flow table adds real work
}

TEST(Sec72, FirewallTwoHundredGigAt256Bytes) {
    FirewallParams p;
    p.size = 256;
    p.warmup = 20000;
    p.window = 50000;
    auto r = run_firewall(p);
    EXPECT_GT(r.achieved_gbps / r.line_gbps, 0.99);
    // At exactly line rate a few window-edge attacks are still in flight.
    EXPECT_NEAR(double(r.blocked), double(r.expected_blocked),
                0.1 * double(r.expected_blocked) + 4);
}

TEST(Sec72, FirewallBlocksExactlyTheBlacklistedTraffic) {
    FirewallParams p;
    p.size = 1024;
    p.attack_fraction = 0.05;
    p.warmup = 20000;
    p.window = 50000;
    auto r = run_firewall(p);
    EXPECT_EQ(r.blocked, r.expected_blocked);
    EXPECT_GT(r.forwarded, 0u);
}

TEST(Eq1, ClosedForm) {
    EXPECT_NEAR(eq1_latency_us(64), 0.807, 0.001);
    EXPECT_NEAR(eq1_latency_us(1500), 1.755, 0.001);
}

TEST(Fig7Sizes, CoversPaperSweep) {
    auto sizes = figure7_sizes();
    EXPECT_EQ(sizes.front(), 64u);
    EXPECT_NE(std::find(sizes.begin(), sizes.end(), 65u), sizes.end());
    EXPECT_NE(std::find(sizes.begin(), sizes.end(), 1500u), sizes.end());
    EXPECT_NE(std::find(sizes.begin(), sizes.end(), 9000u), sizes.end());
    EXPECT_NE(std::find(sizes.begin(), sizes.end(), 8192u), sizes.end());
}

}  // namespace
}  // namespace rosebud::exp
