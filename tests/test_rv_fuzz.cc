/// Golden-model fuzzing of the RV32IM interpreter, per instruction class:
/// random programs from one class at a time run in lockstep on rv::Core
/// and on the independent spec transcription in src/fuzz/ref_model.cc
/// (the promoted form of the naive RefModel that used to live here).
/// Architectural state must match after every retired instruction, and
/// data memory must match at the end. Classing the streams makes a
/// divergence immediately attributable — "shifts disagree" instead of
/// "program 137 disagrees" — and each class leans on the operand edge
/// values (0, ±1, INT_MIN, INT_MAX) seeded into the register file.
///
/// The whole-ISA torture runs live in src/fuzz/fw_fuzz.cc behind
/// `rosebud_cli fuzz`; these tests are the fast, always-on subset.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "fuzz/ref_model.h"
#include "rv/core.h"
#include "rv/isa.h"
#include "sim/random.h"

namespace rosebud {
namespace {

using rv::Reg;

constexpr uint32_t kRamBase = 0x400;
constexpr uint32_t kRamWords = 256;
constexpr uint32_t kEbreak = 0x00100073;

/// One memory image shared in layout (code at 0, 1 KB word RAM at 0x400)
/// but instantiated separately per side so the two executors cannot
/// accidentally communicate through it.
struct Ram {
    const std::vector<uint32_t>* code = nullptr;
    std::array<uint32_t, kRamWords> words{};

    bool in_ram(uint32_t addr, uint32_t size) const {
        // Like the real buses: out-of-window and misaligned accesses fault.
        return addr >= kRamBase && addr + size <= kRamBase + 4 * kRamWords &&
               (addr & (size - 1)) == 0;
    }
    uint32_t load(uint32_t addr, uint32_t size) const {
        uint32_t word = words[(addr - kRamBase) / 4];
        uint32_t shift = (addr & 3) * 8;
        uint32_t mask = size == 4 ? ~0u : (1u << (size * 8)) - 1;
        return (word >> shift) & mask;
    }
    void store(uint32_t addr, uint32_t size, uint32_t value) {
        uint32_t& word = words[(addr - kRamBase) / 4];
        uint32_t shift = (addr & 3) * 8;
        uint32_t mask = size == 4 ? ~0u : (1u << (size * 8)) - 1;
        word = (word & ~(mask << shift)) | ((value & mask) << shift);
    }
    uint32_t fetch(uint32_t addr) const {
        return addr / 4 < code->size() ? (*code)[addr / 4] : kEbreak;
    }
};

class DutBus : public rv::Bus {
 public:
    Ram ram;

    Access load(uint32_t addr, uint32_t size) override {
        Access a;
        if (!ram.in_ram(addr, size)) {
            a.fault = true;
            return a;
        }
        a.value = ram.load(addr, size);
        a.cycles = 2;
        return a;
    }
    Access store(uint32_t addr, uint32_t size, uint32_t value) override {
        Access a;
        if (!ram.in_ram(addr, size)) {
            a.fault = true;
            return a;
        }
        ram.store(addr, size, value);
        a.cycles = 1;
        return a;
    }
    uint32_t fetch(uint32_t addr) override { return ram.fetch(addr); }
};

class RefRam : public fuzz::RefMem {
 public:
    Ram ram;

    Access load(uint32_t addr, uint32_t size) override {
        Access a;
        if (!ram.in_ram(addr, size)) {
            a.fault = true;
            return a;
        }
        a.value = ram.load(addr, size);
        return a;
    }
    Access store(uint32_t addr, uint32_t size, uint32_t value) override {
        Access a;
        if (!ram.in_ram(addr, size)) {
            a.fault = true;
            return a;
        }
        ram.store(addr, size, value);
        return a;
    }
    uint32_t fetch(uint32_t addr) override { return ram.fetch(addr); }
};

/// Materialize an arbitrary 32-bit constant into rd (lui+addi).
void
emit_li(std::vector<uint32_t>& code, Reg rd, uint32_t v) {
    uint32_t hi = (v + 0x800) & 0xfffff000;
    code.push_back(rv::encode_u(int32_t(hi >> 12), rd, rv::kOpLui));
    code.push_back(rv::encode_i(int32_t(v - hi), rd, 0, rd, rv::kOpImm));
}

/// Seed x1..x15 with edge-heavy values; pin x5 to the RAM base.
void
emit_reg_seed(std::vector<uint32_t>& code, sim::Rng& rng) {
    static constexpr uint32_t kEdges[] = {
        0, 1, 2, 0xffffffffu, 0x80000000u, 0x7fffffffu, 0x0000ffffu,
        0xffff0000u, 31, 32, 0xfffff800u, 0x7ffu,
    };
    for (unsigned r = 1; r < 16; ++r) {
        uint32_t v = rng.chance(0.7)
                         ? kEdges[rng.below(sizeof(kEdges) / sizeof(kEdges[0]))]
                         : uint32_t(rng.next());
        emit_li(code, Reg(r), v);
    }
    emit_li(code, rv::x5, kRamBase);
}

enum class InsnClass { kAluImm, kAluReg, kShifts, kBranches, kLoadStore, kMulDiv, kJumps, kMixed };

struct ClassParam {
    const char* name;
    InsnClass cls;
};

void
PrintTo(const ClassParam& p, std::ostream* os) { *os << p.name; }

/// One random instruction from the class. `pc_words`/`total_words` bound
/// forward branch targets inside the program.
uint32_t
gen_insn(InsnClass cls, sim::Rng& rng, uint32_t pc_words, uint32_t total_words) {
    auto reg = [&] { return Reg(rng.below(16)); };  // x0..x15
    auto src = [&] { return Reg(rng.range(1, 15)); };
    if (cls == InsnClass::kMixed) {
        static constexpr InsnClass kAll[] = {
            InsnClass::kAluImm,    InsnClass::kAluReg, InsnClass::kShifts,
            InsnClass::kBranches,  InsnClass::kLoadStore, InsnClass::kMulDiv,
            InsnClass::kJumps,
        };
        cls = kAll[rng.below(sizeof(kAll) / sizeof(kAll[0]))];
    }
    switch (cls) {
    case InsnClass::kAluImm: {
        static constexpr uint32_t kF3[] = {0, 2, 3, 4, 6, 7};  // no shifts here
        return rv::encode_i(int32_t(rng.range(0, 4095)) - 2048, src(),
                            kF3[rng.below(6)], reg(), rv::kOpImm);
    }
    case InsnClass::kAluReg: {
        static constexpr uint32_t kF3[] = {0, 2, 3, 4, 6, 7};
        uint32_t f3 = kF3[rng.below(6)];
        uint32_t f7 = f3 == 0 && rng.chance(0.4) ? 0x20 : 0x00;  // sub
        return rv::encode_r(f7, src(), src(), f3, reg(), rv::kOpReg);
    }
    case InsnClass::kShifts:
        if (rng.chance(0.5)) {
            uint32_t shamt = uint32_t(rng.below(32));
            uint32_t f3 = rng.chance(0.4) ? 1 : 5;  // slli vs srli/srai
            bool arith = f3 == 5 && rng.chance(0.5);
            return rv::encode_i(int32_t(shamt | (arith ? 0x400 : 0)), src(), f3,
                                reg(), rv::kOpImm);
        } else {
            uint32_t f3 = rng.chance(0.4) ? 1 : 5;
            uint32_t f7 = f3 == 5 && rng.chance(0.5) ? 0x20 : 0x00;
            return rv::encode_r(f7, src(), src(), f3, reg(), rv::kOpReg);
        }
    case InsnClass::kBranches: {
        static constexpr uint32_t kF3[] = {0, 1, 4, 5, 6, 7};
        uint32_t max_fwd = total_words > pc_words + 2 ? total_words - pc_words - 1 : 1;
        int32_t off = int32_t(rng.range(1, std::min<uint64_t>(max_fwd, 8))) * 4;
        return rv::encode_b(off, src(), src(), kF3[rng.below(6)]);
    }
    case InsnClass::kLoadStore: {
        // Natural alignment per width; offsets stay inside the RAM window.
        static constexpr uint32_t kSizes[] = {1, 2, 4};
        uint32_t size = kSizes[rng.below(3)];
        int32_t off = int32_t(rng.below(4 * kRamWords / size)) * int32_t(size);
        if (rng.chance(0.5)) {
            uint32_t f3 = size == 1 ? (rng.chance(0.5) ? 0 : 4)    // lb/lbu
                          : size == 2 ? (rng.chance(0.5) ? 1 : 5)  // lh/lhu
                                      : 2;                         // lw
            return rv::encode_i(off, rv::x5, f3, reg(), rv::kOpLoad);
        }
        uint32_t f3 = size == 1 ? 0 : size == 2 ? 1 : 2;  // sb/sh/sw
        return rv::encode_s(off, src(), rv::x5, f3);
    }
    case InsnClass::kMulDiv:
        // All eight M-extension ops; the seeded edges put 0, -1 and
        // INT_MIN into the operand pool, covering x/0 and INT_MIN/-1.
        return rv::encode_r(0x01, src(), src(), uint32_t(rng.below(8)), reg(),
                            rv::kOpReg);
    case InsnClass::kJumps: {
        uint32_t max_fwd = total_words > pc_words + 2 ? total_words - pc_words - 1 : 1;
        int32_t off = int32_t(rng.range(1, std::min<uint64_t>(max_fwd, 8))) * 4;
        switch (rng.below(3)) {
        case 0: return rv::encode_j(off, reg());
        case 1: return rv::encode_u(int32_t(rng.below(1 << 20)), reg(), rv::kOpLui);
        default: return rv::encode_u(int32_t(rng.below(1 << 20)), reg(), rv::kOpAuipc);
        }
    }
    default:
        return 0x00000013;  // unreachable
    }
}

std::vector<uint32_t>
make_program(InsnClass cls, sim::Rng& rng, uint32_t body_words) {
    std::vector<uint32_t> code;
    emit_reg_seed(code, rng);
    uint32_t total = uint32_t(code.size()) + body_words + 1;
    while (code.size() < total - 1) {
        code.push_back(gen_insn(cls, rng, uint32_t(code.size()), total));
    }
    code.push_back(kEbreak);
    return code;
}

/// Advance the DUT exactly one retired instruction (or to a halt).
void
step_core(rv::Core& core) {
    uint64_t retired = core.instret();
    int guard = 0;
    while (!core.halted() && core.instret() == retired && guard++ < 1000) {
        core.tick();
    }
}

/// Run one program on both executors; compare pc + x0..x31 after every
/// retired instruction and RAM at the end.
void
run_lockstep(const std::vector<uint32_t>& code, const std::string& tag) {
    DutBus bus;
    bus.ram.code = &code;
    rv::Core core("dut", bus);
    core.reset(0);

    RefRam mem;
    mem.ram.code = &code;
    fuzz::RefModel ref(mem);
    ref.reset(0);

    for (int steps = 0; steps < 4000; ++steps) {
        step_core(core);
        auto st = ref.step();
        if (core.halted() || st != fuzz::RefModel::Step::kOk) {
            // Both sides must stop together, for the same reason.
            ASSERT_TRUE(core.halted()) << tag << ": reference stopped, core did not";
            ASSERT_NE(st, fuzz::RefModel::Step::kOk)
                << tag << ": core halted, reference kept going at pc 0x" << std::hex
                << ref.pc();
            EXPECT_EQ(core.faulted(), st == fuzz::RefModel::Step::kTrap) << tag;
            // After a matching clean halt the memories must agree too.
            if (st == fuzz::RefModel::Step::kHalt) {
                for (uint32_t w = 0; w < kRamWords; ++w) {
                    ASSERT_EQ(bus.ram.words[w], mem.ram.words[w])
                        << tag << ": RAM word " << w;
                }
            }
            return;
        }
        ASSERT_EQ(core.pc(), ref.pc()) << tag << " step " << steps;
        for (unsigned r = 0; r < 32; ++r) {
            ASSERT_EQ(core.reg(Reg(r)), ref.reg(r))
                << tag << " step " << steps << " reg x" << r;
        }
    }
    FAIL() << tag << ": program did not halt within the step budget";
}

class RvFuzzClass : public ::testing::TestWithParam<ClassParam> {};

TEST_P(RvFuzzClass, LockstepMatchesGoldenModel) {
    const ClassParam& p = GetParam();
    sim::Rng rng(0xf022 ^ uint64_t(p.cls) * 0x9e3779b97f4a7c15ULL);
    const int kPrograms = 60;
    for (int trial = 0; trial < kPrograms; ++trial) {
        auto code = make_program(p.cls, rng, /*body_words=*/48);
        run_lockstep(code, std::string(p.name) + " trial " + std::to_string(trial));
        if (HasFatalFailure()) return;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Classes, RvFuzzClass,
    ::testing::Values(ClassParam{"alu_imm", InsnClass::kAluImm},
                      ClassParam{"alu_reg", InsnClass::kAluReg},
                      ClassParam{"shifts", InsnClass::kShifts},
                      ClassParam{"branches", InsnClass::kBranches},
                      ClassParam{"load_store", InsnClass::kLoadStore},
                      ClassParam{"mul_div", InsnClass::kMulDiv},
                      ClassParam{"jumps", InsnClass::kJumps},
                      ClassParam{"mixed", InsnClass::kMixed}),
    [](const ::testing::TestParamInfo<ClassParam>& info) {
        return std::string(info.param.name);
    });

// --- targeted trap agreement -----------------------------------------------

TEST(RvFuzzTraps, MisalignedJumpTargetTrapsOnBothSides) {
    // Regression for the divergence the firmware fuzzer surfaced: the
    // core used to jump to a misaligned jalr target without trapping,
    // while the spec (and the reference) raise instruction-address-
    // misaligned at the transfer.
    std::vector<uint32_t> code;
    emit_li(code, rv::x1, 0x102);  // misaligned target
    code.push_back(rv::encode_i(0, rv::x1, 0, rv::x0, rv::kOpJalr));
    run_lockstep(code, "misaligned-jalr");
}

TEST(RvFuzzTraps, MisalignedLoadTrapsOnBothSides) {
    std::vector<uint32_t> code;
    emit_li(code, rv::x5, kRamBase + 1);
    code.push_back(rv::encode_i(0, rv::x5, 2, rv::x6, rv::kOpLoad));  // lw off mis
    run_lockstep(code, "misaligned-lw");
}

TEST(RvFuzzTraps, IllegalOpcodeTrapsOnBothSides) {
    std::vector<uint32_t> code{0xffffffffu};
    run_lockstep(code, "illegal-opcode");
}

TEST(RvFuzzTraps, OutOfWindowStoreTrapsOnBothSides) {
    std::vector<uint32_t> code;
    emit_li(code, rv::x5, kRamBase + 4 * kRamWords);  // one past the window
    code.push_back(rv::encode_s(0, rv::x1, rv::x5, 2));
    run_lockstep(code, "oob-store");
}

}  // namespace
}  // namespace rosebud
