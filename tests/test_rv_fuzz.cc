/// Golden-model fuzzing of the RV32IM interpreter: random instruction
/// streams are executed both by rv::Core and by an independent,
/// deliberately-naive reference interpreter written directly against the
/// ISA spec; architectural state must match instruction-for-instruction.

#include <gtest/gtest.h>

#include <array>

#include "rv/core.h"
#include "rv/isa.h"
#include "sim/random.h"

namespace rosebud::rv {
namespace {

/// Independent reference implementation (no shared decode helpers beyond
/// the bit-extraction functions, straight-line spec transcription).
class RefModel {
 public:
    std::array<uint32_t, 32> x{};
    uint32_t pc = 0;
    std::array<uint32_t, 256> mem{};  // 1 KB word RAM at address 0x400

    bool step(uint32_t insn) {  // returns false on "trap"
        uint32_t opcode = insn & 0x7f;
        uint32_t rd = (insn >> 7) & 31;
        uint32_t rs1v = x[(insn >> 15) & 31];
        uint32_t rs2v = x[(insn >> 20) & 31];
        uint32_t f3 = (insn >> 12) & 7;
        uint32_t f7 = insn >> 25;
        uint32_t next = pc + 4;
        auto wr = [&](uint32_t v) {
            if (rd) x[rd] = v;
        };
        switch (opcode) {
        case 0x37: wr(insn & 0xfffff000); break;
        case 0x17: wr(pc + (insn & 0xfffff000)); break;
        case 0x13: {
            int32_t imm = int32_t(insn) >> 20;
            switch (f3) {
            case 0: wr(rs1v + uint32_t(imm)); break;
            case 1: wr(rs1v << (imm & 31)); break;
            case 2: wr(int32_t(rs1v) < imm); break;
            case 3: wr(rs1v < uint32_t(imm)); break;
            case 4: wr(rs1v ^ uint32_t(imm)); break;
            case 5:
                if (insn & 0x40000000) {
                    wr(uint32_t(int32_t(rs1v) >> (imm & 31)));
                } else {
                    wr(rs1v >> (imm & 31));
                }
                break;
            case 6: wr(rs1v | uint32_t(imm)); break;
            case 7: wr(rs1v & uint32_t(imm)); break;
            }
            break;
        }
        case 0x33:
            if (f7 == 1) {
                switch (f3) {
                case 0: wr(rs1v * rs2v); break;
                case 1: wr(uint32_t((int64_t(int32_t(rs1v)) * int64_t(int32_t(rs2v))) >> 32)); break;
                case 2: wr(uint32_t((int64_t(int32_t(rs1v)) * int64_t(uint64_t(rs2v))) >> 32)); break;
                case 3: wr(uint32_t((uint64_t(rs1v) * uint64_t(rs2v)) >> 32)); break;
                case 4:
                    wr(rs2v == 0 ? 0xffffffff
                                 : (rs1v == 0x80000000 && rs2v == 0xffffffff
                                        ? 0x80000000
                                        : uint32_t(int32_t(rs1v) / int32_t(rs2v))));
                    break;
                case 5: wr(rs2v == 0 ? 0xffffffff : rs1v / rs2v); break;
                case 6:
                    wr(rs2v == 0 ? rs1v
                                 : (rs1v == 0x80000000 && rs2v == 0xffffffff
                                        ? 0
                                        : uint32_t(int32_t(rs1v) % int32_t(rs2v))));
                    break;
                case 7: wr(rs2v == 0 ? rs1v : rs1v % rs2v); break;
                }
            } else {
                switch (f3) {
                case 0: wr(f7 == 0x20 ? rs1v - rs2v : rs1v + rs2v); break;
                case 1: wr(rs1v << (rs2v & 31)); break;
                case 2: wr(int32_t(rs1v) < int32_t(rs2v)); break;
                case 3: wr(rs1v < rs2v); break;
                case 4: wr(rs1v ^ rs2v); break;
                case 5:
                    if (f7 == 0x20) {
                        wr(uint32_t(int32_t(rs1v) >> (rs2v & 31)));
                    } else {
                        wr(rs1v >> (rs2v & 31));
                    }
                    break;
                case 6: wr(rs1v | rs2v); break;
                case 7: wr(rs1v & rs2v); break;
                }
            }
            break;
        case 0x63: {
            bool taken = false;
            switch (f3) {
            case 0: taken = rs1v == rs2v; break;
            case 1: taken = rs1v != rs2v; break;
            case 4: taken = int32_t(rs1v) < int32_t(rs2v); break;
            case 5: taken = int32_t(rs1v) >= int32_t(rs2v); break;
            case 6: taken = rs1v < rs2v; break;
            case 7: taken = rs1v >= rs2v; break;
            }
            if (taken) next = pc + uint32_t(dec_imm_b(insn));
            break;
        }
        case 0x6f:
            wr(pc + 4);
            next = pc + uint32_t(dec_imm_j(insn));
            break;
        case 0x03: {  // lw only (fuzz constrains to word ops in RAM)
            uint32_t addr = rs1v + uint32_t(int32_t(insn) >> 20);
            if (f3 != 2 || addr < 0x400 || addr >= 0x400 + 1024 || addr % 4) return false;
            wr(mem[(addr - 0x400) / 4]);
            break;
        }
        case 0x23: {  // sw only
            uint32_t addr = rs1v + uint32_t(dec_imm_s(insn));
            if (f3 != 2 || addr < 0x400 || addr >= 0x400 + 1024 || addr % 4) return false;
            mem[(addr - 0x400) / 4] = rs2v;
            break;
        }
        default:
            return false;
        }
        pc = next;
        return true;
    }
};

/// Bus for the device under test: code ROM + the same 1 KB word RAM.
class FuzzBus : public Bus {
 public:
    std::vector<uint32_t> code;
    std::array<uint32_t, 256> mem{};

    Access load(uint32_t addr, uint32_t size) override {
        Access a;
        if (size != 4 || addr < 0x400 || addr >= 0x400 + 1024 || addr % 4) {
            a.fault = true;
            return a;
        }
        a.value = mem[(addr - 0x400) / 4];
        a.cycles = 2;
        return a;
    }

    Access store(uint32_t addr, uint32_t size, uint32_t value) override {
        Access a;
        if (size != 4 || addr < 0x400 || addr >= 0x400 + 1024 || addr % 4) {
            a.fault = true;
            return a;
        }
        mem[(addr - 0x400) / 4] = value;
        a.cycles = 1;
        return a;
    }

    uint32_t fetch(uint32_t addr) override {
        if (addr / 4 < code.size()) return code[addr / 4];
        return 0x00100073;
    }
};

/// Generate one random-but-valid instruction. Branch/jump offsets stay
/// inside the code region; loads/stores hit the RAM window via x5 = 0x400.
uint32_t
random_insn(sim::Rng& rng, uint32_t pc_words, uint32_t code_words) {
    auto reg = [&] { return Reg(rng.below(16)); };  // x0..x15
    switch (rng.below(10)) {
    case 0: return encode_u(int32_t(rng.below(1 << 20)), reg(), kOpLui);
    case 1: return encode_u(int32_t(rng.below(1 << 20)), reg(), kOpAuipc);
    case 2:
        return encode_i(int32_t(rng.range(0, 4095)) - 2048, reg(),
                        uint32_t(rng.below(8)) & 7, reg(), kOpImm);
    case 3: {
        // Shift-immediates need a clean shamt encoding.
        uint32_t shamt = uint32_t(rng.below(32));
        bool arith = rng.chance(0.5);
        return encode_i(int32_t(shamt | (arith ? 0x400 : 0)), reg(), 5, reg(), kOpImm);
    }
    case 4:
        return encode_r(rng.chance(0.3) ? 0x20 : 0x00, reg(), reg(),
                        rng.chance(0.3) ? 0 : uint32_t(rng.below(8)) & 6, reg(), kOpReg);
    case 5:  // M extension
        return encode_r(0x01, reg(), reg(), uint32_t(rng.below(8)), reg(), kOpReg);
    case 6: {  // branch forward a little (stay in range)
        uint32_t max_fwd = code_words > pc_words + 2 ? code_words - pc_words - 1 : 1;
        int32_t off = int32_t(rng.range(1, std::min<uint64_t>(max_fwd, 8))) * 4;
        return encode_b(off, reg(), reg(), uint32_t(rng.below(8)) == 2 ? 0 : 1);
    }
    case 7: {  // jal forward
        uint32_t max_fwd = code_words > pc_words + 2 ? code_words - pc_words - 1 : 1;
        int32_t off = int32_t(rng.range(1, std::min<uint64_t>(max_fwd, 8))) * 4;
        return encode_j(off, reg());
    }
    case 8: {  // lw x?, imm(x5) with x5 preloaded to 0x400
        int32_t off = int32_t(rng.below(256)) * 4;
        return encode_i(off, x5, 2, reg(), kOpLoad);
    }
    default: {  // sw
        int32_t off = int32_t(rng.below(256)) * 4;
        return encode_s(off, reg(), x5, 2);
    }
    }
}

TEST(RvFuzz, CoreMatchesReferenceOnRandomPrograms) {
    sim::Rng rng(0xf022);
    const int kPrograms = 200;
    const uint32_t kWords = 64;
    for (int trial = 0; trial < kPrograms; ++trial) {
        FuzzBus bus;
        bus.code.resize(kWords);
        // Prologue pins x5 to the RAM base so memory ops are in range.
        bus.code[0] = encode_u(0, x5, kOpLui);
        bus.code[1] = encode_i(0x400, x5, 0, x5, kOpImm);
        for (uint32_t i = 2; i < kWords; ++i) bus.code[i] = random_insn(rng, i, kWords);

        Core core("fuzz", bus);
        core.reset(0);
        RefModel ref;

        // Run the reference alongside: fetch what the core will fetch.
        uint32_t steps = 0;
        bool ref_trapped = false;
        while (!core.halted() && steps < 2000) {
            uint32_t pc = core.pc();
            uint64_t retired = core.instret();
            // Advance the DUT by exactly one instruction.
            while (!core.halted() && core.instret() == retired) core.tick();
            if (core.halted()) break;
            uint32_t insn = pc / 4 < bus.code.size() ? bus.code[pc / 4] : 0x00100073;
            ASSERT_EQ(ref.pc, pc) << "trial " << trial << " step " << steps;
            if (!ref.step(insn)) {
                ref_trapped = true;
                break;
            }
            ++steps;
            for (int r = 0; r < 16; ++r) {
                ASSERT_EQ(core.reg(Reg(r)), ref.x[r])
                    << "trial " << trial << " step " << steps << " reg x" << r
                    << " insn 0x" << std::hex << insn;
            }
        }
        if (!ref_trapped) {
            // Memory agrees at the end.
            for (int w = 0; w < 256; ++w) {
                ASSERT_EQ(bus.mem[w], ref.mem[w]) << "trial " << trial << " word " << w;
            }
        }
    }
}

}  // namespace
}  // namespace rosebud::rv
