/// Flow hashing, rule parsing (IDS + firewall blacklist), and the
/// Aho-Corasick matcher (verified against a naive reference).

#include <gtest/gtest.h>

#include <algorithm>

#include "net/flow.h"
#include "net/patmatch.h"
#include "net/rules.h"
#include "sim/log.h"
#include "sim/random.h"

namespace rosebud::net {
namespace {

TEST(Crc32c, KnownVector) {
    // Standard CRC32C check value for "123456789".
    const char* s = "123456789";
    EXPECT_EQ(crc32c(reinterpret_cast<const uint8_t*>(s), 9), 0xe3069283u);
}

TEST(Crc32c, EmptyIsZero) { EXPECT_EQ(crc32c(nullptr, 0), 0u); }

TEST(FlowHash, SymmetricInDirection) {
    sim::Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        FiveTuple fwd;
        fwd.src_ip = uint32_t(rng.next());
        fwd.dst_ip = uint32_t(rng.next());
        fwd.src_port = uint16_t(rng.next());
        fwd.dst_port = uint16_t(rng.next());
        fwd.protocol = kIpProtoTcp;
        FiveTuple rev = fwd;
        std::swap(rev.src_ip, rev.dst_ip);
        std::swap(rev.src_port, rev.dst_port);
        EXPECT_EQ(flow_hash(fwd), flow_hash(rev));
    }
}

TEST(FlowHash, DistinguishesFlows) {
    FiveTuple a{1, 2, 3, 4, 6};
    FiveTuple b{1, 2, 3, 5, 6};
    EXPECT_NE(flow_hash(a), flow_hash(b));
}

TEST(FlowHash, ProtocolMatters) {
    FiveTuple a{1, 2, 3, 4, kIpProtoTcp};
    FiveTuple b{1, 2, 3, 4, kIpProtoUdp};
    EXPECT_NE(flow_hash(a), flow_hash(b));
}

TEST(FlowHash, PacketHashMatchesTupleHash) {
    PacketBuilder b;
    b.ipv4(0x0a000001, 0x0a000002).tcp(1000, 2000).frame_size(64);
    auto p = b.build();
    auto parsed = parse_packet(*p);
    EXPECT_EQ(packet_flow_hash(*p), flow_hash(extract_five_tuple(*parsed)));
    EXPECT_NE(packet_flow_hash(*p), 0u);
}

TEST(FlowHash, NonIpIsZero) {
    auto p = make_packet(64);
    EXPECT_EQ(packet_flow_hash(*p), 0u);
}

// --- IDS rules ---------------------------------------------------------------

TEST(IdsRules, ParseBasic) {
    auto set = IdsRuleSet::parse(
        "# comment line\n"
        "alert tcp any any -> any 80 (msg:\"web exploit\"; content:\"evil\"; sid:100;)\n"
        "\n"
        "alert udp any any -> any any (content:\"dns-bad\"; sid:101;)\n");
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set.at(0).sid, 100u);
    EXPECT_EQ(set.at(0).proto, RuleProto::kTcp);
    ASSERT_TRUE(set.at(0).dst_port.has_value());
    EXPECT_EQ(*set.at(0).dst_port, 80);
    EXPECT_EQ(set.at(0).msg, "web exploit");
    ASSERT_EQ(set.at(0).contents.size(), 1u);
    EXPECT_EQ(std::string(set.at(0).contents[0].bytes.begin(),
                          set.at(0).contents[0].bytes.end()),
              "evil");
    EXPECT_EQ(set.at(1).proto, RuleProto::kUdp);
    EXPECT_FALSE(set.at(1).dst_port.has_value());
}

TEST(IdsRules, ParseHexContent) {
    auto set = IdsRuleSet::parse(
        "alert tcp any any -> any any (content:\"ab|00 FF|cd\"; sid:1;)\n");
    const auto& bytes = set.at(0).contents[0].bytes;
    ASSERT_EQ(bytes.size(), 6u);
    EXPECT_EQ(bytes[0], 'a');
    EXPECT_EQ(bytes[2], 0x00);
    EXPECT_EQ(bytes[3], 0xff);
    EXPECT_EQ(bytes[5], 'd');
}

TEST(IdsRules, ParseMultipleContentsAndNocase) {
    auto set = IdsRuleSet::parse(
        "alert tcp any any -> any any "
        "(content:\"short\"; content:\"muchlongerpattern\"; nocase; sid:5;)\n");
    ASSERT_EQ(set.at(0).contents.size(), 2u);
    EXPECT_TRUE(set.at(0).contents[1].nocase);
    EXPECT_FALSE(set.at(0).contents[0].nocase);
    // Fast pattern is the longest content.
    EXPECT_EQ(set.at(0).fast_pattern().bytes.size(), 17u);
}

TEST(IdsRules, QuotedSemicolonInMsg) {
    auto set = IdsRuleSet::parse(
        "alert tcp any any -> any any (msg:\"a;b\"; content:\"x1y2z3\"; sid:9;)\n");
    EXPECT_EQ(set.at(0).msg, "a;b");
}

TEST(IdsRules, MalformedRulesAreFatal) {
    EXPECT_THROW(IdsRuleSet::parse("alert tcp any any -> any any content\n"),
                 sim::FatalError);
    EXPECT_THROW(
        IdsRuleSet::parse("alert tcp any any -> any any (content:\"x\";)\n"),
        sim::FatalError);  // no sid
    EXPECT_THROW(IdsRuleSet::parse("alert tcp any any -> any any (sid:3;)\n"),
                 sim::FatalError);  // no content
    EXPECT_THROW(
        IdsRuleSet::parse("log tcp any any -> any any (content:\"x\"; sid:3;)\n"),
        sim::FatalError);  // unsupported action
}

TEST(IdsRules, SynthesizeDeterministic) {
    sim::Rng a(7), b(7);
    auto s1 = IdsRuleSet::synthesize(50, a);
    auto s2 = IdsRuleSet::synthesize(50, b);
    ASSERT_EQ(s1.size(), 50u);
    for (size_t i = 0; i < 50; ++i) {
        EXPECT_EQ(s1.at(i).sid, s2.at(i).sid);
        EXPECT_EQ(s1.at(i).fast_pattern().bytes, s2.at(i).fast_pattern().bytes);
    }
}

TEST(IdsRules, FindSid) {
    sim::Rng rng(7);
    auto set = IdsRuleSet::synthesize(10, rng);
    EXPECT_NE(set.find_sid(1000), nullptr);
    EXPECT_EQ(set.find_sid(99999), nullptr);
}

// --- blacklist ------------------------------------------------------------------

TEST(Blacklist, ParseMixedFormats) {
    auto bl = Blacklist::parse(
        "# emerging threats style\n"
        "block drop from 1.2.3.4 to any\n"
        "5.6.7.0/24\n"
        "9.9.9.9\n");
    EXPECT_EQ(bl.size(), 3u);
    EXPECT_TRUE(bl.contains(parse_ipv4_addr("1.2.3.4")));
    EXPECT_FALSE(bl.contains(parse_ipv4_addr("1.2.3.5")));
    EXPECT_TRUE(bl.contains(parse_ipv4_addr("5.6.7.200")));
    EXPECT_FALSE(bl.contains(parse_ipv4_addr("5.6.8.1")));
    EXPECT_TRUE(bl.contains(parse_ipv4_addr("9.9.9.9")));
}

TEST(Blacklist, PrefixMasking) {
    Blacklist bl;
    bl.add(parse_ipv4_addr("10.1.2.255"), 24);  // low bits masked off
    EXPECT_TRUE(bl.contains(parse_ipv4_addr("10.1.2.0")));
    EXPECT_TRUE(bl.contains(parse_ipv4_addr("10.1.2.99")));
    EXPECT_FALSE(bl.contains(parse_ipv4_addr("10.1.3.0")));
}

TEST(Blacklist, SynthesizeAvoidsSafeSpace) {
    sim::Rng rng(3);
    auto bl = Blacklist::synthesize(1050, rng);
    EXPECT_EQ(bl.size(), 1050u);
    for (const auto& e : bl.entries()) {
        EXPECT_NE(e.prefix >> 24, 10u) << "entry in the 10/8 safe range";
    }
}

TEST(Blacklist, BadPrefixLengthFatal) {
    Blacklist bl;
    EXPECT_THROW(bl.add(1, 33), sim::FatalError);
}

// --- Aho-Corasick ----------------------------------------------------------------

/// Naive multi-pattern reference.
std::vector<PatternMatch>
naive_scan(const std::vector<std::vector<uint8_t>>& patterns, const uint8_t* data,
           size_t len) {
    std::vector<PatternMatch> out;
    for (size_t i = 0; i < len; ++i) {
        for (size_t pi = 0; pi < patterns.size(); ++pi) {
            const auto& p = patterns[pi];
            if (p.empty() || i + 1 < p.size()) continue;
            if (std::equal(p.begin(), p.end(), data + i + 1 - p.size())) {
                out.push_back({uint32_t(pi), uint32_t(i + 1)});
            }
        }
    }
    return out;
}

TEST(AhoCorasick, MatchesNaiveReferenceOnRandomInput) {
    sim::Rng rng(21);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<std::vector<uint8_t>> patterns;
        AhoCorasick ac;
        size_t n = 1 + rng.below(8);
        for (size_t i = 0; i < n; ++i) {
            std::vector<uint8_t> p(1 + rng.below(6));
            for (auto& b : p) b = uint8_t('a' + rng.below(4));  // small alphabet
            patterns.push_back(p);
            ac.add_pattern(p, uint32_t(i));
        }
        ac.finalize();

        std::vector<uint8_t> text(200);
        for (auto& b : text) b = uint8_t('a' + rng.below(4));

        std::vector<PatternMatch> got;
        ac.scan(text.data(), text.size(), got);
        auto want = naive_scan(patterns, text.data(), text.size());

        auto key = [](const PatternMatch& m) {
            return uint64_t(m.end_offset) << 32 | m.pattern_id;
        };
        std::sort(got.begin(), got.end(),
                  [&](auto& a, auto& b) { return key(a) < key(b); });
        std::sort(want.begin(), want.end(),
                  [&](auto& a, auto& b) { return key(a) < key(b); });
        ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
        for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].pattern_id, want[i].pattern_id);
            EXPECT_EQ(got[i].end_offset, want[i].end_offset);
        }
    }
}

TEST(AhoCorasick, OverlappingAndNestedPatterns) {
    AhoCorasick ac;
    ac.add_pattern({'a', 'b'}, 0);
    ac.add_pattern({'b', 'c'}, 1);
    ac.add_pattern({'a', 'b', 'c'}, 2);
    ac.add_pattern({'c'}, 3);
    ac.finalize();
    std::string text = "abc";
    std::vector<PatternMatch> out;
    ac.scan(reinterpret_cast<const uint8_t*>(text.data()), text.size(), out);
    // ab@2, bc@3, abc@3, c@3.
    EXPECT_EQ(out.size(), 4u);
}

TEST(AhoCorasick, MatchesAnyEarlyExit) {
    AhoCorasick ac;
    ac.add_pattern({'x', 'y', 'z'}, 0);
    ac.finalize();
    std::string hit = "aaaxyzaaa";
    std::string miss = "aaaxyaaaz";
    EXPECT_TRUE(ac.matches_any(reinterpret_cast<const uint8_t*>(hit.data()), hit.size()));
    EXPECT_FALSE(
        ac.matches_any(reinterpret_cast<const uint8_t*>(miss.data()), miss.size()));
}

TEST(AhoCorasick, EmptyPatternIgnored) {
    AhoCorasick ac;
    ac.add_pattern({}, 0);
    ac.add_pattern({'a', 'a', 'a', 'a'}, 1);
    ac.finalize();
    EXPECT_EQ(ac.pattern_count(), 1u);
}

TEST(AhoCorasick, ScanEmptyText) {
    AhoCorasick ac;
    ac.add_pattern({'a'}, 0);
    ac.finalize();
    std::vector<PatternMatch> out;
    EXPECT_EQ(ac.scan(nullptr, 0, out), 0u);
}

}  // namespace
}  // namespace rosebud::net
