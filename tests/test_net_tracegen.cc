/// Traffic/trace generation: determinism, sizing, attack crafting
/// (IDS patterns and blacklist sources), and reorder injection.

#include <gtest/gtest.h>

#include "baseline/snort_model.h"
#include "net/flow.h"
#include "net/tracegen.h"

namespace rosebud::net {
namespace {

TEST(TraceGen, DeterministicForSameSeed) {
    TrafficSpec spec;
    spec.seed = 99;
    TraceGenerator a(spec), b(spec);
    for (int i = 0; i < 200; ++i) {
        auto pa = a.next();
        auto pb = b.next();
        EXPECT_EQ(pa->data, pb->data) << i;
        EXPECT_EQ(pa->is_attack, pb->is_attack);
    }
}

TEST(TraceGen, RespectsPacketSize) {
    for (uint32_t s : {64u, 128u, 1500u, 9000u}) {
        TrafficSpec spec;
        spec.packet_size = s;
        TraceGenerator gen(spec);
        for (int i = 0; i < 50; ++i) EXPECT_EQ(gen.next()->size(), s);
    }
}

TEST(TraceGen, AllFramesParse) {
    TrafficSpec spec;
    spec.udp_fraction = 0.5;
    TraceGenerator gen(spec);
    for (int i = 0; i < 300; ++i) {
        auto parsed = parse_packet(*gen.next());
        ASSERT_TRUE(parsed.has_value());
        EXPECT_TRUE(parsed->has_tcp || parsed->has_udp);
    }
}

TEST(TraceGen, TcpSequencesAdvanceByPayload) {
    TrafficSpec spec;
    spec.packet_size = 200;
    spec.udp_fraction = 0.0;
    spec.flow_count = 2;
    TraceGenerator gen(spec);
    std::map<uint32_t, uint32_t> last_seq;  // flow hash -> next expected
    for (int i = 0; i < 100; ++i) {
        auto p = gen.next();
        auto parsed = parse_packet(*p);
        ASSERT_TRUE(parsed->has_tcp);
        uint32_t h = packet_flow_hash(*p);
        if (last_seq.count(h)) EXPECT_EQ(parsed->tcp.seq, last_seq[h]);
        last_seq[h] = parsed->tcp.seq + parsed->payload_len;
    }
}

TEST(TraceGen, AttackFractionApproximatelyHonored) {
    sim::Rng rng(5);
    auto rules = IdsRuleSet::synthesize(32, rng);
    TrafficSpec spec;
    spec.attack_fraction = 0.2;
    spec.packet_size = 512;
    TraceGenerator gen(spec, &rules);
    int attacks = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) attacks += gen.next()->is_attack;
    EXPECT_NEAR(double(attacks) / n, 0.2, 0.05);
}

TEST(TraceGen, AttackPacketsActuallyMatchRules) {
    sim::Rng rng(5);
    auto rules = IdsRuleSet::synthesize(32, rng);
    baseline::SnortModel ref(rules);
    TrafficSpec spec;
    spec.attack_fraction = 0.3;
    spec.packet_size = 512;
    TraceGenerator gen(spec, &rules);
    int attacks = 0;
    for (int i = 0; i < 1000; ++i) {
        auto p = gen.next();
        if (!p->is_attack) continue;
        ++attacks;
        EXPECT_TRUE(ref.packet_matches(*p)) << "attack packet " << p->id << " missed";
    }
    EXPECT_GT(attacks, 100);
}

TEST(TraceGen, SafePacketsDoNotMatchRules) {
    sim::Rng rng(5);
    auto rules = IdsRuleSet::synthesize(32, rng);
    baseline::SnortModel ref(rules);
    TrafficSpec spec;
    spec.attack_fraction = 0.0;
    spec.packet_size = 1024;
    TraceGenerator gen(spec, &rules);
    for (int i = 0; i < 1000; ++i) {
        auto p = gen.next();
        EXPECT_FALSE(ref.packet_matches(*p)) << "false positive on safe packet";
    }
}

TEST(TraceGen, BlacklistAttacksUseBlacklistedSources) {
    sim::Rng rng(6);
    auto bl = Blacklist::synthesize(100, rng);
    TrafficSpec spec;
    spec.attack_fraction = 0.25;
    TraceGenerator gen(spec, nullptr, &bl);
    int attacks = 0;
    for (int i = 0; i < 1000; ++i) {
        auto p = gen.next();
        auto parsed = parse_packet(*p);
        EXPECT_EQ(p->is_attack, bl.contains(parsed->ipv4.src_ip));
        attacks += p->is_attack;
    }
    EXPECT_NEAR(attacks, 250, 60);
}

TEST(TraceGen, ReorderingCreatesFlowSeqInversions) {
    TrafficSpec spec;
    spec.reorder_fraction = 0.05;
    spec.udp_fraction = 0.0;
    spec.flow_count = 8;
    TraceGenerator gen(spec);
    std::map<uint32_t, uint64_t> last;
    int inversions = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        auto p = gen.next();
        uint32_t h = packet_flow_hash(*p);
        if (last.count(h) && p->flow_seq < last[h]) ++inversions;
        last[h] = std::max(last[h], p->flow_seq);
    }
    // ~5% of packets form a swapped pair -> one inversion each.
    EXPECT_NEAR(double(inversions) / n, 0.05, 0.02);
}

TEST(TraceGen, NoReorderingMeansMonotonicFlows) {
    TrafficSpec spec;
    spec.reorder_fraction = 0.0;
    spec.flow_count = 16;
    TraceGenerator gen(spec);
    std::map<uint32_t, uint64_t> last;
    for (int i = 0; i < 2000; ++i) {
        auto p = gen.next();
        uint32_t h = packet_flow_hash(*p);
        if (last.count(h)) EXPECT_GT(p->flow_seq, last[h]);
        last[h] = p->flow_seq;
    }
}

TEST(TraceGen, MinimumSizeEnforced) {
    TrafficSpec spec;
    spec.packet_size = 10;  // below headers
    TraceGenerator gen(spec);
    EXPECT_GE(gen.next()->size(), 62u);
}

}  // namespace
}  // namespace rosebud::net
