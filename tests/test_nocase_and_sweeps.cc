/// Case-insensitive matching (`nocase`) across both matchers, plus broad
/// parameterized sweeps asserting monotone/consistent shapes of the
/// experiment harnesses over packet sizes.

#include <gtest/gtest.h>

#include "accel/pigasus.h"
#include "baseline/snort_model.h"
#include "core/experiments.h"
#include "net/rules.h"
#include "sim/stats.h"

namespace rosebud {
namespace {

net::IdsRuleSet
nocase_rules() {
    return net::IdsRuleSet::parse(
        "alert tcp any any -> any any (content:\"MixedCaseAttack\"; nocase; sid:1;)\n"
        "alert tcp any any -> any any (content:\"ExactCaseOnly9\"; sid:2;)\n");
}

std::vector<uint32_t>
pig_match(const accel::PigasusMatcher& pig, const std::string& payload) {
    return pig.match_payload(reinterpret_cast<const uint8_t*>(payload.data()),
                             payload.size(), 0, true);
}

TEST(Nocase, PigasusMatchesAnyCase) {
    accel::PigasusMatcher pig(nocase_rules());
    EXPECT_EQ(pig_match(pig, "xx mixedcaseattack xx"), std::vector<uint32_t>{1});
    EXPECT_EQ(pig_match(pig, "xx MIXEDCASEATTACK xx"), std::vector<uint32_t>{1});
    EXPECT_EQ(pig_match(pig, "xx MiXeDcAsEaTtAcK xx"), std::vector<uint32_t>{1});
    EXPECT_EQ(pig_match(pig, "xx MixedCaseAttack xx"), std::vector<uint32_t>{1});
}

TEST(Nocase, ExactPatternsStayCaseSensitive) {
    accel::PigasusMatcher pig(nocase_rules());
    EXPECT_EQ(pig_match(pig, "xx ExactCaseOnly9 xx"), std::vector<uint32_t>{2});
    EXPECT_TRUE(pig_match(pig, "xx exactcaseonly9 xx").empty());
    EXPECT_TRUE(pig_match(pig, "xx EXACTCASEONLY9 xx").empty());
}

TEST(Nocase, SnortBaselineAgreesWithPigasus) {
    auto rules = nocase_rules();
    accel::PigasusMatcher pig(rules);
    baseline::SnortModel snort(rules);
    for (const char* payload :
         {"mixedcaseattack", "MIXEDCASEATTACK", "MixedCaseAttack", "exactcaseonly9",
          "ExactCaseOnly9", "nothing to see", "mIxEdCaSeAtTaCk trailer"}) {
        net::PacketBuilder b;
        b.ipv4(1, 2).tcp(1000, 2000).payload_str(payload).frame_size(200);
        auto p = b.build();
        EXPECT_EQ(!pig_match(pig, std::string(payload) +
                                      std::string(200 - 54 - strlen(payload), '\xa5'))
                       .empty(),
                  snort.packet_matches(*p))
            << payload;
    }
}

TEST(Nocase, MultiContentMixedModifiers) {
    auto rules = net::IdsRuleSet::parse(
        "alert tcp any any -> any any "
        "(content:\"FirstPart\"; nocase; content:\"secondpart\"; sid:3;)\n");
    accel::PigasusMatcher pig(rules);
    EXPECT_FALSE(pig_match(pig, "FIRSTPART ... secondpart").empty());
    EXPECT_FALSE(pig_match(pig, "firstpart ... secondpart").empty());
    // The second content is case-sensitive.
    EXPECT_TRUE(pig_match(pig, "FIRSTPART ... SECONDPART").empty());
}

// --- sweep shape properties ---------------------------------------------------

class ForwardingSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ForwardingSweep, FractionOfLineIsMonotoneInPacketSize) {
    unsigned rpus = GetParam();
    double prev = 0.0;
    for (uint32_t size : {64u, 128u, 256u, 512u, 1024u}) {
        exp::ForwardingParams p;
        p.rpu_count = rpus;
        p.size = size;
        p.warmup = 15000;
        p.window = 40000;
        auto r = exp::run_forwarding(p);
        double frac = r.achieved_gbps / r.line_gbps;
        EXPECT_GE(frac, prev - 0.01) << "size " << size;
        EXPECT_LE(frac, 1.005) << "never exceeds line rate";
        prev = frac;
    }
    EXPECT_GT(prev, 0.99);  // large packets always reach line rate
}

INSTANTIATE_TEST_SUITE_P(Layouts, ForwardingSweep, ::testing::Values(8u, 16u),
                         [](const auto& info) {
                             return "rpus" + std::to_string(info.param);
                         });

TEST(LatencySweep, MonotoneInSizeAndMatchesEq1Slope) {
    double prev = 0.0;
    for (uint32_t size : {64u, 256u, 1024u, 4096u}) {
        exp::LatencyParams p;
        p.size = size;
        p.load = 0.05;
        p.warmup = 15000;
        p.window = 50000;
        auto r = exp::run_latency(p);
        EXPECT_GT(r.mean_us, prev) << size;
        prev = r.mean_us;
    }
    // Slope between the extremes ~ Eq. 1's 0.66 ns/B.
    exp::LatencyParams a, b;
    a.size = 64;
    b.size = 4096;
    a.warmup = b.warmup = 15000;
    a.window = b.window = 50000;
    double slope =
        (exp::run_latency(b).mean_us - exp::run_latency(a).mean_us) * 1e3 / (4096 - 64);
    EXPECT_NEAR(slope, 8.0 * (2.0 / 100.0 + 2.0 / 32.0), 0.05);
}

TEST(FirewallSweep, FractionRisesToLineRateAt256) {
    double frac128, frac256;
    {
        exp::FirewallParams p;
        p.size = 128;
        p.warmup = 15000;
        p.window = 40000;
        auto r = exp::run_firewall(p);
        frac128 = r.achieved_gbps / r.line_gbps;
    }
    {
        exp::FirewallParams p;
        p.size = 256;
        p.warmup = 15000;
        p.window = 40000;
        auto r = exp::run_firewall(p);
        frac256 = r.achieved_gbps / r.line_gbps;
    }
    EXPECT_LT(frac128, 0.95);  // firmware-limited below 256 B
    EXPECT_GT(frac256, 0.99);  // the paper's crossover
}

TEST(IpsSweep, HwAlwaysAtLeastSw) {
    for (uint32_t size : {256u, 800u, 1500u}) {
        exp::IpsParams p;
        p.size = size;
        p.warmup = 15000;
        p.window = 40000;
        p.mode = exp::IpsMode::kHwReorder;
        auto hw = exp::run_ips(p);
        p.mode = exp::IpsMode::kSwReorder;
        auto sw = exp::run_ips(p);
        EXPECT_GE(hw.achieved_gbps, sw.achieved_gbps * 0.99) << size;
        EXPECT_LE(sw.cycles_per_packet + 1e-9, 1e6);
        EXPECT_GE(sw.cycles_per_packet, hw.cycles_per_packet * 0.95) << size;
    }
}

TEST(StatsCsv, WellFormed) {
    sim::Stats s;
    s.counter("a.b").add(5);
    s.sampler("lat").add(2.0);
    s.sampler("lat").add(4.0);
    std::string csv = s.to_csv();
    EXPECT_NE(csv.find("name,kind,count,mean,min,max"), std::string::npos);
    EXPECT_NE(csv.find("a.b,counter,5"), std::string::npos);
    EXPECT_NE(csv.find("lat,sampler,2,3,2,4"), std::string::npos);
}

}  // namespace
}  // namespace rosebud
