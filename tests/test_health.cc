/// Production health layer tests (DESIGN.md §15): flight-recorder ring
/// semantics, HDR histogram bucket math, the declarative SLO parser,
/// Prometheus/JSON metrics export, the attach-invariance guarantee
/// (bit-identical fingerprints with the monitor attached), SLO epoch
/// verdicts, the forward-progress watchdog on an injected firmware stall,
/// the host-side metrics query, bounded telemetry epoch retention, and the
/// exporter degenerate-input cases (zero-cycle runs, detach mid-run,
/// hostile net names).

#include <gtest/gtest.h>

#include <string>

#include "core/system.h"
#include "core/tracer.h"
#include "firmware/programs.h"
#include "obs/harness.h"
#include "obs/health.h"
#include "obs/perfetto.h"
#include "obs/telemetry.h"
#include "obs/vcd.h"
#include "sim/log.h"

namespace rosebud {
namespace {

// ------------------------------------------------------- flight recorder

TEST(FlightRecorder, RingWrapsKeepingMostRecent) {
    obs::FlightRecorder fr(8);
    for (uint64_t i = 0; i < 20; ++i)
        fr.record(obs::FlightEventType::kIngress, /*cycle=*/100 + i, /*a=*/0,
                  /*b=*/64, /*c=*/i);
    EXPECT_EQ(fr.size(), 8u);
    EXPECT_EQ(fr.capacity(), 8u);
    EXPECT_EQ(fr.recorded(), 20u);
    EXPECT_EQ(fr.overwritten(), 12u);
    // Oldest-first iteration over the surviving window [12, 20).
    uint64_t expect = 12;
    fr.for_each([&](const obs::FlightEvent& e) {
        EXPECT_EQ(e.c, expect);
        EXPECT_EQ(e.cycle, 100 + expect);
        ++expect;
    });
    EXPECT_EQ(expect, 20u);
}

TEST(FlightRecorder, NotesInternAndBound) {
    obs::FlightRecorder fr(4096);
    fr.record_note(obs::FlightEventType::kFault, 7, "core trap mcause=2",
                   /*a=*/3);
    bool seen = false;
    fr.for_each([&](const obs::FlightEvent& e) {
        seen = true;
        EXPECT_EQ(e.type, obs::FlightEventType::kFault);
        EXPECT_EQ(fr.note(e.note), "core trap mcause=2");
    });
    EXPECT_TRUE(seen);
    // The note table is bounded: flooding it must not grow without limit,
    // and later notes still resolve to *something* printable.
    for (int i = 0; i < 5000; ++i)
        fr.record_note(obs::FlightEventType::kFault, 8, "note " + std::to_string(i));
    int32_t last_note = -1;
    fr.for_each([&](const obs::FlightEvent& e) { last_note = e.note; });
    EXPECT_GE(last_note, 0);
    EXPECT_FALSE(fr.note(last_note).empty());
}

TEST(FlightRecorder, DumpFormatsContainEvents) {
    obs::FlightRecorder fr(16);
    fr.record(obs::FlightEventType::kIngress, 10, 0, 64, 1);
    fr.record(obs::FlightEventType::kEgress, 42, 1, 64, 1, /*d=*/32);
    fr.record_note(obs::FlightEventType::kWatchdogTrip, 99, "egress silent");
    std::string json = fr.dump_json();
    std::string text = fr.dump_text();
    EXPECT_NE(json.find("\"events\""), std::string::npos);
    EXPECT_NE(json.find("egress silent"), std::string::npos);
    EXPECT_NE(text.find("ingress"), std::string::npos);
    EXPECT_NE(text.find("egress silent"), std::string::npos);
    fr.clear();
    EXPECT_EQ(fr.size(), 0u);
    EXPECT_EQ(fr.capacity(), 16u);
}

// ------------------------------------------------------------- histogram

TEST(Histogram, ExactBelowSubBucketRange) {
    obs::Histogram h;
    for (uint64_t v = 0; v < obs::Histogram::kSubBuckets; ++v) h.record(v);
    for (uint64_t v = 0; v < obs::Histogram::kSubBuckets; ++v)
        EXPECT_EQ(obs::Histogram::bucket_upper(obs::Histogram::bucket_index(v)), v);
    EXPECT_EQ(h.count(), uint64_t(obs::Histogram::kSubBuckets));
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), obs::Histogram::kSubBuckets - 1);
}

TEST(Histogram, BucketBoundsContainValueWithBoundedError) {
    for (uint64_t v : {1ull, 7ull, 8ull, 9ull, 100ull, 1000ull, 123456ull,
                       (1ull << 40) + 12345, ~0ull >> 1}) {
        unsigned idx = obs::Histogram::bucket_index(v);
        uint64_t upper = obs::Histogram::bucket_upper(idx);
        EXPECT_GE(upper, v) << "v=" << v;
        // HDR guarantee: the bucket upper bound overshoots by at most the
        // sub-bucket resolution (12.5% for kSubBits=3).
        EXPECT_LE(double(upper - v), double(v) * 0.125 + 1.0) << "v=" << v;
    }
}

TEST(Histogram, PercentilesNeverUnderstate) {
    obs::Histogram h;
    for (uint64_t i = 1; i <= 1000; ++i) h.record(i);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_GE(h.percentile(0.50), 500u);
    EXPECT_GE(h.percentile(0.99), 990u);
    EXPECT_LE(h.percentile(0.99), 1200u);  // within one bucket overshoot
    EXPECT_GE(h.percentile(1.0), 1000u);
    EXPECT_EQ(obs::Histogram().percentile(0.99), 0u);
}

TEST(Histogram, MergeAndClear) {
    obs::Histogram a, b;
    a.record(10, 5);
    b.record(1000, 3);
    a.merge(b);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_EQ(a.sum(), 10u * 5 + 1000u * 3);
    a.clear();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.percentile(0.5), 0u);
}

// ------------------------------------------------------------ SLO parser

TEST(SloParser, ParsesClassesUnitsAndClauses) {
    obs::SloSpec s = obs::parse_slo(
        "latency_p99 <= 200us; drop_rate <= 5%, tcp: latency_p999 <= 1ms");
    ASSERT_EQ(s.bounds.size(), 3u);

    EXPECT_EQ(s.bounds[0].kind, obs::SloBound::Kind::kLatencyP99);
    EXPECT_EQ(s.bounds[0].cls, obs::FlowClass::kClassCount);  // all traffic
    EXPECT_NEAR(s.bounds[0].limit, 200e3 / sim::kNsPerCycle, 1e-6);

    EXPECT_EQ(s.bounds[1].kind, obs::SloBound::Kind::kDropRate);
    EXPECT_NEAR(s.bounds[1].limit, 0.05, 1e-12);

    EXPECT_EQ(s.bounds[2].cls, obs::FlowClass::kTcp);
    EXPECT_EQ(s.bounds[2].kind, obs::SloBound::Kind::kLatencyP999);
    EXPECT_NEAR(s.bounds[2].limit, 1e6 / sim::kNsPerCycle, 1e-6);

    EXPECT_TRUE(obs::parse_slo("").empty());
    EXPECT_TRUE(obs::parse_slo("   ").empty());
    // Canonical rendering mentions the class and metric.
    std::string txt = obs::slo_bound_text(s.bounds[2]);
    EXPECT_NE(txt.find("tcp"), std::string::npos);
    EXPECT_NE(txt.find("latency_p999"), std::string::npos);
}

TEST(SloParser, RejectsMalformedSpecs) {
    EXPECT_THROW(obs::parse_slo("latency_p99 >= 10"), sim::FatalError);
    EXPECT_THROW(obs::parse_slo("bogus_metric <= 10"), sim::FatalError);
    EXPECT_THROW(obs::parse_slo("latency_p99 <= abc"), sim::FatalError);
    EXPECT_THROW(obs::parse_slo("martian: latency_p99 <= 10"), sim::FatalError);
    EXPECT_THROW(obs::parse_slo("latency_p99 <= 10 parsecs"), sim::FatalError);
}

// -------------------------------------------------------------- metrics

TEST(Metrics, PrometheusNamesAndLabelsAreSanitized) {
    EXPECT_EQ(obs::prom_name("fabric.mac_rx.p0"), "fabric_mac_rx_p0");
    EXPECT_EQ(obs::prom_name("9lives"), "_9lives");
    std::string esc = obs::prom_label_value("a\"b\\c\nd");
    EXPECT_EQ(esc.find('\n'), std::string::npos);
    EXPECT_NE(esc.find("\\\""), std::string::npos);
    EXPECT_NE(esc.find("\\\\"), std::string::npos);
}

TEST(Metrics, RegistryExportsPrometheusAndJson) {
    obs::MetricsRegistry reg;
    uint64_t hits = 7;
    reg.add_counter("demo_hits_total", "demo hits", "", [&] { return hits; });
    reg.add_gauge("demo_depth", "queue depth", "net=\"rx\"", [&] { return 3ull; });
    obs::Histogram h;
    h.record(4);
    h.record(100);
    reg.add_histogram("demo_latency_seconds", "latency", "", &h, 1e-6);

    std::string prom = reg.prometheus_text();
    EXPECT_NE(prom.find("# TYPE demo_hits_total counter"), std::string::npos);
    EXPECT_NE(prom.find("demo_hits_total 7"), std::string::npos);
    EXPECT_NE(prom.find("# TYPE demo_depth gauge"), std::string::npos);
    EXPECT_NE(prom.find("demo_depth{net=\"rx\"} 3"), std::string::npos);
    EXPECT_NE(prom.find("# TYPE demo_latency_seconds histogram"), std::string::npos);
    EXPECT_NE(prom.find("demo_latency_seconds_bucket"), std::string::npos);
    EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
    EXPECT_NE(prom.find("demo_latency_seconds_count 2"), std::string::npos);

    std::string json = reg.json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("demo_hits_total"), std::string::npos);
    EXPECT_EQ(reg.snapshot(obs::MetricsFormat::kJson), json);
    EXPECT_EQ(reg.snapshot(obs::MetricsFormat::kPrometheus), prom);
}

// ------------------------------------------------- attach invariance

// The acceptance contract: a run with the health layer attached is
// bit-identical (state fingerprint) to the same run without it.
TEST(HealthMonitor, AttachedRunKeepsFingerprintBitIdentical) {
    auto run = [](bool with_health) {
        obs::PipelineFixture fx = obs::build_pipeline({});
        obs::HealthMonitor mon;
        if (with_health) mon.attach(fx.system());
        obs::add_traffic(fx, {});
        fx.system().run_cycles(20'000);
        uint64_t fp = fx.system().state_fingerprint();
        if (with_health) {
            EXPECT_GT(mon.ingress_packets(), 0u);  // it really observed
            mon.detach();
        }
        return fp;
    };
    EXPECT_EQ(run(false), run(true));
}

// --------------------------------------------------------- healthy run

TEST(HealthMonitor, HealthyRunAccountsAndPassesLenientSlo) {
    obs::PipelineFixture fx = obs::build_pipeline({});
    obs::HealthConfig hc;
    hc.epoch_cycles = 4096;
    hc.slo = obs::parse_slo("latency_p99 <= 10ms, drop_rate <= 0.99");
    obs::HealthMonitor mon(hc);
    mon.attach(fx.system());
    obs::add_traffic(fx, {});
    fx.system().run_cycles(20'000);
    mon.flush_epoch();

    EXPECT_GT(mon.ingress_packets(), 100u);
    EXPECT_GT(mon.egress_packets(), 100u);
    EXPECT_GT(mon.egress_bytes(), mon.egress_packets() * 60);
    EXPECT_GT(mon.latency().count(), 0u);
    EXPECT_GT(mon.latency().percentile(0.5), 0u);
    EXPECT_GE(mon.epochs_closed(), 4u);
    EXPECT_EQ(mon.watchdog_trips(), 0u);
    EXPECT_TRUE(mon.slo_ok());
    for (const auto& v : mon.verdicts()) {
        EXPECT_TRUE(v.pass);
        EXPECT_EQ(v.violations, 0u);
        EXPECT_GT(v.end, v.start);
    }

    obs::HealthMonitor::Dump d = mon.dump();
    EXPECT_NE(d.text.find("slo:"), std::string::npos);
    EXPECT_EQ(d.json.front(), '{');
    EXPECT_NE(d.json.find("\"recorder\""), std::string::npos);
    mon.detach();
    EXPECT_FALSE(mon.attached());
}

TEST(HealthMonitor, ImpossibleSloProducesFailedVerdicts) {
    obs::PipelineFixture fx = obs::build_pipeline({});
    obs::HealthConfig hc;
    hc.epoch_cycles = 4096;
    hc.slo = obs::parse_slo("latency_p99 <= 1c");
    obs::HealthMonitor mon(hc);
    mon.attach(fx.system());
    obs::add_traffic(fx, {});
    fx.system().run_cycles(20'000);
    mon.flush_epoch();

    EXPECT_FALSE(mon.slo_ok());
    EXPECT_GT(mon.slo_violations(), 0u);
    bool saw_fail = false;
    for (const auto& v : mon.verdicts()) {
        if (!v.pass) {
            saw_fail = true;
            EXPECT_NE(v.violations & 1u, 0u);  // bound 0 violated
        }
    }
    EXPECT_TRUE(saw_fail);
    mon.detach();
}

// ------------------------------------------------------------- watchdog

// Injected stall: hot-swap a busy-looping image onto one RPU mid-run. The
// per-component liveness watchdog must trip, name the component, and point
// at the deepest-backlog net.
TEST(HealthMonitor, WatchdogTripsOnInjectedFirmwareStall) {
    obs::HealthSpec spec;
    spec.packet_sizes = {512};
    spec.run_cycles = 30'000;
    spec.inject_stall = true;
    spec.stall_rpu = 1;
    spec.stall_at = 5'000;
    spec.health.watchdog.component_timeout = 8'000;
    obs::HealthResult r = obs::run_health(spec);

    EXPECT_TRUE(r.watchdog_tripped);
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_TRUE(r.rows[0].tripped);
    EXPECT_NE(r.trip_summary.find("rpu1"), std::string::npos);
    EXPECT_NE(r.trip_summary.find("deepest="), std::string::npos);
    // The flight dump carries the trip and the stall attribution.
    EXPECT_NE(r.flight_text.find("WATCHDOG TRIP"), std::string::npos);
    EXPECT_NE(r.flight_json.find("watchdog_trip"), std::string::npos);
}

TEST(HealthMonitor, HealthySweepDoesNotTrip) {
    obs::HealthSpec spec;
    spec.packet_sizes = {512};
    spec.run_cycles = 20'000;
    spec.slo = "latency_p99 <= 10ms, drop_rate <= 0.99";
    obs::HealthResult r = obs::run_health(spec);
    EXPECT_FALSE(r.watchdog_tripped);
    EXPECT_TRUE(r.slo_ok);
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_GT(r.rows[0].gbps, 0.0);
    EXPECT_FALSE(r.metrics_prom.empty());
    EXPECT_NE(r.metrics_prom.find("rosebud_health_ingress_packets_total"),
              std::string::npos);
}

// ------------------------------------------------------ host-side query

TEST(HealthMonitor, HostMetricsSnapshotQuery) {
    obs::PipelineFixture fx = obs::build_pipeline({});
    EXPECT_FALSE(fx.system().host().has_metrics_provider());
    EXPECT_TRUE(fx.system().host().metrics_snapshot().empty());

    obs::HealthMonitor mon;
    mon.attach(fx.system());
    obs::add_traffic(fx, {});
    fx.system().run_cycles(10'000);

    EXPECT_TRUE(fx.system().host().has_metrics_provider());
    std::string prom = fx.system().host().metrics_snapshot();
    EXPECT_NE(prom.find("rosebud_health_ingress_packets_total"), std::string::npos);
    EXPECT_NE(prom.find("rosebud_packet_latency_seconds"), std::string::npos);
    std::string json =
        fx.system().host().metrics_snapshot(host::MetricsFormat::kJson);
    EXPECT_EQ(json.front(), '{');

    mon.detach();
    EXPECT_FALSE(fx.system().host().has_metrics_provider());
    EXPECT_TRUE(fx.system().host().metrics_snapshot().empty());
}

// ------------------------------------- telemetry bounded epoch retention

TEST(Telemetry, MaxEpochsCoarsensButConserves) {
    obs::PipelineFixture fx = obs::build_pipeline({});
    obs::Telemetry::Config tc;
    tc.epoch_cycles = 500;
    tc.max_epochs = 4;
    obs::Telemetry telem(tc);
    telem.attach(fx.system());
    obs::add_traffic(fx, {});
    fx.system().run_cycles(20'000);
    telem.detach();

    const auto& epochs = telem.epochs();
    ASSERT_FALSE(epochs.empty());
    EXPECT_LE(epochs.size(), tc.max_epochs);
    // Conservation: the merged series still spans every base epoch, in
    // order, with power-of-two spans and sane fractions.
    uint64_t total_span = 0;
    uint64_t prev_end = 0;
    for (const auto& e : epochs) {
        EXPECT_GT(e.span, 0u);
        EXPECT_GT(e.end_cycle, prev_end);
        prev_end = e.end_cycle;
        total_span += e.span;
        for (const auto& [name, f] : e.busy_frac) {
            EXPECT_GE(f, 0.0) << name;
            EXPECT_LE(f, 1.0) << name;
        }
    }
    // 20k cycles / 500-cycle epochs = 40 base epochs, all accounted for.
    EXPECT_GE(total_span, 32u);
}

// ------------------------------------------- exporter degenerate inputs

TEST(Exporters, ZeroCycleRunProducesValidDocuments) {
    obs::PipelineFixture fx = obs::build_pipeline({});
    PacketTracer tracer;
    tracer.attach(fx.system());
    obs::Telemetry telem;
    telem.attach(fx.system());
    // No cycles at all: exporters must still emit well-formed documents.
    telem.detach();
    std::string trace = obs::trace_json(tracer, &telem);
    EXPECT_NE(trace.find("traceEvents"), std::string::npos);
    obs::VcdWriter vcd;
    std::string dump = vcd.str();
    EXPECT_NE(dump.find("$enddefinitions"), std::string::npos);
}

TEST(Exporters, DetachMidRunThenKeepSimulating) {
    obs::PipelineFixture fx = obs::build_pipeline({});
    obs::Telemetry::Config tc;
    tc.epoch_cycles = 1024;
    tc.capture_vcd = true;
    obs::Telemetry telem(tc);
    telem.attach(fx.system());
    obs::add_traffic(fx, {});
    fx.system().run_cycles(5'000);
    telem.detach();
    // The system must keep running untouched after the detach, and the
    // telemetry captured so far must still export.
    fx.system().run_cycles(5'000);
    EXPECT_FALSE(telem.epochs().empty());
    std::string dump = telem.vcd().str();
    EXPECT_NE(dump.find("$enddefinitions"), std::string::npos);
}

TEST(Exporters, HostileNetNamesAreSanitizedInVcd) {
    obs::VcdWriter vcd;
    int a = vcd.add_signal("evil name.with$dollar", 1);
    int b = vcd.add_signal("9starts.digit", 4);
    int c = vcd.add_signal("..empty", 1);
    vcd.change(0, a, 1);
    vcd.change(0, b, 5);
    vcd.change(0, c, 0);
    std::string dump = vcd.str();
    EXPECT_NE(dump.find("$scope module evil_name $end"), std::string::npos);
    EXPECT_NE(dump.find("with_dollar"), std::string::npos);
    EXPECT_NE(dump.find("$scope module _9starts $end"), std::string::npos);
    EXPECT_NE(dump.find("$var wire 4"), std::string::npos);
    EXPECT_NE(dump.find(" digit "), std::string::npos);
    // Empty path segments become "_" rather than corrupting declarations.
    EXPECT_NE(dump.find("$scope module _ $end"), std::string::npos);
    // No raw '$' may survive inside an identifier (every '$' is a keyword).
    for (size_t pos = dump.find('$'); pos != std::string::npos;
         pos = dump.find('$', pos + 1)) {
        static const char* kw[] = {"$date", "$version", "$timescale", "$scope",
                                   "$upscope", "$var", "$enddefinitions",
                                   "$dumpvars", "$end"};
        bool is_kw = false;
        for (const char* k : kw)
            if (dump.compare(pos, std::string(k).size(), k) == 0) is_kw = true;
        EXPECT_TRUE(is_kw) << "stray '$' at offset " << pos;
    }
}

}  // namespace
}  // namespace rosebud
