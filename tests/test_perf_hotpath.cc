/// Hot-path allocation audit (the perf contract behind the fast kernel).
///
/// The tick/commit path must not touch the heap: per-cycle work runs tens
/// of millions of times per benchmark, so a single stray allocation (a
/// string-keyed stats lookup, a per-cycle temporary vector) dominates host
/// time. This binary overrides global operator new with a counter and
/// asserts:
///  * an idle steady-state system (idle skipping disabled, so every
///    component really ticks every cycle) performs ZERO allocations;
///  * under traffic, allocations are bounded per *packet* (payload buffers,
///    shared_ptr control blocks), never per cycle.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "core/system.h"
#include "firmware/programs.h"
#include "net/tracegen.h"
#include "obs/health.h"

namespace {

std::atomic<uint64_t> g_allocs{0};
std::atomic<bool> g_counting{false};

void
count_alloc() {
    if (g_counting.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void*
operator new(std::size_t n) {
    count_alloc();
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t n) {
    count_alloc();
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rosebud {
namespace {

std::unique_ptr<System>
make_forwarder_system(unsigned rpus) {
    SystemConfig cfg;
    cfg.rpu_count = rpus;
    auto sys = std::make_unique<System>(cfg);
    auto fw = fwlib::forwarder();
    sys->host().load_firmware_all(fw.image, fw.entry);
    sys->host().boot_all();
    return sys;
}

TEST(HotPath, IdleSteadyStateAllocatesNothing) {
    auto sys = make_forwarder_system(4);
    // Disable idle skipping so every component's tick()/commit() really
    // executes every cycle — the audit must cover the full per-cycle path,
    // not the fast-forwarded one.
    sys->kernel().set_idle_skip(false);
    sys->run_cycles(2000);  // warm-up: lazily sized buffers, stats handles

    g_allocs.store(0);
    g_counting.store(true);
    sys->run_cycles(5000);
    g_counting.store(false);

    EXPECT_EQ(g_allocs.load(), 0u)
        << "per-cycle tick/commit path touched the heap";
}

TEST(HotPath, TrafficAllocationsAreBoundedPerPacket) {
    auto sys = make_forwarder_system(4);

    net::TrafficSpec tspec;
    tspec.packet_size = 512;
    tspec.seed = 31;
    auto gen = std::make_shared<net::TraceGenerator>(tspec, nullptr, nullptr);
    sys->add_source({.port = 0, .line_gbps = 100.0, .load = 0.5},
                    [gen] { return gen->next(); });
    sys->run_cycles(10'000);  // steady state

    // The forwarder firmware cross-forwards: traffic offered on port 0
    // egresses on port 1.
    uint64_t frames_before = sys->sink(0).frames() + sys->sink(1).frames();
    g_allocs.store(0);
    g_counting.store(true);
    sys->run_cycles(20'000);
    g_counting.store(false);
    uint64_t packets =
        sys->sink(0).frames() + sys->sink(1).frames() - frames_before;

    ASSERT_GT(packets, 100u);  // the workload actually flowed
    // Generous per-packet budget (payload buffer, control block, queue
    // churn). What this catches is per-cycle growth: 20k cycles at even
    // one allocation per cycle would blow this bound several times over.
    EXPECT_LT(g_allocs.load(), packets * 64)
        << "allocations grew with cycles, not packets ("
        << g_allocs.load() << " allocs for " << packets << " packets)";
}

// The production health layer's cost contract: attaching it must not add
// heap traffic to the steady-state path. Its per-packet/per-cycle work
// lands in preallocated PODs (flight-recorder ring, HDR histogram buckets,
// open-addressed in-flight table); allocation is reserved for rare events
// (trips, notes, epoch verdicts).
TEST(HotPath, IdleSteadyStateWithHealthAttachedAllocatesNothing) {
    auto sys = make_forwarder_system(4);
    obs::HealthMonitor mon;
    mon.attach(*sys);
    sys->kernel().set_idle_skip(false);
    sys->run_cycles(2000);  // warm-up, same as the detached audit

    g_allocs.store(0);
    g_counting.store(true);
    sys->run_cycles(5000);
    g_counting.store(false);

    EXPECT_EQ(g_allocs.load(), 0u)
        << "health layer touched the heap on the idle per-cycle path";
    mon.detach();
}

TEST(HotPath, TrafficWithHealthAttachedStaysBoundedPerPacket) {
    auto sys = make_forwarder_system(4);
    obs::HealthMonitor mon;
    mon.attach(*sys);

    net::TrafficSpec tspec;
    tspec.packet_size = 512;
    tspec.seed = 31;
    auto gen = std::make_shared<net::TraceGenerator>(tspec, nullptr, nullptr);
    sys->add_source({.port = 0, .line_gbps = 100.0, .load = 0.5},
                    [gen] { return gen->next(); });
    sys->run_cycles(10'000);  // steady state

    uint64_t frames_before = sys->sink(0).frames() + sys->sink(1).frames();
    g_allocs.store(0);
    g_counting.store(true);
    sys->run_cycles(20'000);
    g_counting.store(false);
    uint64_t packets =
        sys->sink(0).frames() + sys->sink(1).frames() - frames_before;

    ASSERT_GT(packets, 100u);
    EXPECT_GT(mon.ingress_packets(), 100u);  // the monitor really observed
    // Same per-packet budget as the detached audit: the health layer's
    // per-packet cost must be allocation-free, so the bound does not move.
    EXPECT_LT(g_allocs.load(), packets * 64)
        << "health layer allocations grew with cycles, not packets ("
        << g_allocs.load() << " allocs for " << packets << " packets)";
    mon.detach();
}

}  // namespace
}  // namespace rosebud
