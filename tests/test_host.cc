/// Host control-plane tests: memory access, debug channel, virtual
/// Ethernet, and the full partial-reconfiguration flow (drain, swap,
/// boot, resume) with its ~756 ms timing and no-pause property.

#include <gtest/gtest.h>

#include <memory>

#include "accel/firewall.h"
#include "core/system.h"
#include "firmware/programs.h"
#include "net/headers.h"
#include "rpu/descriptor.h"
#include "rv/assembler.h"

namespace rosebud {
namespace {

using namespace rosebud::rv;

SystemConfig
cfg4() {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    return cfg;
}

TEST(Host, MemoryReadWriteRoundTrip) {
    System sys(cfg4());
    std::vector<uint8_t> table = {1, 2, 3, 4, 5, 6, 7, 8};
    sys.host().write_memory(2, rpu::kPmemBase + 0x8000, table);
    EXPECT_EQ(sys.host().read_memory(2, rpu::kPmemBase + 0x8000, 8), table);
    sys.host().write_memory(2, rpu::kDmemBase + 64, table);
    EXPECT_EQ(sys.host().read_memory(2, rpu::kDmemBase + 64, 8), table);
    sys.host().write_memory(2, rpu::kAmemBase, table);
    EXPECT_EQ(sys.host().read_memory(2, rpu::kAmemBase, 8), table);
}

TEST(Host, UnmappedMemoryAccessIsFatal) {
    System sys(cfg4());
    EXPECT_THROW(sys.host().write_memory(0, 0x09000000, {1}), sim::FatalError);
    EXPECT_THROW(sys.host().read_memory(0, 0x09000000, 4), sim::FatalError);
}

TEST(Host, PreloadedTableVisibleToFirmware) {
    // The Pigasus-port capability: the host fills accelerator lookup
    // memory before boot; firmware reads it back.
    System sys(cfg4());
    sys.host().write_memory(0, rpu::kAmemBase + 0x100, {0xef, 0xbe, 0xad, 0xde});

    rv::Assembler a;
    a.lui(gp, 0x2000);
    a.lui(t0, 0x1800);  // AMEM base
    a.lw(t1, 0x100, t0);
    a.sw(t1, rpu::kRegDebugLow, gp);
    a.ebreak();
    sys.host().load_firmware(0, a.assemble());
    sys.host().boot(0);
    sys.run_cycles(100);
    EXPECT_EQ(sys.host().debug_low(0), 0xdeadbeefu);
}

TEST(Host, CountersExposeTraffic) {
    System sys(cfg4());
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(300);
    net::PacketBuilder b;
    b.ipv4(1, 2).udp(3, 4).frame_size(128);
    ASSERT_TRUE(sys.fabric().mac_rx(0, b.build()));
    sys.run_cycles(2000);
    EXPECT_EQ(sys.host().counter("port0.rx_frames"), 1u);
    EXPECT_EQ(sys.host().counter("port1.tx_frames"), 1u);
    EXPECT_EQ(sys.host().counter("lb.assigned"), 1u);
}

TEST(Host, VirtualEthernetInjection) {
    System sys(cfg4());
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(300);
    net::PacketBuilder b;
    b.ipv4(1, 2).udp(3, 4).frame_size(256);
    auto p = b.build();
    p->out_iface = net::Iface::kPort0;
    ASSERT_TRUE(sys.host().inject(p));
    sys.run_cycles(3000);
    // Host-injected packets arrive with port=2 in the descriptor; the
    // forwarder XORs the low port bit -> port 3 (loopback) -> relayed once
    // more and eventually forwarded out a physical port.
    EXPECT_EQ(sys.host().counter("host.tx_frames"), 1u);
}

TEST(HostPr, ReconfigureTimingMatchesPaper) {
    System sys(cfg4());
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(300);

    sim::Rng rng(4);
    auto t = sys.host().reconfigure(1, nullptr, fw.image, fw.entry, rng);
    // Paper Section 4.1: pause + load + boot averages 756 ms.
    EXPECT_NEAR(t.total_ms, 756.0, 756.0 * 0.08);
    EXPECT_GT(t.bitstream_ms, 700.0);
    EXPECT_LT(t.drain_us, 100.0);
    EXPECT_TRUE(sys.rpu(1).slot_config().count > 0);
    EXPECT_EQ(sys.lb().recv_mask() & 0xf, 0xfu);  // traffic resumed
}

TEST(HostPr, AverageOverManyLoadsNear756ms) {
    System sys(cfg4());
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(300);
    sim::Rng rng(99);
    double total = 0;
    const int kLoads = 20;  // the paper averaged 320; 20 keeps tests fast
    for (int i = 0; i < kLoads; ++i) {
        total += sys.host().reconfigure(i % 4u, nullptr, fw.image, fw.entry, rng).total_ms;
    }
    EXPECT_NEAR(total / kLoads, 756.0, 40.0);
}

TEST(HostPr, SwapsAcceleratorAndFirmwareAtRuntime) {
    // Start as a forwarder, reconfigure RPU 0 into a firewall, verify the
    // new behaviour.
    System sys(cfg4());
    auto fwd = fwlib::forwarder();
    sys.host().load_firmware_all(fwd.image, fwd.entry);
    sys.host().boot_all();
    sys.run_cycles(300);

    sim::Rng rng(5);
    net::Blacklist bl;
    bl.add(net::parse_ipv4_addr("66.66.66.66"));
    auto fw_prog = fwlib::firewall();
    sys.host().reconfigure(
        0, [&] { return std::make_unique<accel::FirewallMatcher>(bl); }, fw_prog.image,
        fw_prog.entry, rng);

    // Force traffic to the reconfigured RPU only.
    sys.host().set_recv_mask(0x1);
    net::PacketBuilder bad;
    bad.ipv4(net::parse_ipv4_addr("66.66.66.66"), 2).tcp(1, 2).frame_size(128);
    net::PacketBuilder good;
    good.ipv4(net::parse_ipv4_addr("10.1.1.1"), 2).tcp(1, 2).frame_size(128);
    ASSERT_TRUE(sys.fabric().mac_rx(0, bad.build()));
    ASSERT_TRUE(sys.fabric().mac_rx(0, good.build()));
    sys.run_cycles(3000);
    EXPECT_EQ(sys.sink(1).frames(), 1u);
    EXPECT_EQ(sys.stats().get("rpu0.dropped_packets"), 1u);
}

TEST(HostPr, OtherRpusKeepForwardingDuringDrain) {
    // The "no-pause reconfiguration" property: while RPU 0 is being
    // drained and swapped, traffic keeps flowing through the others.
    System sys(cfg4());
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(300);

    // Background traffic source.
    auto gen = [n = uint64_t(0)]() mutable {
        net::PacketBuilder b;
        b.ipv4(0x0a000001, 0x0a000002).udp(1, 2).frame_size(256);
        auto p = b.build();
        p->id = n++;
        return p;
    };
    sys.add_source({.port = 0, .line_gbps = 100.0, .load = 0.2}, gen);
    sys.run_cycles(5000);
    uint64_t before = sys.sink(1).frames();

    sim::Rng rng(6);
    sys.host().reconfigure(0, nullptr, fw.image, fw.entry, rng);
    uint64_t after = sys.sink(1).frames();
    EXPECT_GT(after, before);  // packets flowed during the drain window

    sys.run_cycles(5000);
    // The reconfigured RPU receives again.
    uint64_t rpu0_rx = sys.stats().get("rpu0.rx_packets");
    sys.run_cycles(20000);
    EXPECT_GT(sys.stats().get("rpu0.rx_packets"), rpu0_rx);
}

TEST(Host, PokeWakesSpinWaitFirmware) {
    // The paper's debugging flow: firmware spin-waits, the host pokes it,
    // firmware dumps state to the debug channel.
    System sys(cfg4());
    rv::Assembler a;
    a.lui(gp, 0x2000);
    a.li(t0, 0x30);
    a.sw(t0, rpu::kRegIrqMask, gp);
    a.label("spin");
    a.lw(t1, rpu::kRegIrqStatus, gp);
    a.beqz(t1, "spin");
    a.li(t2, 0x600d);
    a.sw(t2, rpu::kRegDebugLow, gp);
    a.ebreak();
    sys.host().load_firmware(0, a.assemble());
    sys.host().boot(0);
    sys.run_cycles(100);
    EXPECT_EQ(sys.host().debug_low(0), 0u);
    sys.host().poke(0);
    sys.run_cycles(100);
    EXPECT_EQ(sys.host().debug_low(0), 0x600du);
}

}  // namespace
}  // namespace rosebud
