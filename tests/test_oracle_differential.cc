/// Differential sweep: every supported (pipeline, rpu_count, lb_policy,
/// traffic, seed) combination runs seeded random traffic through the full
/// cycle-level system with the golden-oracle scoreboard attached, and
/// must finish with zero divergences and every packet accounted for.
/// Deliberately corrupted runs (wrong oracle blacklist, an RPU halted
/// mid-run) must conversely *produce* divergences, proving the scoreboard
/// actually detects mismatches and reports them usefully.

#include <gtest/gtest.h>

#include "net/rules.h"
#include "oracle/harness.h"

using rosebud::System;
using rosebud::oracle::Pipeline;
using rosebud::oracle::RunResult;
using rosebud::oracle::RunSpec;
using rosebud::oracle::run_differential;

namespace lb = rosebud::lb;
namespace net = rosebud::net;
namespace sim = rosebud::sim;

namespace {

std::string
policy_name(lb::Policy p) {
    switch (p) {
    case lb::Policy::kRoundRobin: return "rr";
    case lb::Policy::kHash: return "hash";
    case lb::Policy::kLeastLoaded: return "ll";
    default: return "custom";
    }
}

/// The sweep: >= 20 distinct (config, seed) combinations covering every
/// supported pipeline/policy pair, several RPU counts, the hardware
/// reassembler, reordered TCP, attack traffic, and multiple seeds.
std::vector<RunSpec>
make_sweep() {
    std::vector<RunSpec> specs;
    uint64_t seed = 9000;

    // Forwarder: all three static policies x two fabric sizes.
    for (lb::Policy pol :
         {lb::Policy::kRoundRobin, lb::Policy::kHash, lb::Policy::kLeastLoaded}) {
        for (unsigned rpus : {4u, 8u}) {
            RunSpec s;
            s.pipeline = Pipeline::kForwarder;
            s.policy = pol;
            s.rpu_count = rpus;
            s.seed = ++seed;
            specs.push_back(s);
        }
    }

    // Forwarder at 16 RPUs, jumbo-ish frames.
    {
        RunSpec s;
        s.pipeline = Pipeline::kForwarder;
        s.rpu_count = 16;
        s.packet_size = 1024;
        s.max_packets = 150;
        s.seed = ++seed;
        specs.push_back(s);
    }

    // Firewall: blacklisted + non-IP drops in the mix, two seeds per policy.
    for (lb::Policy pol : {lb::Policy::kRoundRobin, lb::Policy::kLeastLoaded}) {
        for (int i = 0; i < 2; ++i) {
            RunSpec s;
            s.pipeline = Pipeline::kFirewall;
            s.policy = pol;
            s.attack_fraction = 0.25;
            s.seed = ++seed;
            specs.push_back(s);
        }
    }

    // Pigasus, hardware reorder: attacks + reordered TCP, with and
    // without the inline reassembler.
    for (lb::Policy pol : {lb::Policy::kRoundRobin, lb::Policy::kLeastLoaded}) {
        RunSpec s;
        s.pipeline = Pipeline::kPigasusHwReorder;
        s.policy = pol;
        s.attack_fraction = 0.2;
        s.reorder_fraction = 0.03;
        s.seed = ++seed;
        specs.push_back(s);
    }
    {
        RunSpec s;
        s.pipeline = Pipeline::kPigasusHwReorder;
        s.hw_reassembler = true;
        s.attack_fraction = 0.2;
        s.reorder_fraction = 0.05;
        s.seed = ++seed;
        specs.push_back(s);
    }

    // Pigasus, software reorder (hash policy only): the punt paths fire
    // under reordering; three seeds.
    for (int i = 0; i < 3; ++i) {
        RunSpec s;
        s.pipeline = Pipeline::kPigasusSwReorder;
        s.policy = lb::Policy::kHash;
        s.attack_fraction = 0.2;
        s.reorder_fraction = 0.05;
        s.seed = ++seed;
        specs.push_back(s);
    }

    // NAT: outbound translation plus external pass-through, all policies.
    for (lb::Policy pol :
         {lb::Policy::kRoundRobin, lb::Policy::kHash, lb::Policy::kLeastLoaded}) {
        RunSpec s;
        s.pipeline = Pipeline::kNat;
        s.policy = pol;
        s.attack_fraction = 0.3;  // external sources -> pass-through path
        s.seed = ++seed;
        specs.push_back(s);
    }

    // Small frames at high load: congestion drops must be tolerated.
    {
        RunSpec s;
        s.pipeline = Pipeline::kForwarder;
        s.rpu_count = 4;
        s.packet_size = 64;
        s.load = 1.0;
        s.max_packets = 400;
        s.seed = ++seed;
        specs.push_back(s);
    }
    // Extra seeds on the two paper case studies.
    for (int i = 0; i < 2; ++i) {
        RunSpec s;
        s.pipeline = Pipeline::kFirewall;
        s.rpu_count = 16;
        s.attack_fraction = 0.4;
        s.seed = ++seed;
        specs.push_back(s);
        RunSpec t;
        t.pipeline = Pipeline::kPigasusHwReorder;
        t.rpu_count = 16;
        t.attack_fraction = 0.1;
        t.seed = ++seed;
        specs.push_back(t);
    }
    return specs;
}

std::string
spec_name(const testing::TestParamInfo<RunSpec>& info) {
    const RunSpec& s = info.param;
    std::string n = rosebud::oracle::pipeline_name(s.pipeline);
    for (auto& c : n) {
        if (c == '-') c = '_';
    }
    n += "_" + policy_name(s.policy) + "_r" + std::to_string(s.rpu_count) + "_s" +
         std::to_string(s.seed) + "_" + std::to_string(info.index);
    return n;
}

}  // namespace

class OracleDifferential : public testing::TestWithParam<RunSpec> {};

TEST_P(OracleDifferential, ZeroDivergences) {
    RunResult res = run_differential(GetParam());
    EXPECT_TRUE(res.ok) << res.report;
    EXPECT_EQ(res.counts.divergences, 0u) << res.report;
    EXPECT_GT(res.counts.offered, 0u);
    // Conservation: every offered packet reached exactly one terminal.
    EXPECT_EQ(res.counts.offered,
              res.counts.forwarded_wire + res.counts.host_delivered +
                  res.counts.fw_dropped + res.counts.congestion_dropped);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OracleDifferential, testing::ValuesIn(make_sweep()),
                         spec_name);

// --- divergence detection (deliberately corrupted runs) ---------------------

TEST(OracleDivergence, CorruptedOracleBlacklistIsDetected) {
    // Give the oracle a *different* blacklist than the device: packets the
    // device drops look like false drops, packets it forwards look like
    // missed drops. The scoreboard must notice and the report must carry
    // usable context.
    sim::Rng rng(4242);
    net::Blacklist wrong = net::Blacklist::synthesize(48, rng);

    RunSpec s;
    s.pipeline = Pipeline::kFirewall;
    s.attack_fraction = 0.5;
    s.seed = 77;
    s.oracle_blacklist = &wrong;
    RunResult res = run_differential(s);

    EXPECT_FALSE(res.ok);
    EXPECT_GT(res.counts.divergences, 0u);
    EXPECT_NE(res.report.find("divergence #1"), std::string::npos) << res.report;
    EXPECT_NE(res.report.find("input frame"), std::string::npos) << res.report;
    EXPECT_NE(res.report.find("predicted"), std::string::npos) << res.report;
}

TEST(OracleDivergence, HaltedRpuShowsUpAsStuckPackets) {
    RunSpec s;
    s.pipeline = Pipeline::kForwarder;
    s.rpu_count = 4;
    s.seed = 99;
    s.load = 0.5;
    s.max_packets = 400;
    s.run_cycles = 2'000;  // the halt (at run_cycles/2) lands mid-traffic
    s.drain_rounds = 5;    // don't wait forever for packets that can't drain
    s.mid_run = [](System& sys) { sys.rpu(1).halt(); };
    RunResult res = run_differential(s);

    EXPECT_FALSE(res.ok);
    EXPECT_GT(res.counts.divergences, 0u);
    EXPECT_NE(res.report.find("stuck-packet"), std::string::npos) << res.report;
}

// --- determinism ------------------------------------------------------------

TEST(OracleDeterminism, IdenticalSeedsProduceIdenticalOutputBytes) {
    RunSpec s;
    s.pipeline = Pipeline::kPigasusHwReorder;
    s.attack_fraction = 0.2;
    s.seed = 31337;
    RunResult a = run_differential(s);
    RunResult b = run_differential(s);
    ASSERT_TRUE(a.ok) << a.report;
    ASSERT_TRUE(b.ok) << b.report;
    EXPECT_EQ(a.counts.output_byte_hash, b.counts.output_byte_hash);
    EXPECT_EQ(a.counts.forwarded_wire, b.counts.forwarded_wire);
    EXPECT_EQ(a.counts.host_delivered, b.counts.host_delivered);

    RunSpec s2 = s;
    s2.seed = 31338;
    RunResult c = run_differential(s2);
    ASSERT_TRUE(c.ok) << c.report;
    EXPECT_NE(a.counts.output_byte_hash, c.counts.output_byte_hash);
}
