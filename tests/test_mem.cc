/// Memory model tests: endianness, sized accessors, block transfers,
/// bounds enforcement, and footprint accounting.

#include <gtest/gtest.h>

#include "mem/memory.h"

namespace rosebud::mem {
namespace {

TEST(Memory, LittleEndianLayout) {
    Memory m("m", 64);
    m.write32(0, 0x11223344);
    EXPECT_EQ(m.read8(0), 0x44);
    EXPECT_EQ(m.read8(1), 0x33);
    EXPECT_EQ(m.read8(2), 0x22);
    EXPECT_EQ(m.read8(3), 0x11);
    EXPECT_EQ(m.read16(0), 0x3344);
    EXPECT_EQ(m.read16(2), 0x1122);
}

TEST(Memory, SizedWritesCompose) {
    Memory m("m", 64);
    m.write8(0, 0xaa);
    m.write8(1, 0xbb);
    m.write16(2, 0xddcc);
    EXPECT_EQ(m.read32(0), 0xddccbbaau);
}

TEST(Memory, UnalignedAccessWorks) {
    Memory m("m", 64);
    m.write32(1, 0xcafebabe);
    EXPECT_EQ(m.read32(1), 0xcafebabeu);
    EXPECT_EQ(m.read16(3), 0xcafeu);  // bytes [3],[4] = 0xfe, 0xca
}

TEST(Memory, BlockRoundTrip) {
    Memory m("m", 256);
    std::vector<uint8_t> in(100);
    for (size_t i = 0; i < in.size(); ++i) in[i] = uint8_t(i * 3);
    m.write_block(10, in.data(), uint32_t(in.size()));
    std::vector<uint8_t> out(100);
    m.read_block(10, out.data(), uint32_t(out.size()));
    EXPECT_EQ(in, out);
}

TEST(Memory, FillResets) {
    Memory m("m", 16);
    m.write32(0, 0xffffffff);
    m.fill(0);
    EXPECT_EQ(m.read32(0), 0u);
}

using MemoryDeath = Memory;

TEST(Memory, OutOfBoundsPanics) {
    Memory m("m", 16);
    EXPECT_DEATH(m.read32(13), "out-of-bounds");
    EXPECT_DEATH(m.write32(16, 1), "out-of-bounds");
    EXPECT_DEATH(m.read8(16), "out-of-bounds");
    uint8_t buf[8];
    EXPECT_DEATH(m.read_block(12, buf, 8), "out-of-bounds");
}

TEST(Memory, BoundaryAccessesAllowed) {
    Memory m("m", 16);
    m.write32(12, 0x12345678);
    EXPECT_EQ(m.read32(12), 0x12345678u);
    m.write8(15, 0xff);
    EXPECT_EQ(m.read8(15), 0xff);
}

TEST(Footprints, BramBlocksFromBytes) {
    EXPECT_EQ(bram_footprint(4096).bram, 1u);
    EXPECT_EQ(bram_footprint(4097).bram, 2u);
    EXPECT_EQ(bram_footprint(96 * 1024).bram, 24u);  // IMEM+DMEM of an RPU
    EXPECT_EQ(bram_footprint(4096).uram, 0u);
}

TEST(Footprints, UramBlocksFromBytes) {
    EXPECT_EQ(uram_footprint(32 * 1024).uram, 1u);
    EXPECT_EQ(uram_footprint(1024 * 1024).uram, 32u);  // an RPU's packet memory
    EXPECT_EQ(uram_footprint(32 * 1024).bram, 0u);
}

TEST(Latencies, OrderingMatchesArchitecture) {
    // URAM (packet memory) is slower than BRAM; MMIO costs a bus crossing.
    EXPECT_GT(kUramLoadCycles, kBramLoadCycles);
    EXPECT_GT(kMmioLoadCycles, kBramLoadCycles);
    EXPECT_GT(kUramStoreCycles, kBramStoreCycles);
}

}  // namespace
}  // namespace rosebud::mem
