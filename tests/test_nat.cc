/// NAT engine tests: translation correctness (checksums verified),
/// mapping stability, port-space partitioning, table exhaustion, and the
/// full-system demo path with the custom LB policy.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "accel/nat.h"
#include "core/system.h"
#include "firmware/programs.h"
#include "mem/memory.h"
#include "net/headers.h"
#include "net/flow.h"
#include "sim/stats.h"

namespace rosebud::accel {
namespace {

struct NatRig {
    mem::Memory pmem{"pmem", 1024 * 1024};
    mem::Memory amem{"amem", 256 * 1024};
    sim::Stats stats;
    uint64_t now = 0;
    NatEngine nat;

    explicit NatRig(NatEngine::Params p = NatEngine::Params{}) : nat(p) {}

    /// Run one packet through the engine in place at pmem offset `off`.
    uint32_t run(net::PacketPtr pkt, uint32_t off = 0x2000) {
        pmem.write_block(off, pkt->data.data(), pkt->size());
        rpu::AccelContext ctx{pmem, amem, stats, now};
        nat.mmio_write(kNatRegAddr, 0x01000000 + off, ctx);
        nat.mmio_write(kNatRegLen, pkt->size(), ctx);
        nat.mmio_write(kNatRegSlot, 1, ctx);
        nat.mmio_write(kNatRegCtrl, 1, ctx);
        for (int i = 0; i < 20; ++i) {
            ++now;
            rpu::AccelContext c{pmem, amem, stats, now};
            nat.tick(c);
        }
        uint32_t result = 0;
        rpu::AccelContext c{pmem, amem, stats, now};
        nat.mmio_read(kNatRegResult, result, c);
        nat.mmio_write(kNatRegPop, 0, c);
        pmem.read_block(off, pkt->data.data(), pkt->size());
        return result;
    }
};

net::PacketPtr
tcp(const char* src, const char* dst, uint16_t sport, uint16_t dport) {
    net::PacketBuilder b;
    b.ipv4(net::parse_ipv4_addr(src), net::parse_ipv4_addr(dst)).tcp(sport, dport);
    b.frame_size(128);
    return b.build();
}

TEST(Nat, OutboundRewritesSourceWithValidChecksum) {
    NatRig rig;
    auto p = tcp("10.1.2.3", "8.8.8.8", 5555, 443);
    EXPECT_EQ(rig.run(p), kNatTranslated);
    auto parsed = net::parse_packet(*p);
    EXPECT_EQ(parsed->ipv4.src_ip, rig.nat.params().external_ip);
    EXPECT_EQ(parsed->tcp.src_port, rig.nat.params().port_base);
    EXPECT_EQ(parsed->ipv4.dst_ip, net::parse_ipv4_addr("8.8.8.8"));
    EXPECT_EQ(parsed->tcp.dst_port, 443);
    // IPv4 header checksum still verifies after the incremental fixups.
    EXPECT_EQ(net::internet_checksum(p->data.data() + 14, 20), 0);
}

TEST(Nat, MappingIsStableAcrossPackets) {
    NatRig rig;
    auto p1 = tcp("10.1.2.3", "8.8.8.8", 5555, 443);
    auto p2 = tcp("10.1.2.3", "9.9.9.9", 5555, 80);
    rig.run(p1);
    rig.run(p2);
    auto a = net::parse_packet(*p1);
    auto b = net::parse_packet(*p2);
    EXPECT_EQ(a->tcp.src_port, b->tcp.src_port);  // same internal endpoint
    EXPECT_EQ(rig.nat.mapping_count(), 1u);
}

TEST(Nat, DistinctFlowsGetDistinctPorts) {
    NatRig rig;
    std::set<uint16_t> ports;
    for (uint16_t sport = 1000; sport < 1050; ++sport) {
        auto p = tcp("10.1.2.3", "8.8.8.8", sport, 443);
        EXPECT_EQ(rig.run(p), kNatTranslated);
        ports.insert(net::parse_packet(*p)->tcp.src_port);
    }
    EXPECT_EQ(ports.size(), 50u);
    EXPECT_EQ(rig.nat.mapping_count(), 50u);
}

TEST(Nat, InboundReverseTranslation) {
    NatRig rig;
    auto out = tcp("10.1.2.3", "8.8.8.8", 5555, 443);
    rig.run(out);
    uint16_t ext = net::parse_packet(*out)->tcp.src_port;

    auto in = tcp("8.8.8.8", "198.51.100.1", 443, ext);
    EXPECT_EQ(rig.run(in), kNatTranslated);
    auto parsed = net::parse_packet(*in);
    EXPECT_EQ(parsed->ipv4.dst_ip, net::parse_ipv4_addr("10.1.2.3"));
    EXPECT_EQ(parsed->tcp.dst_port, 5555);
    EXPECT_EQ(net::internet_checksum(in->data.data() + 14, 20), 0);
}

TEST(Nat, UnsolicitedInboundDropped) {
    NatRig rig;
    auto in = tcp("8.8.8.8", "198.51.100.1", 443, 23456);
    EXPECT_EQ(rig.run(in), kNatDropped);
    EXPECT_EQ(rig.stats.get("nat.no_mapping"), 1u);
}

TEST(Nat, ExternalToExternalPassesThrough) {
    NatRig rig;
    auto p = tcp("8.8.8.8", "9.9.9.9", 1, 2);
    std::vector<uint8_t> before = p->data;
    EXPECT_EQ(rig.run(p), kNatPassThrough);
    EXPECT_EQ(p->data, before);  // untouched
}

TEST(Nat, NonIpPassesThrough) {
    NatRig rig;
    auto p = net::make_packet(64);
    p->data[12] = 0x08;
    p->data[13] = 0x06;  // ARP
    EXPECT_EQ(rig.run(p), kNatPassThrough);
}

TEST(Nat, TableExhaustionDrops) {
    NatEngine::Params small;
    small.port_count = 4;
    NatRig rig(small);
    for (uint16_t s = 1; s <= 4; ++s) {
        EXPECT_EQ(rig.run(tcp("10.0.0.1", "8.8.8.8", s, 80)), kNatTranslated);
    }
    EXPECT_EQ(rig.run(tcp("10.0.0.1", "8.8.8.8", 99, 80)), kNatDropped);
    EXPECT_EQ(rig.stats.get("nat.table_full"), 1u);
}

TEST(Nat, PortSliceRespectsStrideAndOffset) {
    NatEngine::Params p;
    p.port_stride = 4;
    p.port_offset = 2;
    NatRig rig(p);
    for (uint16_t s = 1; s <= 8; ++s) {
        auto pkt = tcp("10.0.0.1", "8.8.8.8", s, 80);
        rig.run(pkt);
        uint16_t ext = net::parse_packet(*pkt)->tcp.src_port;
        EXPECT_EQ((ext - p.port_base) % 4, 2u) << ext;
    }
}

TEST(Nat, UdpTranslatedToo) {
    NatRig rig;
    net::PacketBuilder b;
    b.ipv4(net::parse_ipv4_addr("10.5.5.5"), net::parse_ipv4_addr("8.8.4.4"))
        .udp(1111, 53)
        .frame_size(96);
    auto p = b.build();
    EXPECT_EQ(rig.run(p), kNatTranslated);
    auto parsed = net::parse_packet(*p);
    EXPECT_EQ(parsed->ipv4.src_ip, rig.nat.params().external_ip);
    EXPECT_EQ(parsed->udp.src_port, rig.nat.params().port_base);
}

TEST(Nat, ResetClearsState) {
    NatRig rig;
    rig.run(tcp("10.1.2.3", "8.8.8.8", 5555, 443));
    EXPECT_EQ(rig.nat.mapping_count(), 1u);
    rig.nat.reset();
    EXPECT_EQ(rig.nat.mapping_count(), 0u);
}

TEST(NatSystem, FullRoundTripThroughTheMiddlebox) {
    // The nat_demo path as a regression test: custom LB policy with
    // port-sliced engines, outbound + inbound through real firmware.
    const unsigned kRpus = 4;
    NatEngine::Params base;
    SystemConfig cfg;
    cfg.rpu_count = kRpus;
    cfg.lb_policy = lb::Policy::kCustom;
    cfg.lb_custom_steer = [base](const net::Packet& pkt) -> uint32_t {
        auto parsed = net::parse_packet(pkt);
        if (!parsed || !parsed->has_ipv4) return ~0u;
        if (parsed->ipv4.dst_ip == base.external_ip) {
            uint16_t dport = parsed->has_tcp ? parsed->tcp.dst_port : parsed->udp.dst_port;
            return 1u << ((dport - base.port_base) % kRpus);
        }
        return 1u << (net::packet_flow_hash(pkt) % kRpus);
    };
    System sys(cfg);
    for (unsigned i = 0; i < kRpus; ++i) {
        NatEngine::Params p = base;
        p.port_stride = uint16_t(kRpus);
        p.port_offset = uint16_t(i);
        sys.rpu(i).attach_accelerator(std::make_unique<NatEngine>(p));
    }
    auto fw = fwlib::nat();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);

    net::PacketPtr out_pkt;
    sys.fabric().set_mac_tx_sink(1, [&](net::PacketPtr p) { out_pkt = p; });
    ASSERT_TRUE(sys.fabric().mac_rx(0, tcp("10.1.2.3", "8.8.8.8", 5555, 443)));
    sys.run_cycles(3000);
    ASSERT_NE(out_pkt, nullptr);
    auto parsed = net::parse_packet(*out_pkt);
    ASSERT_TRUE(parsed && parsed->has_tcp);
    EXPECT_EQ(parsed->ipv4.src_ip, base.external_ip);
    uint16_t ext = parsed->tcp.src_port;

    net::PacketPtr back;
    sys.fabric().set_mac_tx_sink(0, [&](net::PacketPtr p) { back = p; });
    ASSERT_TRUE(sys.fabric().mac_rx(1, tcp("8.8.8.8", "198.51.100.1", 443, ext)));
    sys.run_cycles(3000);
    ASSERT_NE(back, nullptr);
    auto rp = net::parse_packet(*back);
    EXPECT_EQ(rp->ipv4.dst_ip, net::parse_ipv4_addr("10.1.2.3"));
    EXPECT_EQ(rp->tcp.dst_port, 5555);
}

}  // namespace
}  // namespace rosebud::accel
