/// Accelerator tests: the firewall IP matcher (two-stage lookup verified
/// against the blacklist reference over random probes) and the Pigasus
/// string/port matcher (functional matching cross-validated against the
/// software baseline, the MMIO job protocol, timing, and runtime rule
/// reload).

#include <gtest/gtest.h>

#include "accel/firewall.h"
#include "accel/pigasus.h"
#include "baseline/snort_model.h"
#include "mem/memory.h"
#include "net/tracegen.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace rosebud::accel {
namespace {

struct FakeRpu {
    mem::Memory pmem{"pmem", 1024 * 1024};
    mem::Memory amem{"amem", 256 * 1024};
    sim::Stats stats;
    uint64_t now = 0;

    rpu::AccelContext ctx() { return {pmem, amem, stats, now}; }

    void tick(rpu::Accelerator& a, unsigned cycles = 1) {
        for (unsigned i = 0; i < cycles; ++i) {
            ++now;
            auto c = ctx();
            a.tick(c);
        }
    }

    uint32_t read(rpu::Accelerator& a, uint32_t off) {
        uint32_t v = 0;
        auto c = ctx();
        a.mmio_read(off, v, c);
        return v;
    }

    void write(rpu::Accelerator& a, uint32_t off, uint32_t v) {
        auto c = ctx();
        a.mmio_write(off, v, c);
    }
};

/// The firmware-visible byte order: an LE load of the network-order bytes.
uint32_t
fw_view(uint32_t host_order_ip) {
    return host_order_ip >> 24 | (host_order_ip >> 8 & 0xff00) |
           (host_order_ip << 8 & 0xff0000) | host_order_ip << 24;
}

TEST(Firewall, LookupAgreesWithBlacklistReference) {
    sim::Rng rng(31);
    auto bl = net::Blacklist::synthesize(1050, rng);
    FirewallMatcher fw(bl);
    EXPECT_EQ(fw.entry_count(), 1050u);
    // Every entry matches.
    for (const auto& e : bl.entries()) EXPECT_TRUE(fw.lookup(e.prefix));
    // Random probes agree with the reference.
    for (int i = 0; i < 5000; ++i) {
        uint32_t ip = uint32_t(rng.next());
        EXPECT_EQ(fw.lookup(ip), bl.contains(ip)) << net::format_ipv4_addr(ip);
    }
}

TEST(Firewall, PrefixEntries) {
    net::Blacklist bl;
    bl.add(net::parse_ipv4_addr("192.168.0.0"), 16);
    FirewallMatcher fw(bl);
    EXPECT_TRUE(fw.lookup(net::parse_ipv4_addr("192.168.55.7")));
    EXPECT_FALSE(fw.lookup(net::parse_ipv4_addr("192.169.0.0")));
}

TEST(Firewall, MmioProtocolByteSwaps) {
    net::Blacklist bl;
    uint32_t bad = net::parse_ipv4_addr("66.77.88.99");
    bl.add(bad);
    FirewallMatcher fw(bl);
    FakeRpu rig;
    rig.write(fw, kFwRegSrcIp, fw_view(bad));
    rig.tick(fw, 2);
    EXPECT_EQ(rig.read(fw, kFwRegMatch), 1u);
    rig.write(fw, kFwRegSrcIp, fw_view(bad + 1));
    rig.tick(fw, 2);
    EXPECT_EQ(rig.read(fw, kFwRegMatch), 0u);
}

TEST(Firewall, ReadBeforeLatencyStillConsistent) {
    net::Blacklist bl;
    bl.add(0x01020304);
    FirewallMatcher fw(bl);
    FakeRpu rig;
    rig.write(fw, kFwRegSrcIp, fw_view(0x01020304));
    // Immediate read (the MMIO read itself takes longer than the 2-cycle
    // pipeline in the real system): result must still be correct.
    EXPECT_EQ(rig.read(fw, kFwRegMatch), 1u);
}

TEST(Firewall, ResourcesScaleWithEntries) {
    sim::Rng rng(1);
    auto small = net::Blacklist::synthesize(100, rng);
    auto large = net::Blacklist::synthesize(1050, rng);
    FirewallMatcher a(small), b(large);
    EXPECT_LT(a.resources().luts, b.resources().luts);
    // Calibrated to Table 4: 835 LUTs / 197 FFs at 1050 entries.
    EXPECT_NEAR(double(b.resources().luts), 835.0, 835.0 * 0.05);
    EXPECT_NEAR(double(b.resources().regs), 197.0, 197.0 * 0.05);
}

// --- Pigasus ---------------------------------------------------------------------

/// Raw port word as firmware passes it (LE load of two BE u16s).
uint32_t
raw_ports(uint16_t src, uint16_t dst) {
    return uint32_t(src >> 8) | uint32_t(src & 0xff) << 8 |
           uint32_t(dst >> 8) << 16 | uint32_t(dst & 0xff) << 24;
}

TEST(Pigasus, MatchPayloadAgreesWithSnortBaseline) {
    sim::Rng rng(17);
    auto rules = net::IdsRuleSet::synthesize(64, rng);
    PigasusMatcher pig(rules);
    baseline::SnortModel snort(rules);

    net::TrafficSpec spec;
    spec.packet_size = 512;
    spec.attack_fraction = 0.3;
    spec.seed = 17;
    net::TraceGenerator gen(spec, &rules);
    int agreements = 0;
    int matches = 0;
    for (int i = 0; i < 1000; ++i) {
        auto p = gen.next();
        auto parsed = net::parse_packet(*p);
        if (!parsed || parsed->payload_offset == 0) continue;
        uint16_t sport = parsed->has_tcp ? parsed->tcp.src_port : parsed->udp.src_port;
        uint16_t dport = parsed->has_tcp ? parsed->tcp.dst_port : parsed->udp.dst_port;
        auto sids = pig.match_payload(p->data.data() + parsed->payload_offset,
                                      parsed->payload_len, raw_ports(sport, dport),
                                      parsed->has_tcp);
        bool pig_hit = !sids.empty();
        bool snort_hit = snort.packet_matches(*p);
        EXPECT_EQ(pig_hit, snort_hit) << "packet " << i;
        agreements += (pig_hit == snort_hit);
        matches += pig_hit;
    }
    EXPECT_GT(matches, 100);
}

TEST(Pigasus, PortConstraintEnforced) {
    auto rules = net::IdsRuleSet::parse(
        "alert tcp any any -> any 8080 (content:\"exploit123\"; sid:1;)\n");
    PigasusMatcher pig(rules);
    std::string payload = "aaaexploit123bbb";
    const uint8_t* d = reinterpret_cast<const uint8_t*>(payload.data());
    EXPECT_EQ(pig.match_payload(d, payload.size(), raw_ports(1000, 8080), true).size(), 1u);
    EXPECT_TRUE(pig.match_payload(d, payload.size(), raw_ports(1000, 8081), true).empty());
}

TEST(Pigasus, ProtocolGroupEnforced) {
    auto rules = net::IdsRuleSet::parse(
        "alert udp any any -> any any (content:\"dnsattack!\"; sid:2;)\n");
    PigasusMatcher pig(rules);
    std::string payload = "xxdnsattack!xx";
    const uint8_t* d = reinterpret_cast<const uint8_t*>(payload.data());
    EXPECT_EQ(pig.match_payload(d, payload.size(), 0, false).size(), 1u);
    EXPECT_TRUE(pig.match_payload(d, payload.size(), 0, true).empty());
}

TEST(Pigasus, AllContentsMustBePresent) {
    auto rules = net::IdsRuleSet::parse(
        "alert tcp any any -> any any (content:\"firstpart\"; content:\"otherpart\"; "
        "sid:3;)\n");
    PigasusMatcher pig(rules);
    std::string both = "firstpart....otherpart";
    std::string one = "firstpart only here";
    EXPECT_EQ(pig.match_payload(reinterpret_cast<const uint8_t*>(both.data()), both.size(),
                                0, true)
                  .size(),
              1u);
    EXPECT_TRUE(pig.match_payload(reinterpret_cast<const uint8_t*>(one.data()), one.size(),
                                  0, true)
                    .empty());
}

TEST(Pigasus, JobProtocolDeliversRuleIdsAndEop) {
    auto rules = net::IdsRuleSet::parse(
        "alert tcp any any -> any any (content:\"needle9876\"; sid:42;)\n");
    PigasusMatcher pig(rules);
    FakeRpu rig;
    std::string payload = "hay needle9876 hay";
    rig.pmem.write_block(0x1000, reinterpret_cast<const uint8_t*>(payload.data()),
                         uint32_t(payload.size()));

    rig.write(pig, kPigRegDmaAddr, 0x01001000);  // full RPU address
    rig.write(pig, kPigRegDmaLen, uint32_t(payload.size()));
    rig.write(pig, kPigRegPorts, 0);
    rig.write(pig, kPigRegStateH, 0x01ffffff);
    rig.write(pig, kPigRegSlot, 7);
    rig.write(pig, kPigRegCtrl, 1);

    EXPECT_EQ(rig.read(pig, kPigRegMatch), 0u);  // still streaming
    rig.tick(pig, 64);
    ASSERT_EQ(rig.read(pig, kPigRegMatch), 1u);
    EXPECT_EQ(rig.read(pig, kPigRegRuleId), 42u);
    EXPECT_EQ(rig.read(pig, kPigRegSlot), 7u);
    rig.write(pig, kPigRegCtrl, 2);  // release the match
    ASSERT_EQ(rig.read(pig, kPigRegMatch), 1u);
    EXPECT_EQ(rig.read(pig, kPigRegRuleId), 0u);  // end-of-packet marker
    rig.write(pig, kPigRegCtrl, 2);
    EXPECT_EQ(rig.read(pig, kPigRegMatch), 0u);
}

TEST(Pigasus, StreamingTimeScalesWithPayload) {
    sim::Rng rng(5);
    auto rules = net::IdsRuleSet::synthesize(8, rng);
    PigasusMatcher pig(rules);
    FakeRpu rig;

    auto run_job = [&](uint32_t len) {
        rig.write(pig, kPigRegDmaAddr, 0x01000000);
        rig.write(pig, kPigRegDmaLen, len);
        rig.write(pig, kPigRegStateH, 0x01ffffff);
        rig.write(pig, kPigRegSlot, 1);
        rig.write(pig, kPigRegCtrl, 1);
        unsigned cycles = 0;
        while (rig.read(pig, kPigRegMatch) == 0 && cycles < 10000) {
            rig.tick(pig);
            ++cycles;
        }
        rig.write(pig, kPigRegCtrl, 2);  // pop EoP
        return cycles;
    };

    unsigned small = run_job(64);
    unsigned large = run_job(2048);
    // 16 B/cycle streaming: ~4 vs ~128 cycles + fixed pipeline.
    EXPECT_NEAR(double(large - small), (2048.0 - 64.0) / 16.0, 8.0);
}

TEST(Pigasus, RuntimeRuleReload) {
    auto rules_v1 = net::IdsRuleSet::parse(
        "alert tcp any any -> any any (content:\"oldpattern\"; sid:1;)\n");
    auto rules_v2 = net::IdsRuleSet::parse(
        "alert tcp any any -> any any (content:\"newpattern\"; sid:2;)\n");
    PigasusMatcher pig(rules_v1);
    std::string text = "xx oldpattern yy newpattern zz";
    const uint8_t* d = reinterpret_cast<const uint8_t*>(text.data());
    auto before = pig.match_payload(d, text.size(), 0, true);
    ASSERT_EQ(before.size(), 1u);
    EXPECT_EQ(before[0], 1u);
    pig.load_rules(rules_v2);  // the runtime-update capability Rosebud adds
    auto after = pig.match_payload(d, text.size(), 0, true);
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0], 2u);
}

TEST(Pigasus, ResourcesMatchTable3AtSixteenEngines) {
    sim::Rng rng(5);
    auto rules = net::IdsRuleSet::synthesize(8, rng);
    PigasusMatcher pig(rules);
    auto fp = pig.resources();
    EXPECT_NEAR(double(fp.luts), 36012.0, 36012.0 * 0.05);
    EXPECT_NEAR(double(fp.regs), 49364.0, 49364.0 * 0.05);
    EXPECT_EQ(fp.bram, 56u);
    EXPECT_EQ(fp.uram, 22u);
    EXPECT_EQ(fp.dsp, 80u);
}

TEST(Pigasus, HalvingEnginesRoughlyHalvesLogic) {
    sim::Rng rng(5);
    auto rules = net::IdsRuleSet::synthesize(8, rng);
    PigasusMatcher::Params p16;
    PigasusMatcher::Params p32;
    p32.engines = 32;
    PigasusMatcher a(rules, p16), b(rules, p32);
    double ratio = double(b.resources().luts) / double(a.resources().luts);
    EXPECT_NEAR(ratio, 2.0, 0.1);
}

}  // namespace
}  // namespace rosebud::accel
