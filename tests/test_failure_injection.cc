/// Failure-injection tests: corrupted firmware, garbage and runt frames,
/// adversarial traffic patterns, broadcast overflow, and recovery of a
/// faulted RPU via partial reconfiguration — the "what happens when things
/// go wrong" half of the paper's debugging story.

#include <gtest/gtest.h>

#include <memory>

#include "core/system.h"
#include "firmware/programs.h"
#include "accel/firewall.h"
#include "net/tracegen.h"
#include "rv/assembler.h"
#include "sim/random.h"

namespace rosebud {
namespace {

using namespace rosebud::rv;

SystemConfig
cfg4() {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    return cfg;
}

net::PacketPtr
udp_pkt(uint32_t size) {
    net::PacketBuilder b;
    b.ipv4(0x0a000001, 0x0a000002).udp(1, 2).frame_size(size);
    return b.build();
}

TEST(FailureInjection, CorruptFirmwareFaultsOnlyItsRpu) {
    System sys(cfg4());
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    // RPU 2 gets garbage instructions. The static verifier would reject
    // them at load time, so drop the gate to warn-only: this test is about
    // the *runtime* fault-isolation story.
    sim::Rng rng(13);
    std::vector<uint32_t> garbage(64);
    for (auto& w : garbage) w = uint32_t(rng.next()) | 1;  // avoid all-zero
    sys.host().set_firmware_check(host::FirmwareCheck::kWarn);
    sys.host().load_firmware(2, garbage);
    sys.host().set_firmware_check(host::FirmwareCheck::kEnforce);
    sys.host().boot_all();
    sys.run_cycles(500);

    EXPECT_TRUE(sys.rpu(2).core_halted());  // faulted or hit ebreak
    for (unsigned i : {0u, 1u, 3u}) {
        EXPECT_FALSE(sys.rpu(i).core_halted()) << i;
        EXPECT_FALSE(sys.rpu(i).core_faulted()) << i;
    }
    // The healthy RPUs keep forwarding; the host masks out the dead one.
    sys.host().set_recv_mask(0b1011);
    for (int i = 0; i < 12; ++i) ASSERT_TRUE(sys.fabric().mac_rx(0, udp_pkt(128)));
    sys.run_cycles(5000);
    EXPECT_EQ(sys.sink(1).frames(), 12u);
}

TEST(FailureInjection, FaultedRpuRecoversViaReconfiguration) {
    System sys(cfg4());
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    // Bad image, forced past the static verifier to exercise runtime repair.
    sys.host().set_firmware_check(host::FirmwareCheck::kOff);
    sys.host().load_firmware(1, {0xffffffff, 0xffffffff});
    sys.host().set_firmware_check(host::FirmwareCheck::kEnforce);
    sys.host().boot_all();
    sys.run_cycles(200);
    ASSERT_TRUE(sys.rpu(1).core_faulted());

    // The paper's runtime-update flow doubles as the repair path.
    sim::Rng rng(3);
    sys.host().reconfigure(1, nullptr, fw.image, fw.entry, rng);
    EXPECT_FALSE(sys.rpu(1).core_faulted());
    EXPECT_EQ(sys.rpu(1).slot_config().count, 32u);
    sys.host().set_recv_mask(0b0010);  // prove RPU 1 itself works again
    ASSERT_TRUE(sys.fabric().mac_rx(0, udp_pkt(128)));
    sys.run_cycles(3000);
    EXPECT_EQ(sys.sink(1).frames(), 1u);
}

TEST(FailureInjection, RuntAndGarbageFramesDoNotWedgeThePipeline) {
    System sys(cfg4());
    auto fw = fwlib::firewall();
    sim::Rng rng(5);
    auto bl = net::Blacklist::synthesize(16, rng);
    sys.attach_accelerators([&] { return std::make_unique<accel::FirewallMatcher>(bl); });
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(300);

    // Runts, random bytes, truncated IP headers — then a good packet.
    for (uint32_t size : {1u, 5u, 13u, 17u, 33u}) {
        auto junk = net::make_packet(size);
        for (auto& b : junk->data) b = uint8_t(rng.next());
        ASSERT_TRUE(sys.fabric().mac_rx(0, junk));
    }
    sys.run_cycles(3000);
    ASSERT_TRUE(sys.fabric().mac_rx(0, udp_pkt(128)));
    sys.run_cycles(3000);
    EXPECT_EQ(sys.sink(1).frames(), 1u);  // the good one still flows
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_FALSE(sys.rpu(i).core_faulted()) << i;
        EXPECT_EQ(sys.rpu(i).occupancy(), 0u) << i;
    }
}

TEST(FailureInjection, AllTrafficToOneRpuBackpressuresCleanly) {
    // Adversarial steering: every packet to RPU 0 at full 200G. Slots
    // exhaust, the MAC FIFO fills and drops — but accounting stays exact
    // and the system recovers once load stops.
    System sys(cfg4());
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);
    sys.host().set_recv_mask(0x1);

    auto& src = sys.add_source({.port = 0, .load = 1.0, .max_packets = 3000},
                               [] { return udp_pkt(64); });
    sys.add_source({.port = 1, .load = 1.0, .max_packets = 3000},
                   [] { return udp_pkt(64); });
    sys.run_cycles(100000);

    uint64_t forwarded = sys.sink(0).frames() + sys.sink(1).frames();
    uint64_t drops = sys.stats().get("port0.rx_fifo_drops") +
                     sys.stats().get("port1.rx_fifo_drops");
    EXPECT_GT(forwarded, 1000u);  // one RPU still moves ~15 Mpps
    EXPECT_EQ(forwarded + drops, src.offered() + 3000);
    EXPECT_EQ(sys.rpu(0).occupancy(), 0u);
    EXPECT_EQ(sys.lb().free_slots(0), 32u);
}

TEST(FailureInjection, BroadcastNotifyOverflowDoesNotCorruptState) {
    // Saturating broadcasts overflow the 16-deep notify FIFOs (drops are
    // allowed) but the semi-coherent region itself stays consistent.
    SystemConfig cfg;
    cfg.rpu_count = 8;
    System sys(cfg);
    auto sender = fwlib::broadcast_sender(0);
    sys.host().load_firmware_all(sender.image, sender.entry);
    sys.host().boot_all();
    sys.run_cycles(20000);
    EXPECT_GT(sys.broadcast().delivered(), 500u);
    // Semi-coherence: every RPU's local copy of region word 0 converged
    // to the same (latest delivered) value, despite notify-FIFO drops.
    uint32_t v0 = sys.rpu(0).broadcast_word(0);
    EXPECT_NE(v0, 0u);
    for (unsigned i = 1; i < 8; ++i) {
        EXPECT_EQ(sys.rpu(i).broadcast_word(0), v0) << "rpu " << i << " diverged";
    }
}

TEST(FailureInjection, EvictInterruptDrainsFirmwareGracefully) {
    // The PR drain protocol from the firmware's side: on evict, finish the
    // current packet and park.
    System sys(cfg4());
    Assembler a;
    a.lui(gp, 0x2000);
    a.li(t0, 32);
    a.sw(t0, rpu::kRegSlotCount, gp);
    a.lui(t0, 0x1000);
    a.sw(t0, rpu::kRegSlotBase, gp);
    a.lui(t0, 0x4);
    a.sw(t0, rpu::kRegSlotSize, gp);
    a.sw(zero, rpu::kRegSlotCommit, gp);
    a.li(t0, 0x30);
    a.sw(t0, rpu::kRegIrqMask, gp);
    a.label("loop");
    a.lw(t1, rpu::kRegIrqStatus, gp);
    a.bnez(t1, "evicted");
    a.lw(a0, rpu::kRegRecvLow, gp);
    a.beqz(a0, "loop");
    a.sw(zero, rpu::kRegRecvRelease, gp);
    a.xori(a0, a0, 1);
    a.sw(a0, rpu::kRegSendLow, gp);
    a.sw(zero, rpu::kRegSendHigh, gp);
    a.j("loop");
    a.label("evicted");
    a.li(t2, 0x0e0e);
    a.sw(t2, rpu::kRegDebugLow, gp);  // "state saved"
    a.ebreak();
    sys.host().load_firmware_all(a.assemble());
    sys.host().boot_all();
    sys.run_cycles(300);
    sys.host().set_recv_mask(0x1);

    ASSERT_TRUE(sys.fabric().mac_rx(0, udp_pkt(256)));
    sys.run_cycles(2000);
    EXPECT_EQ(sys.sink(1).frames(), 1u);
    sys.host().evict(0);
    sys.run_cycles(200);
    EXPECT_TRUE(sys.rpu(0).core_halted());
    EXPECT_EQ(sys.host().debug_low(0), 0x0e0eu);
    EXPECT_EQ(sys.rpu(0).occupancy(), 0u);  // nothing stranded
}

}  // namespace
}  // namespace rosebud
