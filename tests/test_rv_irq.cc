/// Machine-mode interrupt tests: CSR access instructions, trap
/// entry/return semantics on the bare core, and the paper's watchdog
/// pattern on a full RPU ("software on the RISC-V can detect the hang
/// using internal timer interrupt, and send its state to the host").

#include <gtest/gtest.h>

#include "core/system.h"
#include "rpu/descriptor.h"
#include "rv/assembler.h"
#include "rv/core.h"

namespace rosebud::rv {
namespace {

class RamBus : public Bus {
 public:
    std::vector<uint32_t> code;
    Access load(uint32_t, uint32_t) override { return {}; }
    Access store(uint32_t, uint32_t, uint32_t) override { return {}; }
    uint32_t fetch(uint32_t addr) override {
        if (addr / 4 < code.size()) return code[addr / 4];
        return 0x00100073;
    }
};

TEST(Csr, ReadWriteSetClear) {
    RamBus bus;
    Assembler a;
    a.li(t0, 0x1234);
    a.csrrw(zero, kCsrMtvec, t0);   // mtvec = 0x1234
    a.csrrs(t1, kCsrMtvec, zero);   // t1 = mtvec
    a.li(t2, 0x0204);
    a.csrrs(zero, kCsrMtvec, t2);   // set bits
    a.csrrs(t3, kCsrMtvec, zero);
    a.li(t4, 0x0030);
    a.csrrc(zero, kCsrMtvec, t4);   // clear bits
    a.csrrs(t5, kCsrMtvec, zero);
    a.ebreak();
    bus.code = a.assemble();
    Core core("t", bus);
    core.reset(0);
    core.run(1000);
    EXPECT_EQ(core.reg(t1), 0x1234u);
    EXPECT_EQ(core.reg(t3), 0x1234u | 0x0204u);
    EXPECT_EQ(core.reg(t5), (0x1234u | 0x0204u) & ~0x0030u);
}

TEST(Irq, NotTakenWhileDisabled) {
    RamBus bus;
    Assembler a;
    for (int i = 0; i < 20; ++i) a.addi(t0, t0, 1);
    a.ebreak();
    bus.code = a.assemble();
    Core core("t", bus);
    core.reset(0);
    core.set_irq(true);  // MIE is off: nothing happens
    core.run(1000);
    EXPECT_EQ(core.reg(t0), 20u);
}

TEST(Irq, TrapEntryAndReturn) {
    RamBus bus;
    Assembler a;
    // Main: set mtvec, enable MIE, count in a loop.
    a.li(t1, 0);            // handler-invocation count
    a.lui(t0, 0);
    a.addi(t0, t0, 0x100);  // handler address (word 64)
    a.csrrw(zero, kCsrMtvec, t0);
    a.li(t0, 8);
    a.csrrs(zero, kCsrMstatus, t0);  // MIE = 1
    a.label("loop");
    a.addi(t2, t2, 1);
    a.li(t3, 2000);
    a.blt(t2, t3, "loop");
    a.ebreak();
    // Pad to the handler address.
    while (a.here() < 0x100) a.nop();
    a.label("handler");
    a.addi(t1, t1, 1);
    a.csrrs(t4, kCsrMcause, zero);
    a.mret();
    bus.code = a.assemble();

    Core core("t", bus);
    core.reset(0);
    core.run(30);
    EXPECT_EQ(core.reg(t1), 0u);
    core.set_irq(true);
    core.run(4);          // enough to take the trap
    core.set_irq(false);  // level-sensitive: drop the line promptly
    core.run(40);
    EXPECT_EQ(core.reg(t1), 1u);           // handler ran exactly once
    EXPECT_EQ(core.reg(t4), 0x8000000bu);  // machine external interrupt
    // Main loop resumed and still makes progress.
    uint32_t before = core.reg(t2);
    core.run(50);
    EXPECT_GT(core.reg(t2), before);
}

TEST(Irq, MaskedInsideHandlerUntilMret) {
    RamBus bus;
    Assembler a;
    a.li(t1, 0);
    a.lui(t0, 0);
    a.addi(t0, t0, 0x100);
    a.csrrw(zero, kCsrMtvec, t0);
    a.li(t0, 8);
    a.csrrs(zero, kCsrMstatus, t0);
    a.label("loop");
    a.j("loop");
    while (a.here() < 0x100) a.nop();
    a.label("handler");
    a.addi(t1, t1, 1);
    // Spin inside the handler for a while; the still-high line must NOT
    // re-enter (MIE was cleared on trap entry).
    a.li(t2, 30);
    a.label("spin");
    a.addi(t2, t2, -1);
    a.bnez(t2, "spin");
    a.mret();
    bus.code = a.assemble();

    Core core("t", bus);
    core.reset(0);
    core.run(20);
    core.set_irq(true);
    core.run(60);  // handler runs ~95 cycles; still inside
    EXPECT_EQ(core.reg(t1), 1u);
    core.run(200);  // after mret with the line still high: re-enters
    EXPECT_GT(core.reg(t1), 1u);
}

TEST(Watchdog, TimerInterruptReportsHangToHost) {
    // The paper's debugging flow end-to-end: firmware arms the watchdog,
    // "hangs" in a loop, the timer interrupt fires, and the handler dumps
    // state to the host debug channel.
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);

    Assembler a;
    a.lui(gp, 0x2000);
    a.lui(t0, 0);
    a.addi(t0, t0, 0x200);
    a.csrrw(zero, kCsrMtvec, t0);
    a.li(t0, int32_t(rpu::kIrqTimer));
    a.sw(t0, rpu::kRegIrqMask, gp);  // unmask the timer at the interconnect
    a.li(t0, 8);
    a.csrrs(zero, kCsrMstatus, t0);  // enable interrupts at the core
    a.li(t0, 500);
    a.sw(t0, rpu::kRegTimerCmp, gp);  // arm the watchdog: 500 cycles
    a.label("hang");                  // the "bug": an infinite loop
    a.j("hang");
    while (a.here() < 0x200) a.nop();
    a.label("handler");
    a.li(t1, int32_t(rpu::kIrqTimer));
    a.sw(t1, rpu::kRegIrqAck, gp);    // ack so the level drops
    a.lui(t2, 0xdead);                // report the hang to the host
    a.sw(t2, rpu::kRegDebugLow, gp);
    a.csrrs(t3, kCsrMepc, zero);      // where we were stuck
    a.sw(t3, rpu::kRegDebugHigh, gp);
    a.ebreak();                       // spin-wait for the host (Section 3.4)
    sys.host().load_firmware(0, a.assemble());
    sys.host().boot(0);

    sys.run_cycles(400);
    EXPECT_EQ(sys.host().debug_low(0), 0u);  // not fired yet
    sys.run_cycles(400);
    EXPECT_EQ(sys.host().debug_low(0), 0xdeadu << 12);
    // mepc points into the hang loop.
    uint32_t hang_pc = sys.host().debug_high(0);
    EXPECT_GE(hang_pc, 0x20u);
    EXPECT_LT(hang_pc, 0x200u);
    EXPECT_TRUE(sys.rpu(0).core_halted());
}

TEST(Watchdog, RearmedTimerKeepsQuietSystemAlive) {
    // A healthy main loop re-arms the watchdog before it fires.
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);

    Assembler a;
    a.lui(gp, 0x2000);
    a.lui(t0, 0);
    a.addi(t0, t0, 0x200);
    a.csrrw(zero, kCsrMtvec, t0);
    a.li(t0, int32_t(rpu::kIrqTimer));
    a.sw(t0, rpu::kRegIrqMask, gp);
    a.li(t0, 8);
    a.csrrs(zero, kCsrMstatus, t0);
    a.mv(t1, zero);  // heartbeat counter
    a.label("loop");
    a.li(t0, 500);
    a.sw(t0, rpu::kRegTimerCmp, gp);  // kick the dog
    a.addi(t1, t1, 1);
    a.sw(t1, rpu::kRegDebugLow, gp);  // heartbeat
    a.li(t2, 50);
    a.label("work");
    a.addi(t2, t2, -1);
    a.bnez(t2, "work");
    a.j("loop");
    while (a.here() < 0x200) a.nop();
    a.label("handler");  // must never run
    a.lui(t3, 0xbad);
    a.sw(t3, rpu::kRegDebugHigh, gp);
    a.mret();
    sys.host().load_firmware(0, a.assemble());
    sys.host().boot(0);
    sys.run_cycles(5000);
    EXPECT_GT(sys.host().debug_low(0), 10u);   // heartbeats flowing
    EXPECT_EQ(sys.host().debug_high(0), 0u);   // watchdog never fired
    EXPECT_FALSE(sys.rpu(0).core_halted());
}

}  // namespace
}  // namespace rosebud::rv
