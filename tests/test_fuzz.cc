/// Conformance-fuzzing subsystem tests (src/fuzz): corpus format and
/// regression replay, campaign determinism, the three delta-debugging
/// minimizers against injected synthetic bugs, and the 1k-config
/// fingerprint-stability sweep (serial vs shuffled tick order).
///
/// The corpus replay test walks tests/corpus/*.case — every file there is
/// a minimized reproduction of a bug that has since been fixed, and must
/// replay green forever. ROSEBUD_CORPUS_DIR is injected by CMake.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/cfg_fuzz.h"
#include "fuzz/corpus.h"
#include "fuzz/driver.h"
#include "fuzz/fw_fuzz.h"
#include "fuzz/pkt_fuzz.h"
#include "sim/log.h"

namespace rosebud {
namespace {

using fuzz::CorpusCase;

// --- corpus format ---------------------------------------------------------

TEST(FuzzCorpus, FirmwareCaseRoundTrips) {
    CorpusCase c;
    c.kind = CorpusCase::Kind::kFirmware;
    c.seed = 0xdeadbeef12345678ULL;
    c.note = "round trip check";
    c.image = {0x00000013u, 0x00100073u, 0xfffff0b7u};

    CorpusCase back = fuzz::corpus_from_text(fuzz::corpus_to_text(c));
    EXPECT_EQ(back.kind, c.kind);
    EXPECT_EQ(back.seed, c.seed);
    EXPECT_EQ(back.note, c.note);
    EXPECT_EQ(back.image, c.image);
}

TEST(FuzzCorpus, PacketCaseRoundTrips) {
    CorpusCase c;
    c.kind = CorpusCase::Kind::kPacket;
    c.seed = 42;
    c.pkt.pipeline = oracle::Pipeline::kPigasusSwReorder;
    c.pkt.policy = lb::Policy::kHash;
    c.pkt.rpu_count = 4;
    c.pkt.packet_size = 313;
    c.frames = {{0x00, 0x11, 0xab, 0xff}, {0xde, 0xad}};

    CorpusCase back = fuzz::corpus_from_text(fuzz::corpus_to_text(c));
    EXPECT_EQ(back.kind, c.kind);
    EXPECT_EQ(back.pkt.pipeline, c.pkt.pipeline);
    EXPECT_EQ(back.pkt.policy, c.pkt.policy);
    EXPECT_EQ(back.pkt.rpu_count, c.pkt.rpu_count);
    EXPECT_EQ(back.pkt.packet_size, c.pkt.packet_size);
    EXPECT_EQ(back.pkt.seed, c.seed);
    EXPECT_EQ(back.frames, c.frames);
}

TEST(FuzzCorpus, ConfigCaseRoundTrips) {
    CorpusCase c;
    c.kind = CorpusCase::Kind::kConfig;
    c.seed = 7;
    c.deltas = {{fuzz::CfgField::kVoqDepth, 2},
                {fuzz::CfgField::kRpuCount, 12},
                {fuzz::CfgField::kBcastTxDepth, 9}};

    CorpusCase back = fuzz::corpus_from_text(fuzz::corpus_to_text(c));
    EXPECT_EQ(back.kind, c.kind);
    ASSERT_EQ(back.deltas.size(), c.deltas.size());
    for (size_t i = 0; i < c.deltas.size(); ++i) {
        EXPECT_EQ(back.deltas[i].field, c.deltas[i].field);
        EXPECT_EQ(back.deltas[i].value, c.deltas[i].value);
    }
}

TEST(FuzzCorpus, MalformedTextFatals) {
    EXPECT_THROW(fuzz::corpus_from_text("not a corpus file"), sim::FatalError);
    EXPECT_THROW(fuzz::corpus_from_text("rosebud-fuzz-case v1\nkind bogus\n"),
                 sim::FatalError);
    EXPECT_THROW(
        fuzz::corpus_from_text("rosebud-fuzz-case v1\nkind fw\nword xyz\n"),
        sim::FatalError);
}

// --- regression corpus -----------------------------------------------------

/// Every checked-in case is a fixed bug's reproduction; all must be green.
TEST(FuzzCorpus, CheckedInCasesReplayGreen) {
    auto files = fuzz::corpus_list(ROSEBUD_CORPUS_DIR);
    ASSERT_FALSE(files.empty()) << "no corpus at " << ROSEBUD_CORPUS_DIR;
    for (const auto& path : files) {
        CorpusCase c = fuzz::corpus_load(path);
        std::string detail;
        EXPECT_TRUE(fuzz::corpus_replay(c, &detail))
            << path << " regressed: " << detail;
    }
}

// --- campaign driver -------------------------------------------------------

TEST(FuzzCampaign, CaseSeedsAreAPureFunctionOfTheCampaignSeed) {
    EXPECT_EQ(fuzz::campaign_case_seed(1, 0), fuzz::campaign_case_seed(1, 0));
    EXPECT_NE(fuzz::campaign_case_seed(1, 0), fuzz::campaign_case_seed(1, 1));
    EXPECT_NE(fuzz::campaign_case_seed(1, 0), fuzz::campaign_case_seed(2, 0));
}

TEST(FuzzCampaign, SameSeedSameCaseCapSameReport) {
    fuzz::FuzzPlan plan;
    plan.seed = 7;
    plan.max_cases = 2;
    plan.budget_ms = 600'000;  // never the binding constraint here
    plan.minimize = false;

    fuzz::FuzzReport a = fuzz::run_campaign(plan);
    fuzz::FuzzReport b = fuzz::run_campaign(plan);
    EXPECT_EQ(a.fw_cases, b.fw_cases);
    EXPECT_EQ(a.fw_pass, b.fw_pass);
    EXPECT_EQ(a.fw_inadmissible, b.fw_inadmissible);
    EXPECT_EQ(a.pkt_cases, b.pkt_cases);
    EXPECT_EQ(a.pkt_pass, b.pkt_pass);
    EXPECT_EQ(a.cfg_cases, b.cfg_cases);
    EXPECT_EQ(a.cfg_pass, b.cfg_pass);
    EXPECT_EQ(a.cfg_rejected, b.cfg_rejected);
    EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(FuzzCampaign, DefaultSeedSmokeSliceIsClean) {
    fuzz::FuzzPlan plan;  // seed 1: the CI smoke campaign's seed
    plan.max_cases = 3;
    plan.budget_ms = 600'000;
    fuzz::FuzzReport rep = fuzz::run_campaign(plan);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.total_cases(), 9u);
}

// --- WCET soundness oracle -------------------------------------------------

TEST(FuzzWcet, KindNameRoundTrips) {
    EXPECT_STREQ(fuzz::fw_kind_name(fuzz::FwKind::kWcetExceeded), "wcet-exceeded");
}

/// Every admissible generated program that runs to completion must retire
/// no more instructions than its certified static WCET bound. A
/// kWcetExceeded verdict anywhere in this fixed-seed slice means the
/// certifier's longest-path/loop-bound arithmetic is unsound.
TEST(FuzzWcet, FixedSeedSliceHasNoWcetSoundnessViolations) {
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        fuzz::FwCase c = fuzz::generate_firmware(seed);
        fuzz::FwVerdict v = fuzz::run_firmware_lockstep(c);
        EXPECT_NE(v.kind, fuzz::FwKind::kWcetExceeded)
            << "seed " << seed << ": " << v.detail;
    }
}

// --- minimizers vs injected bugs -------------------------------------------

TEST(FuzzMinimize, InjectedRefModelBugShrinksToEightInstructions) {
    fuzz::FwOptions opts;
    opts.inject_div_bug = true;
    fuzz::FwCase c = fuzz::generate_firmware(1, opts);
    fuzz::FwVerdict v = fuzz::run_firmware_lockstep(c, opts);
    ASSERT_EQ(v.kind, fuzz::FwKind::kDiverge) << v.detail;

    uint32_t live = 0;
    fuzz::FwCase min = fuzz::minimize_firmware(c, opts, &live);
    EXPECT_LE(live, 8u);
    EXPECT_EQ(fuzz::run_firmware_lockstep(min, opts).kind, fuzz::FwKind::kDiverge);
}

TEST(FuzzMinimize, InjectedOracleBugShrinksToTwoPackets) {
    fuzz::PktOptions opts;
    opts.inject_oracle_bug = true;
    fuzz::PktCase c = fuzz::generate_packet_case(1, opts);
    fuzz::PktVerdict v = fuzz::run_packet_case(c, opts);
    ASSERT_EQ(v.kind, fuzz::PktKind::kDiverge);

    auto min = fuzz::minimize_packets(c, opts, v.frames);
    EXPECT_LE(min.size(), 2u);
    EXPECT_FALSE(fuzz::replay_packet_case(c, opts, min).ok());
}

TEST(FuzzMinimize, InjectedConfigBugShrinksToThreeCoupledFields) {
    fuzz::CfgOptions opts;
    opts.inject_cfg_bug = true;
    fuzz::CfgCase c = fuzz::generate_config_case(1, opts);
    ASSERT_EQ(fuzz::run_config_case(c, opts).kind, fuzz::CfgKind::kDiverge);

    auto min = fuzz::minimize_config(c, opts);
    EXPECT_LE(min.size(), 3u);
    fuzz::CfgCase reduced{c.seed, min};
    EXPECT_EQ(fuzz::run_config_case(reduced, opts).kind, fuzz::CfgKind::kDiverge);
}

// --- fingerprint stability -------------------------------------------------

/// 1000 fuzzed configurations, each executed twice by run_config_case —
/// once in registration order, once with the kernel's component tick order
/// shuffled — must land on identical state fingerprints. A kFingerprint
/// (or kDiverge) verdict here is a config-dependent two-phase race. The
/// same sweep doubles as the shard-plan fuzz campaign: run_config_case
/// certifies a 2-way partition of every clean netlist, so a kShardPlan
/// verdict means the certifier produced an internally inconsistent plan
/// (e.g. a cut edge with zero lookahead) for some configuration.
TEST(FuzzConfig, FingerprintStableUnderShuffledTickOrderAcross1kConfigs) {
    fuzz::CfgOptions opts;
    opts.with_oracle = false;  // fingerprint-only probe: keeps 1k samples fast
    opts.max_packets = 10;
    opts.run_cycles = 3000;
    for (uint64_t seed = 0; seed < 1000; ++seed) {
        fuzz::CfgCase c = fuzz::generate_config_case(seed, opts);
        fuzz::CfgVerdict v = fuzz::run_config_case(c, opts);
        ASSERT_NE(v.kind, fuzz::CfgKind::kFingerprint)
            << "seed " << seed << ": " << v.detail;
        ASSERT_NE(v.kind, fuzz::CfgKind::kDiverge)
            << "seed " << seed << ": " << v.detail;
        ASSERT_NE(v.kind, fuzz::CfgKind::kShardPlan)
            << "seed " << seed << ": " << v.detail;
    }
}

}  // namespace
}  // namespace rosebud
