/// Protocol header parse/serialize round-trips, checksums, the packet
/// builder, and line-rate helpers.

#include <gtest/gtest.h>

#include "net/headers.h"
#include "net/packet.h"
#include "sim/log.h"
#include "sim/random.h"

namespace rosebud::net {
namespace {

TEST(Endian, Be16RoundTrip) {
    uint8_t buf[2];
    store_be16(buf, 0xabcd);
    EXPECT_EQ(buf[0], 0xab);
    EXPECT_EQ(buf[1], 0xcd);
    EXPECT_EQ(load_be16(buf), 0xabcd);
}

TEST(Endian, Be32RoundTrip) {
    uint8_t buf[4];
    store_be32(buf, 0xdeadbeef);
    EXPECT_EQ(buf[0], 0xde);
    EXPECT_EQ(load_be32(buf), 0xdeadbeefu);
}

TEST(Checksum, Rfc1071Example) {
    // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
    uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(internet_checksum(data, sizeof(data)), 0x220d);
}

TEST(Checksum, OddLength) {
    uint8_t data[] = {0x01, 0x02, 0x03};
    // 0x0102 + 0x0300 = 0x0402 -> ~ = 0xfbfd
    EXPECT_EQ(internet_checksum(data, sizeof(data)), 0xfbfd);
}

TEST(Checksum, VerifiesToZero) {
    // A header serialized with its checksum re-checksums to 0.
    Ipv4Header h;
    h.protocol = kIpProtoTcp;
    h.total_length = 40;
    h.src_ip = 0x0a000001;
    h.dst_ip = 0x0a000002;
    uint8_t buf[kIpv4HeaderSize];
    h.serialize(buf);
    EXPECT_EQ(internet_checksum(buf, sizeof(buf)), 0);
}

TEST(Headers, EthRoundTrip) {
    EthHeader h;
    h.dst = {1, 2, 3, 4, 5, 6};
    h.src = {7, 8, 9, 10, 11, 12};
    h.ether_type = kEtherTypeIpv4;
    uint8_t buf[kEthHeaderSize];
    h.serialize(buf);
    EthHeader parsed = EthHeader::parse(buf);
    EXPECT_EQ(parsed.dst, h.dst);
    EXPECT_EQ(parsed.src, h.src);
    EXPECT_EQ(parsed.ether_type, h.ether_type);
}

TEST(Headers, Ipv4RoundTrip) {
    Ipv4Header h;
    h.total_length = 1500;
    h.identification = 0x1234;
    h.ttl = 17;
    h.protocol = kIpProtoUdp;
    h.src_ip = 0xc0a80101;
    h.dst_ip = 0x08080808;
    uint8_t buf[kIpv4HeaderSize];
    h.serialize(buf);
    Ipv4Header p = Ipv4Header::parse(buf);
    EXPECT_EQ(p.total_length, h.total_length);
    EXPECT_EQ(p.identification, h.identification);
    EXPECT_EQ(p.ttl, h.ttl);
    EXPECT_EQ(p.protocol, h.protocol);
    EXPECT_EQ(p.src_ip, h.src_ip);
    EXPECT_EQ(p.dst_ip, h.dst_ip);
    EXPECT_EQ(p.header_len(), kIpv4HeaderSize);
}

TEST(Headers, TcpRoundTrip) {
    TcpHeader h;
    h.src_port = 443;
    h.dst_port = 51234;
    h.seq = 0xdeadbeef;
    h.ack = 0x12345678;
    h.flags = 0x18;
    h.window = 8192;
    uint8_t buf[kTcpHeaderSize];
    h.serialize(buf);
    TcpHeader p = TcpHeader::parse(buf);
    EXPECT_EQ(p.src_port, h.src_port);
    EXPECT_EQ(p.dst_port, h.dst_port);
    EXPECT_EQ(p.seq, h.seq);
    EXPECT_EQ(p.ack, h.ack);
    EXPECT_EQ(p.flags, h.flags);
    EXPECT_EQ(p.window, h.window);
}

TEST(Headers, UdpRoundTrip) {
    UdpHeader h;
    h.src_port = 53;
    h.dst_port = 5353;
    h.length = 100;
    uint8_t buf[kUdpHeaderSize];
    h.serialize(buf);
    UdpHeader p = UdpHeader::parse(buf);
    EXPECT_EQ(p.src_port, h.src_port);
    EXPECT_EQ(p.dst_port, h.dst_port);
    EXPECT_EQ(p.length, h.length);
}

class BuilderSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BuilderSizeTest, TcpFrameParsesBack) {
    uint32_t size = GetParam();
    PacketBuilder b;
    b.ipv4(0x0a000001, 0x0a000002).tcp(1000, 2000, 777).frame_size(size);
    PacketPtr p = b.build();
    EXPECT_EQ(p->size(), size);
    auto parsed = parse_packet(*p);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(parsed->has_ipv4);
    ASSERT_TRUE(parsed->has_tcp);
    EXPECT_EQ(parsed->tcp.src_port, 1000);
    EXPECT_EQ(parsed->tcp.dst_port, 2000);
    EXPECT_EQ(parsed->tcp.seq, 777u);
    EXPECT_EQ(parsed->payload_offset, 54u);
    EXPECT_EQ(parsed->payload_len, size - 54);
    EXPECT_EQ(parsed->ipv4.total_length, size - kEthHeaderSize);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BuilderSizeTest,
                         ::testing::Values(64, 65, 128, 256, 512, 1024, 1500, 9000));

TEST(Builder, UdpFrame) {
    PacketBuilder b;
    b.ipv4(1, 2).udp(53, 53).payload_str("hello").frame_size(128);
    PacketPtr p = b.build();
    auto parsed = parse_packet(*p);
    ASSERT_TRUE(parsed->has_udp);
    EXPECT_EQ(parsed->payload_offset, 42u);
    EXPECT_EQ(std::string(p->data.begin() + 42, p->data.begin() + 47), "hello");
}

TEST(Builder, PayloadPreserved) {
    std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
    PacketBuilder b;
    b.ipv4(1, 2).tcp(1, 2).payload(payload).frame_size(200);
    PacketPtr p = b.build();
    for (size_t i = 0; i < payload.size(); ++i) EXPECT_EQ(p->data[54 + i], payload[i]);
}

TEST(Builder, FrameSizeTooSmallIsFatal) {
    PacketBuilder b;
    b.ipv4(1, 2).tcp(1, 2).payload_str("0123456789").frame_size(60);
    EXPECT_THROW(b.build(), sim::FatalError);
}

TEST(Builder, NaturalSizeWithoutFrameSize) {
    PacketBuilder b;
    b.ipv4(1, 2).udp(1, 2).payload_str("abc");
    EXPECT_EQ(b.build()->size(), kEthHeaderSize + kIpv4HeaderSize + kUdpHeaderSize + 3);
}

TEST(Parse, NonIpFrame) {
    auto p = make_packet(64);
    p->data[12] = 0x08;
    p->data[13] = 0x06;  // ARP
    auto parsed = parse_packet(*p);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(parsed->has_ipv4);
    EXPECT_EQ(parsed->eth.ether_type, kEtherTypeArp);
}

TEST(Parse, TruncatedFrames) {
    EXPECT_FALSE(parse_packet(*make_packet(10)).has_value());
    // Valid eth, claims IPv4 but too short for the IP header.
    auto p = make_packet(20);
    p->data[12] = 0x08;
    p->data[13] = 0x00;
    EXPECT_FALSE(parse_packet(*p).has_value());
}

TEST(Parse, BadIhlRejected) {
    PacketBuilder b;
    b.ipv4(1, 2).udp(1, 2).frame_size(64);
    auto p = b.build();
    p->data[14] = 0x42;  // IHL = 2 words: invalid
    EXPECT_FALSE(parse_packet(*p).has_value());
}

TEST(Addr, ParseFormatsRoundTrip) {
    sim::Rng rng(8);
    for (int i = 0; i < 200; ++i) {
        uint32_t ip = uint32_t(rng.next());
        EXPECT_EQ(parse_ipv4_addr(format_ipv4_addr(ip)), ip);
    }
}

TEST(Addr, KnownValues) {
    EXPECT_EQ(parse_ipv4_addr("10.0.0.1"), 0x0a000001u);
    EXPECT_EQ(format_ipv4_addr(0xc0a80164), "192.168.1.100");
    EXPECT_THROW(parse_ipv4_addr("1.2.3"), sim::FatalError);
    EXPECT_THROW(parse_ipv4_addr("1.2.3.4.5"), sim::FatalError);
    EXPECT_THROW(parse_ipv4_addr("1.2.3.256"), sim::FatalError);
    EXPECT_THROW(parse_ipv4_addr("a.b.c.d"), sim::FatalError);
}

TEST(LineRate, KnownValues) {
    // 64 B at 100 Gbps: 100e9 / (88 * 8) = ~142.05 Mpps.
    EXPECT_NEAR(line_rate_pps(64, 100.0) / 1e6, 142.05, 0.01);
    // 1500 B at 100 Gbps: ~8.2 Mpps.
    EXPECT_NEAR(line_rate_pps(1500, 100.0) / 1e6, 8.2, 0.02);
    // Goodput is always below the raw rate.
    for (uint32_t s : {64u, 512u, 9000u}) {
        EXPECT_LT(line_rate_goodput_gbps(s, 100.0), 100.0);
        EXPECT_GT(line_rate_goodput_gbps(s, 100.0), 0.0);
    }
    // Larger packets waste less on overhead.
    EXPECT_GT(line_rate_goodput_gbps(9000, 100.0), line_rate_goodput_gbps(64, 100.0));
}

TEST(Packet, WireSizeIncludesOverhead) {
    auto p = make_packet(64);
    EXPECT_EQ(p->wire_size(), 88u);
}

}  // namespace
}  // namespace rosebud::net
