/// RV32IM interpreter tests: per-instruction semantics against expected
/// values (including the M-extension corner cases mandated by the spec),
/// memory access sizes and sign extension, control flow, CSRs, the timing
/// model (the 16-cycle forwarder-loop anchor), and bus retry semantics.

#include <gtest/gtest.h>

#include <map>

#include "rv/assembler.h"
#include "rv/core.h"

namespace rosebud::rv {
namespace {

/// Simple test bus: 64 KB RAM at 0, MMIO word at 0x10000 with configurable
/// latency/retry behaviour.
class TestBus : public Bus {
 public:
    std::vector<uint32_t> ram = std::vector<uint32_t>(16384, 0);
    std::vector<uint32_t> code;
    uint32_t mmio_value = 0;  ///< value returned by MMIO loads
    uint32_t mmio_sink = 0;   ///< last value stored to MMIO
    uint32_t mmio_writes = 0;
    int retries_remaining = 0;
    uint32_t load_cycles = 2;
    uint32_t store_cycles = 1;

    Access load(uint32_t addr, uint32_t size) override {
        Access a;
        if (addr == 0x10000) {
            a.value = mmio_value;
            a.cycles = 3;
            return a;
        }
        if (addr + size > ram.size() * 4) {
            a.fault = true;
            return a;
        }
        uint32_t word = ram[addr >> 2];
        a.value = word >> (8 * (addr & 3));
        a.cycles = load_cycles;
        return a;
    }

    Access store(uint32_t addr, uint32_t size, uint32_t value) override {
        Access a;
        if (addr == 0x10000) {
            if (retries_remaining > 0) {
                --retries_remaining;
                a.retry = true;
                return a;
            }
            mmio_sink = value;
            ++mmio_writes;
            a.cycles = 2;
            return a;
        }
        if (addr + size > ram.size() * 4) {
            a.fault = true;
            return a;
        }
        uint32_t& word = ram[addr >> 2];
        uint32_t shift = 8 * (addr & 3);
        uint32_t mask = size == 4 ? ~0u : ((1u << (8 * size)) - 1) << shift;
        word = (word & ~mask) | ((value << shift) & mask);
        a.cycles = store_cycles;
        return a;
    }

    uint32_t fetch(uint32_t addr) override {
        if (addr / 4 < code.size()) return code[addr / 4];
        return 0x00100073;  // ebreak
    }
};

/// Run a program until ebreak; return the core for register inspection.
struct RunResult {
    TestBus bus;
    std::unique_ptr<Core> core;
};

std::unique_ptr<RunResult>
run_program(const std::function<void(Assembler&)>& body, uint64_t max_cycles = 100000) {
    auto r = std::make_unique<RunResult>();
    Assembler a;
    body(a);
    a.ebreak();
    r->bus.code = a.assemble();
    r->core = std::make_unique<Core>("test", r->bus);
    r->core->reset(0);
    r->core->run(max_cycles);
    EXPECT_TRUE(r->core->halted());
    EXPECT_FALSE(r->core->faulted());
    return r;
}

// --- ALU semantics (parameterized) ------------------------------------------

struct AluCase {
    const char* name;
    void (Assembler::*op)(Reg, Reg, Reg);
    uint32_t a, b, expected;
};

class AluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluTest, ComputesExpected) {
    const AluCase& c = GetParam();
    auto r = run_program([&](Assembler& a) {
        a.li(t0, int32_t(c.a));
        a.li(t1, int32_t(c.b));
        (a.*c.op)(t2, t0, t1);
    });
    EXPECT_EQ(r->core->reg(t2), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, AluTest,
    ::testing::Values(
        AluCase{"add", &Assembler::add, 5, 7, 12},
        AluCase{"add_wrap", &Assembler::add, 0xffffffff, 1, 0},
        AluCase{"sub", &Assembler::sub, 5, 7, uint32_t(-2)},
        AluCase{"sub_wrap", &Assembler::sub, 0, 1, 0xffffffff},
        AluCase{"sll", &Assembler::sll, 1, 31, 0x80000000},
        AluCase{"sll_mask", &Assembler::sll, 1, 33, 2},  // shift uses low 5 bits
        AluCase{"slt_true", &Assembler::slt, uint32_t(-1), 0, 1},
        AluCase{"slt_false", &Assembler::slt, 0, uint32_t(-1), 0},
        AluCase{"sltu_true", &Assembler::sltu, 0, uint32_t(-1), 1},
        AluCase{"sltu_false", &Assembler::sltu, uint32_t(-1), 0, 0},
        AluCase{"xor", &Assembler::xor_, 0xff00ff00, 0x0ff00ff0, 0xf0f0f0f0},
        AluCase{"srl", &Assembler::srl, 0x80000000, 31, 1},
        AluCase{"sra", &Assembler::sra, 0x80000000, 31, 0xffffffff},
        AluCase{"or", &Assembler::or_, 0xf0f0, 0x0f0f, 0xffff},
        AluCase{"and", &Assembler::and_, 0xff0f, 0x0fff, 0x0f0f}),
    [](const auto& info) { return info.param.name; });

INSTANTIATE_TEST_SUITE_P(
    MulDiv, AluTest,
    ::testing::Values(
        AluCase{"mul", &Assembler::mul, 7, 6, 42},
        AluCase{"mul_neg", &Assembler::mul, uint32_t(-3), 4, uint32_t(-12)},
        AluCase{"mulh", &Assembler::mulh, 0x80000000, 0x80000000, 0x40000000},
        AluCase{"mulh_neg", &Assembler::mulh, uint32_t(-1), uint32_t(-1), 0},
        AluCase{"mulhu", &Assembler::mulhu, 0xffffffff, 0xffffffff, 0xfffffffe},
        AluCase{"mulhsu", &Assembler::mulhsu, uint32_t(-1), 0xffffffff, 0xffffffff},
        AluCase{"div", &Assembler::div, 42, 6, 7},
        AluCase{"div_neg", &Assembler::div, uint32_t(-42), 6, uint32_t(-7)},
        AluCase{"div_by_zero", &Assembler::div, 42, 0, 0xffffffff},
        AluCase{"div_overflow", &Assembler::div, 0x80000000, uint32_t(-1), 0x80000000},
        AluCase{"divu", &Assembler::divu, 0xfffffffe, 2, 0x7fffffff},
        AluCase{"divu_by_zero", &Assembler::divu, 5, 0, 0xffffffff},
        AluCase{"rem", &Assembler::rem, 43, 6, 1},
        AluCase{"rem_neg", &Assembler::rem, uint32_t(-43), 6, uint32_t(-1)},
        AluCase{"rem_by_zero", &Assembler::rem, 43, 0, 43},
        AluCase{"rem_overflow", &Assembler::rem, 0x80000000, uint32_t(-1), 0},
        AluCase{"remu", &Assembler::remu, 43, 6, 1},
        AluCase{"remu_by_zero", &Assembler::remu, 43, 0, 43}),
    [](const auto& info) { return info.param.name; });

// --- immediates and upper ops -------------------------------------------------

TEST(CoreAlu, AddiSignExtends) {
    auto r = run_program([](Assembler& a) {
        a.li(t0, 100);
        a.addi(t1, t0, -101);
    });
    EXPECT_EQ(r->core->reg(t1), uint32_t(-1));
}

TEST(CoreAlu, LuiLoadsUpper) {
    auto r = run_program([](Assembler& a) { a.lui(t0, 0xdeadb); });
    EXPECT_EQ(r->core->reg(t0), 0xdeadb000u);
}

TEST(CoreAlu, AuipcAddsPc) {
    auto r = run_program([](Assembler& a) {
        a.nop();
        a.auipc(t0, 1);  // pc = 4 here
    });
    EXPECT_EQ(r->core->reg(t0), 0x1004u);
}

TEST(CoreAlu, LiFullRange) {
    for (int32_t v : {0, 1, -1, 2047, -2048, 2048, -2049, 0x7fffffff,
                      int32_t(0x80000000), 0x12345678, int32_t(0xdeadbeef)}) {
        auto r = run_program([&](Assembler& a) { a.li(t3, v); });
        EXPECT_EQ(r->core->reg(t3), uint32_t(v)) << v;
    }
}

TEST(CoreAlu, X0IsAlwaysZero) {
    auto r = run_program([](Assembler& a) {
        a.li(zero, 42);
        a.addi(zero, zero, 1);
        a.mv(t0, zero);
    });
    EXPECT_EQ(r->core->reg(zero), 0u);
    EXPECT_EQ(r->core->reg(t0), 0u);
}

// --- memory access --------------------------------------------------------------

TEST(CoreMem, StoreLoadWordRoundTrip) {
    auto r = run_program([](Assembler& a) {
        a.li(t0, 0x1234);      // address
        a.li(t1, int32_t(0xcafebabe));
        a.sw(t1, 0, t0);
        a.lw(t2, 0, t0);
    });
    EXPECT_EQ(r->core->reg(t2), 0xcafebabeu);
}

TEST(CoreMem, ByteAndHalfSignExtension) {
    auto r = run_program([](Assembler& a) {
        a.li(t0, 0x100);
        a.li(t1, int32_t(0xffff8085));
        a.sw(t1, 0, t0);
        a.lb(t2, 0, t0);    // 0x85 -> sign extended
        a.lbu(t3, 0, t0);   // 0x85 -> zero extended
        a.lh(t4, 0, t0);    // 0x8085 -> sign extended
        a.lhu(t5, 0, t0);   // 0x8085 -> zero extended
    });
    EXPECT_EQ(r->core->reg(t2), 0xffffff85u);
    EXPECT_EQ(r->core->reg(t3), 0x85u);
    EXPECT_EQ(r->core->reg(t4), 0xffff8085u);
    EXPECT_EQ(r->core->reg(t5), 0x8085u);
}

TEST(CoreMem, SubWordStoresPreserveNeighbours) {
    auto r = run_program([](Assembler& a) {
        a.li(t0, 0x200);
        a.li(t1, int32_t(0x11223344));
        a.sw(t1, 0, t0);
        a.li(t2, 0xff);
        a.sb(t2, 1, t0);   // replace byte 1
        a.lw(t3, 0, t0);
    });
    EXPECT_EQ(r->core->reg(t3), 0x1122ff44u);
}

TEST(CoreMem, FaultHaltsCore) {
    TestBus bus;
    Assembler a;
    a.lui(t0, 0x100);  // address way beyond RAM
    a.lw(t1, 0, t0);
    bus.code = a.assemble();
    Core core("test", bus);
    core.reset(0);
    core.run(100);
    EXPECT_TRUE(core.halted());
    EXPECT_TRUE(core.faulted());
}

// --- control flow -----------------------------------------------------------------

TEST(CoreBranch, TakenAndNotTaken) {
    auto r = run_program([](Assembler& a) {
        a.li(t0, 5);
        a.li(t1, 5);
        a.li(t2, 0);
        a.bne(t0, t1, "skip");  // not taken
        a.addi(t2, t2, 1);
        a.label("skip");
        a.beq(t0, t1, "skip2");  // taken
        a.addi(t2, t2, 100);     // skipped
        a.label("skip2");
        a.addi(t2, t2, 10);
    });
    EXPECT_EQ(r->core->reg(t2), 11u);
}

TEST(CoreBranch, SignedVsUnsigned) {
    auto r = run_program([](Assembler& a) {
        a.li(t0, -1);
        a.li(t1, 1);
        a.li(t2, 0);
        a.blt(t0, t1, "s1");  // -1 < 1 signed: taken
        a.j("next");
        a.label("s1");
        a.ori(t2, t2, 1);
        a.label("next");
        a.bltu(t0, t1, "s2");  // 0xffffffff < 1 unsigned: not taken
        a.ori(t2, t2, 2);
        a.label("s2");
    });
    EXPECT_EQ(r->core->reg(t2), 3u);
}

TEST(CoreBranch, LoopCountsDown) {
    auto r = run_program([](Assembler& a) {
        a.li(t0, 10);
        a.li(t1, 0);
        a.label("loop");
        a.addi(t1, t1, 3);
        a.addi(t0, t0, -1);
        a.bnez(t0, "loop");
    });
    EXPECT_EQ(r->core->reg(t1), 30u);
}

TEST(CoreJump, CallAndReturn) {
    auto r = run_program([](Assembler& a) {
        a.li(t0, 0);
        a.call("fn");
        a.ori(t0, t0, 2);
        a.j("done");
        a.label("fn");
        a.ori(t0, t0, 1);
        a.ret();
        a.label("done");
    });
    EXPECT_EQ(r->core->reg(t0), 3u);
}

TEST(CoreJump, JalrComputedTarget) {
    auto r = run_program([](Assembler& a) {
        a.li(t0, 0);
        a.auipc(t1, 0);      // t1 = pc of this insn (8 after li expands to 1)
        a.jalr(ra, t1, 16);  // jump 16 bytes past the auipc
        a.ori(t0, t0, 4);    // skipped
        a.ori(t0, t0, 8);    // skipped
        a.ori(t0, t0, 1);    // target
    });
    EXPECT_EQ(r->core->reg(t0), 1u);
}

// --- CSRs ----------------------------------------------------------------------------

TEST(CoreCsr, CycleCounterAdvances) {
    auto r = run_program([](Assembler& a) {
        a.rdcycle(t0);
        a.nop();
        a.nop();
        a.rdcycle(t1);
        a.sub(t2, t1, t0);
    });
    EXPECT_EQ(r->core->reg(t2), 3u);  // two nops + the second rdcycle issue
}

TEST(CoreCsr, InstretCountsRetired) {
    auto r = run_program([](Assembler& a) {
        a.nop();
        a.nop();
        a.rdinstret(t0);
    });
    // nop, nop retired before rdinstret executes.
    EXPECT_EQ(r->core->reg(t0), 2u);
}

// --- timing model ---------------------------------------------------------------------

TEST(CoreTiming, AluIsOneCycle) {
    TestBus bus;
    Assembler a;
    for (int i = 0; i < 10; ++i) a.addi(t0, t0, 1);
    a.ebreak();
    bus.code = a.assemble();
    Core core("t", bus);
    core.reset(0);
    uint64_t start = core.cycles();
    while (!core.halted()) core.tick();
    // 10 ALU ops at 1 cycle + ebreak.
    EXPECT_EQ(core.cycles() - start, 11u);
}

TEST(CoreTiming, ForwarderLoopIsSixteenCycles) {
    // The paper's anchor (Section 6.1): the minimal read-descriptor /
    // release / send loop costs exactly 16 cycles per iteration.
    TestBus bus;
    bus.mmio_value = 0x00400011;  // descriptor always "ready"
    Assembler a;
    a.lui(gp, 0x10);  // gp = 0x10000 (MMIO)
    a.label("loop");
    a.lw(a0, 0, gp);        // 3 (MMIO load)
    a.beqz(a0, "loop");     // 1 not taken
    a.lw(a1, 0, gp);        // 3
    a.sw(zero, 0, gp);      // 2
    a.xori(a0, a0, 1);      // 1
    a.sw(a0, 0, gp);        // 2
    a.sw(zero, 0, gp);      // 2
    a.j("loop");            // 2
    bus.code = a.assemble();
    Core core("t", bus);
    core.reset(0);
    core.run(10);  // flush the prologue
    // Hack: re-measure over many iterations via MMIO write count.
    uint32_t writes_before = bus.mmio_writes;
    core.run(1600);
    uint32_t iterations = (bus.mmio_writes - writes_before) / 3;
    EXPECT_NEAR(double(1600) / iterations, 16.0, 0.2);
}

TEST(CoreTiming, RetryBlocksWithoutRetiring) {
    TestBus bus;
    bus.retries_remaining = 20;
    Assembler a;
    a.lui(gp, 0x10);
    a.li(t0, 7);
    a.sw(t0, 0, gp);  // blocked for 20 cycles
    a.ebreak();
    bus.code = a.assemble();
    Core core("t", bus);
    core.reset(0);
    uint64_t instret_before_wait = 0;
    core.run(10);
    instret_before_wait = core.instret();
    core.run(10);
    // Still stuck on the same store.
    EXPECT_EQ(core.instret(), instret_before_wait);
    core.run(1000);
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(bus.mmio_sink, 7u);
}

TEST(CoreTiming, DivIsSlow) {
    TestBus bus;
    Assembler a;
    a.li(t0, 100);
    a.li(t1, 7);
    a.div(t2, t0, t1);
    a.ebreak();
    bus.code = a.assemble();
    Core core("t", bus);
    core.reset(0);
    core.run(1000);
    // 2 li + 35-cycle divide + ebreak.
    EXPECT_EQ(core.cycles(), 2u + 35u + 1u);
}

// --- predecoded dispatch ------------------------------------------------------
//
// The decoded-instruction cache must be invisible: every scenario that can
// make a cached record stale (a store into the code region, fence.i, a
// firmware reload via reset) is run in lockstep against a core with
// predecoding disabled, requiring bit-identical pc/instret/registers on
// every single cycle — instruction-for-instruction equivalence, not just
// equal final state.

/// Bus whose fetches read the same RAM that stores write (unlike TestBus,
/// whose code image is immutable), so firmware can modify its own code.
/// When `owner` is set, stores into RAM invalidate the overlapped decoded
/// records — the contract a bus owner must implement (see rv/core.h).
class SelfModBus : public Bus {
 public:
    std::vector<uint32_t> ram = std::vector<uint32_t>(16384, 0);
    Core* owner = nullptr;

    Access load(uint32_t addr, uint32_t size) override {
        Access a;
        if (addr + size > ram.size() * 4) {
            a.fault = true;
            return a;
        }
        a.value = ram[addr >> 2] >> (8 * (addr & 3));
        a.cycles = 2;
        return a;
    }

    Access store(uint32_t addr, uint32_t size, uint32_t value) override {
        Access a;
        if (addr + size > ram.size() * 4) {
            a.fault = true;
            return a;
        }
        uint32_t& word = ram[addr >> 2];
        uint32_t shift = 8 * (addr & 3);
        uint32_t mask = size == 4 ? ~0u : ((1u << (8 * size)) - 1) << shift;
        word = (word & ~mask) | ((value << shift) & mask);
        a.cycles = 1;
        if (owner) owner->icache_invalidate(addr, size);
        return a;
    }

    uint32_t fetch(uint32_t addr) override {
        if (addr / 4 < ram.size()) return ram[addr >> 2];
        return 0x00100073;  // ebreak
    }
};

/// A predecoding core and a cold-decoding core running the same image in
/// lockstep; `run_compare` faults on the first cycle their architectural
/// state diverges.
struct Lockstep {
    SelfModBus warm_bus, cold_bus;
    Core warm{"warm", warm_bus};
    Core cold{"cold", cold_bus};

    explicit Lockstep(bool store_invalidation_hook) {
        cold.set_predecode(false);
        if (store_invalidation_hook) {
            warm_bus.owner = &warm;
            cold_bus.owner = &cold;  // no-op (no cache), kept for symmetry
        }
    }

    void load(const std::vector<uint32_t>& code) {
        std::copy(code.begin(), code.end(), warm_bus.ram.begin());
        std::copy(code.begin(), code.end(), cold_bus.ram.begin());
    }

    void reset() {
        warm.reset(0);
        cold.reset(0);
    }

    void run_compare(uint64_t max_cycles) {
        for (uint64_t i = 0; i < max_cycles && !warm.halted(); ++i) {
            warm.tick();
            cold.tick();
            ASSERT_EQ(warm.pc(), cold.pc()) << "cycle " << i;
            ASSERT_EQ(warm.instret(), cold.instret()) << "cycle " << i;
            ASSERT_EQ(warm.halted(), cold.halted()) << "cycle " << i;
            for (int r = 0; r < 32; ++r) {
                ASSERT_EQ(warm.reg(Reg(r)), cold.reg(Reg(r)))
                    << "cycle " << i << " x" << r;
            }
        }
        ASSERT_TRUE(warm.halted());
        ASSERT_TRUE(cold.halted());
        ASSERT_FALSE(warm.faulted());
    }
};

/// Encoded word of a single instruction (for li-ing patches into registers).
uint32_t
encode(const std::function<void(Assembler&)>& one) {
    Assembler a;
    one(a);
    auto words = a.assemble();
    EXPECT_EQ(words.size(), 1u);
    return words[0];
}

/// Two-iteration loop whose first instruction patches itself: iteration 1
/// executes the original `addi a0, a0, 1` (now cached) and stores a new
/// word over it; iteration 2 must execute the patched `addi a0, a0, 100`.
std::vector<uint32_t>
self_modifying_program(bool use_fence_i) {
    Assembler a;
    a.li(t1, int32_t(encode([](Assembler& p) { p.addi(a0, a0, 100); })));
    a.li(a0, 0);
    a.li(s0, 0);
    a.li(t2, 2);
    a.auipc(t0, 0);
    a.addi(t0, t0, 8);  // t0 = address of the loop head (patch target)
    a.label("loop");
    a.addi(a0, a0, 1);  // patch target
    a.sw(t1, 0, t0);
    if (use_fence_i) a.fence_i();
    a.addi(s0, s0, 1);
    a.blt(s0, t2, "loop");
    a.ebreak();
    return a.assemble();
}

TEST(Predecode, SelfModifyingStoreMatchesColdDecode) {
    Lockstep ls(/*store_invalidation_hook=*/true);
    ls.load(self_modifying_program(/*use_fence_i=*/false));
    ls.reset();
    ls.run_compare(1000);
    // 1 + 100: the second iteration saw the patched instruction.
    EXPECT_EQ(ls.warm.reg(a0), 101u);
    EXPECT_EQ(ls.cold.reg(a0), 101u);
}

TEST(Predecode, FenceIFlushesCacheMatchesColdDecode) {
    // No bus invalidation hook: fence.i alone must make the store visible.
    Lockstep ls(/*store_invalidation_hook=*/false);
    ls.load(self_modifying_program(/*use_fence_i=*/true));
    ls.reset();
    ls.run_compare(1000);
    EXPECT_EQ(ls.warm.reg(a0), 101u);
    EXPECT_EQ(ls.cold.reg(a0), 101u);
}

TEST(Predecode, StaleCacheWithoutInvalidationProvesCachingIsReal) {
    // Neither the hook nor fence.i: the predecoding core must keep
    // executing the *cached* original instruction while the cold core sees
    // the patched word — demonstrating the cache actually serves issues
    // (and that the two invalidation tests above test something real).
    SelfModBus bus;
    Core core("warm", bus);
    auto code = self_modifying_program(/*use_fence_i=*/false);
    std::copy(code.begin(), code.end(), bus.ram.begin());
    core.reset(0);
    core.run(1000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.reg(a0), 2u);  // stale: both iterations ran `addi a0,a0,1`

    SelfModBus cold_bus;
    Core cold("cold", cold_bus);
    cold.set_predecode(false);
    std::copy(code.begin(), code.end(), cold_bus.ram.begin());
    cold.reset(0);
    cold.run(1000);
    ASSERT_TRUE(cold.halted());
    EXPECT_EQ(cold.reg(a0), 101u);  // fresh decode sees the patch
}

TEST(Predecode, ReconfigureMidRunMatchesColdDecode) {
    // Firmware reload: run image A to completion (warming the cache), swap
    // the code RAM underneath (as Rpu::load_firmware does), reset, and run
    // image B. reset() must drop every record warmed by A.
    Assembler a1;
    a1.li(a0, 0);
    a1.li(s1, 10);
    a1.label("l");
    a1.addi(a0, a0, 3);
    a1.addi(s1, s1, -1);
    a1.bnez(s1, "l");
    a1.ebreak();
    auto image_a = a1.assemble();

    // Image B reuses the same addresses with different instructions.
    Assembler a2;
    a2.li(a0, 1000);
    a2.li(s1, 4);
    a2.label("l");
    a2.addi(a0, a0, -7);
    a2.addi(s1, s1, -1);
    a2.bnez(s1, "l");
    a2.ebreak();
    auto image_b = a2.assemble();

    Lockstep ls(/*store_invalidation_hook=*/false);
    ls.load(image_a);
    ls.reset();
    ls.run_compare(1000);
    EXPECT_EQ(ls.warm.reg(a0), 30u);

    ls.load(image_b);  // host-side reload: no stores through the bus
    ls.reset();        // must flush the decoded cache
    ls.run_compare(1000);
    EXPECT_EQ(ls.warm.reg(a0), 1000u - 28u);
    EXPECT_EQ(ls.cold.reg(a0), 1000u - 28u);
}

TEST(Predecode, DecodeIsPureAndCompleteForAluOps) {
    // decode() is exposed for tooling: spot-check a few encodings against
    // the dispatch records the interpreter executes from.
    Decoded d = Core::decode(encode([](Assembler& p) { p.add(t2, t0, t1); }));
    EXPECT_EQ(d.op, Decoded::kAdd);
    EXPECT_EQ(d.rd, t2);
    EXPECT_EQ(d.rs1, t0);
    EXPECT_EQ(d.rs2, t1);

    d = Core::decode(encode([](Assembler& p) { p.addi(a0, a0, -5); }));
    EXPECT_EQ(d.op, Decoded::kAddi);
    EXPECT_EQ(d.imm, -5);

    d = Core::decode(0x0000100f);
    EXPECT_EQ(d.op, Decoded::kFenceI);

    d = Core::decode(0xffffffff);
    EXPECT_EQ(d.op, Decoded::kIllegal);
}

TEST(CoreTiming, StopHaltsImmediately) {
    TestBus bus;
    Assembler a;
    a.label("loop");
    a.j("loop");
    bus.code = a.assemble();
    Core core("t", bus);
    core.reset(0);
    core.run(10);
    EXPECT_FALSE(core.halted());
    core.stop();
    EXPECT_TRUE(core.halted());
    EXPECT_FALSE(core.faulted());
}

}  // namespace
}  // namespace rosebud::rv
