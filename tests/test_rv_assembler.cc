/// Assembler + encoder/decoder + disassembler tests, including
/// property-style immediate round-trips over the full encodable ranges.

#include <gtest/gtest.h>

#include "rv/assembler.h"
#include "rv/disasm.h"
#include "rv/isa.h"
#include "sim/log.h"
#include "sim/random.h"

namespace rosebud::rv {
namespace {

TEST(IsaCodec, ImmIRoundTrip) {
    sim::Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        int32_t imm = int32_t(rng.range(0, 4095)) - 2048;
        uint32_t insn = encode_i(imm, t0, 0, t1, kOpImm);
        EXPECT_EQ(dec_imm_i(insn), imm);
    }
}

TEST(IsaCodec, ImmSRoundTrip) {
    sim::Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
        int32_t imm = int32_t(rng.range(0, 4095)) - 2048;
        uint32_t insn = encode_s(imm, t0, t1, 2);
        EXPECT_EQ(dec_imm_s(insn), imm);
        EXPECT_EQ(dec_rs1(insn), t1);
        EXPECT_EQ(dec_rs2(insn), t0);
    }
}

TEST(IsaCodec, ImmBRoundTrip) {
    sim::Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        int32_t imm = (int32_t(rng.range(0, 4095)) - 2048) * 2;
        uint32_t insn = encode_b(imm, t0, t1, 1);
        EXPECT_EQ(dec_imm_b(insn), imm);
    }
}

TEST(IsaCodec, ImmJRoundTrip) {
    sim::Rng rng(4);
    for (int i = 0; i < 2000; ++i) {
        int32_t imm = (int32_t(rng.range(0, (1 << 20) - 1)) - (1 << 19)) * 2;
        uint32_t insn = encode_j(imm, ra);
        EXPECT_EQ(dec_imm_j(insn), imm);
        EXPECT_EQ(dec_rd(insn), ra);
    }
}

TEST(IsaCodec, ImmURoundTrip) {
    uint32_t insn = encode_u(0xfffff, t3, kOpLui);
    EXPECT_EQ(uint32_t(dec_imm_u(insn)), 0xfffff000u);
}

TEST(IsaCodec, RTypeFields) {
    uint32_t insn = encode_r(0x20, t2, t1, 5, t0, kOpReg);
    EXPECT_EQ(dec_opcode(insn), uint32_t(kOpReg));
    EXPECT_EQ(dec_rd(insn), t0);
    EXPECT_EQ(dec_rs1(insn), t1);
    EXPECT_EQ(dec_rs2(insn), t2);
    EXPECT_EQ(dec_funct3(insn), 5u);
    EXPECT_EQ(dec_funct7(insn), 0x20u);
}

TEST(Assembler, ForwardAndBackwardLabels) {
    Assembler a;
    a.label("start");
    a.beq(t0, t1, "fwd");
    a.j("start");
    a.label("fwd");
    a.nop();
    auto image = a.assemble();
    ASSERT_EQ(image.size(), 3u);
    EXPECT_EQ(dec_imm_b(image[0]), 8);       // to "fwd"
    EXPECT_EQ(dec_imm_j(image[1]), -4);      // back to "start"
}

TEST(Assembler, UndefinedLabelIsFatal) {
    Assembler a;
    a.j("nowhere");
    EXPECT_THROW(a.assemble(), sim::FatalError);
}

TEST(Assembler, DuplicateLabelIsFatal) {
    Assembler a;
    a.label("x");
    EXPECT_THROW(a.label("x"), sim::FatalError);
}

TEST(Assembler, ImmediateRangeChecked) {
    Assembler a;
    EXPECT_THROW(a.addi(t0, t0, 2048), sim::FatalError);
    EXPECT_THROW(a.addi(t0, t0, -2049), sim::FatalError);
    EXPECT_THROW(a.lw(t0, 5000, t1), sim::FatalError);
}

TEST(Assembler, BranchOutOfRangeIsFatal) {
    Assembler a;
    a.beq(t0, t1, "far");
    for (int i = 0; i < 2000; ++i) a.nop();
    a.label("far");
    EXPECT_THROW(a.assemble(), sim::FatalError);
}

TEST(Assembler, LiSingleInstructionWhenSmall) {
    Assembler a;
    a.li(t0, 100);
    EXPECT_EQ(a.instruction_count(), 1u);
    a.li(t0, 0x12345678);
    EXPECT_EQ(a.instruction_count(), 3u);
}

TEST(Assembler, HereTracksPosition) {
    Assembler a(0x100);
    EXPECT_EQ(a.here(), 0x100u);
    a.nop();
    a.nop();
    EXPECT_EQ(a.here(), 0x108u);
}

TEST(Disasm, KnownInstructions) {
    EXPECT_EQ(disassemble(encode_i(5, t0, 0, t1, kOpImm)), "addi t1, t0, 5");
    EXPECT_EQ(disassemble(encode_r(0, t2, t1, 0, t0, kOpReg)), "add t0, t1, t2");
    EXPECT_EQ(disassemble(encode_r(0x20, t2, t1, 0, t0, kOpReg)), "sub t0, t1, t2");
    EXPECT_EQ(disassemble(0x00100073), "ebreak");
    EXPECT_EQ(disassemble(0x00000073), "ecall");
    EXPECT_EQ(disassemble(encode_i(-8, sp, 2, a0, kOpLoad)), "lw a0, -8(sp)");
    EXPECT_EQ(disassemble(encode_s(12, a1, sp, 2)), "sw a1, 12(sp)");
}

TEST(Disasm, BranchTargetsAbsolute) {
    uint32_t insn = encode_b(-8, t1, t0, 0);
    EXPECT_EQ(disassemble(insn, 0x100), "beq t0, t1, 0xf8");
}

TEST(Disasm, ImageHasOneLinePerWord) {
    Assembler a;
    a.nop();
    a.li(t0, 0x12345678);
    auto image = a.assemble();
    std::string text = disassemble_image(image);
    size_t lines = std::count(text.begin(), text.end(), '\n');
    EXPECT_EQ(lines, image.size());
}

TEST(Disasm, EveryEncodableOpcodeDisassembles) {
    // Property: nothing the assembler emits disassembles to ".word".
    Assembler a;
    a.add(t0, t1, t2); a.sub(t0, t1, t2); a.sll(t0, t1, t2); a.slt(t0, t1, t2);
    a.sltu(t0, t1, t2); a.xor_(t0, t1, t2); a.srl(t0, t1, t2); a.sra(t0, t1, t2);
    a.or_(t0, t1, t2); a.and_(t0, t1, t2); a.mul(t0, t1, t2); a.mulh(t0, t1, t2);
    a.mulhsu(t0, t1, t2); a.mulhu(t0, t1, t2); a.div(t0, t1, t2); a.divu(t0, t1, t2);
    a.rem(t0, t1, t2); a.remu(t0, t1, t2);
    a.addi(t0, t1, 1); a.slti(t0, t1, 1); a.sltiu(t0, t1, 1); a.xori(t0, t1, 1);
    a.ori(t0, t1, 1); a.andi(t0, t1, 1); a.slli(t0, t1, 1); a.srli(t0, t1, 1);
    a.srai(t0, t1, 1);
    a.lb(t0, 0, t1); a.lh(t0, 0, t1); a.lw(t0, 0, t1); a.lbu(t0, 0, t1);
    a.lhu(t0, 0, t1); a.sb(t0, 0, t1); a.sh(t0, 0, t1); a.sw(t0, 0, t1);
    a.lui(t0, 1); a.auipc(t0, 1);
    a.jalr(t0, t1, 0); a.ecall(); a.ebreak(); a.fence(); a.csrrs(t0, kCsrCycle, zero);
    a.label("l");
    a.beq(t0, t1, "l"); a.bne(t0, t1, "l"); a.blt(t0, t1, "l"); a.bge(t0, t1, "l");
    a.bltu(t0, t1, "l"); a.bgeu(t0, t1, "l"); a.jal(ra, "l");
    auto image = a.assemble();
    for (size_t i = 0; i < image.size(); ++i) {
        std::string d = disassemble(image[i], uint32_t(i * 4));
        EXPECT_EQ(d.find(".word"), std::string::npos) << d;
    }
}

TEST(Assembler, BranchOutOfRangeReportsLabelAndDistance) {
    Assembler a;
    a.beq(t0, t1, "far");
    for (int i = 0; i < 2000; ++i) a.nop();
    a.label("far");
    try {
        a.assemble();
        FAIL() << "expected FatalError";
    } catch (const sim::FatalError& e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("'far'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("8004"), std::string::npos) << msg;  // 2001 words away
        EXPECT_NE(msg.find("-4096"), std::string::npos) << msg;  // the legal range
    }
}

TEST(Assembler, JalOutOfRangeReportsLabelAndDistance) {
    Assembler a;
    a.jal(ra, "very_far");
    for (int i = 0; i < (1 << 18) + 1; ++i) a.nop();  // > 1 MB away
    a.label("very_far");
    try {
        a.assemble();
        FAIL() << "expected FatalError";
    } catch (const sim::FatalError& e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("'very_far'"), std::string::npos) << msg;
        EXPECT_NE(msg.find(std::to_string(((1 << 18) + 2) * 4)), std::string::npos) << msg;
        EXPECT_NE(msg.find("1048574"), std::string::npos) << msg;
    }
}

// --- disassembler round-trip ------------------------------------------------
//
// A tiny re-assembler for the disassembler's output grammar: enough to
// prove text -> word is the inverse of word -> text for every instruction
// form the Assembler can emit.

Reg
parse_reg(const std::string& name) {
    static const char* names[32] = {
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
        "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
        "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
    };
    for (int i = 0; i < 32; ++i) {
        if (name == names[i]) return Reg(i);
    }
    ADD_FAILURE() << "not a register: " << name;
    return zero;
}

uint32_t
reassemble(const std::string& text, uint32_t pc) {
    // Tokenize: strip commas/parens so "lw a0, -8(sp)" -> [lw, a0, -8, sp].
    std::vector<std::string> tok;
    std::string cur;
    for (char c : text) {
        if (c == ' ' || c == ',' || c == '(' || c == ')') {
            if (!cur.empty()) tok.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty()) tok.push_back(cur);
    const std::string& m = tok[0];
    auto num = [&](size_t i) { return int32_t(std::strtol(tok[i].c_str(), nullptr, 0)); };
    auto unum = [&](size_t i) { return uint32_t(std::strtoul(tok[i].c_str(), nullptr, 0)); };

    struct RForm { const char* name; uint32_t f7, f3; };
    static const RForm r_forms[] = {
        {"add", 0, 0},    {"sub", 0x20, 0}, {"sll", 0, 1},    {"slt", 0, 2},
        {"sltu", 0, 3},   {"xor", 0, 4},    {"srl", 0, 5},    {"sra", 0x20, 5},
        {"or", 0, 6},     {"and", 0, 7},    {"mul", 1, 0},    {"mulh", 1, 1},
        {"mulhsu", 1, 2}, {"mulhu", 1, 3},  {"div", 1, 4},    {"divu", 1, 5},
        {"rem", 1, 6},    {"remu", 1, 7},
    };
    for (const auto& f : r_forms) {
        if (m == f.name) {
            return encode_r(f.f7, parse_reg(tok[3]), parse_reg(tok[2]), f.f3,
                            parse_reg(tok[1]), kOpReg);
        }
    }
    struct IForm { const char* name; uint32_t f3; };
    static const IForm i_alu[] = {{"addi", 0}, {"slti", 2}, {"sltiu", 3},
                                  {"xori", 4}, {"ori", 6},  {"andi", 7}};
    for (const auto& f : i_alu) {
        if (m == f.name) {
            return encode_i(num(3), parse_reg(tok[2]), f.f3, parse_reg(tok[1]), kOpImm);
        }
    }
    if (m == "slli") return encode_i(num(3), parse_reg(tok[2]), 1, parse_reg(tok[1]), kOpImm);
    if (m == "srli") return encode_i(num(3), parse_reg(tok[2]), 5, parse_reg(tok[1]), kOpImm);
    if (m == "srai") {
        return encode_i(0x400 | num(3), parse_reg(tok[2]), 5, parse_reg(tok[1]), kOpImm);
    }
    static const IForm loads[] = {{"lb", 0}, {"lh", 1}, {"lw", 2}, {"lbu", 4}, {"lhu", 5}};
    for (const auto& f : loads) {
        if (m == f.name) {
            return encode_i(num(2), parse_reg(tok[3]), f.f3, parse_reg(tok[1]), kOpLoad);
        }
    }
    static const IForm stores[] = {{"sb", 0}, {"sh", 1}, {"sw", 2}};
    for (const auto& f : stores) {
        if (m == f.name) {
            return encode_s(num(2), parse_reg(tok[1]), parse_reg(tok[3]), f.f3);
        }
    }
    static const IForm branches[] = {{"beq", 0},  {"bne", 1},  {"blt", 4},
                                     {"bge", 5},  {"bltu", 6}, {"bgeu", 7}};
    for (const auto& f : branches) {
        if (m == f.name) {
            return encode_b(int32_t(unum(3) - pc), parse_reg(tok[2]), parse_reg(tok[1]), f.f3);
        }
    }
    if (m == "jal") return encode_j(int32_t(unum(2) - pc), parse_reg(tok[1]));
    if (m == "jalr") return encode_i(num(2), parse_reg(tok[3]), 0, parse_reg(tok[1]), kOpJalr);
    if (m == "lui") return encode_u(int32_t(unum(2)), parse_reg(tok[1]), kOpLui);
    if (m == "auipc") return encode_u(int32_t(unum(2)), parse_reg(tok[1]), kOpAuipc);
    if (m == "csrrw" || m == "csrrs" || m == "csrrc") {
        uint32_t f3 = m == "csrrw" ? 1 : (m == "csrrs" ? 2 : 3);
        return unum(2) << 20 | uint32_t(parse_reg(tok[3])) << 15 | f3 << 12 |
               uint32_t(parse_reg(tok[1])) << 7 | kOpSystem;
    }
    if (m == "ecall") return 0x00000073;
    if (m == "ebreak") return 0x00100073;
    if (m == "mret") return 0x30200073;
    if (m == "fence") return 0x0000000f;
    ADD_FAILURE() << "unparsed mnemonic in: " << text;
    return 0;
}

TEST(Disasm, FullInstructionSetRoundTrips) {
    // Every RV32IM form plus every pseudo-instruction: assemble,
    // disassemble, re-assemble — must reproduce the identical word.
    Assembler a;
    a.add(t0, t1, t2); a.sub(s0, s1, s2); a.sll(a0, a1, a2); a.slt(t3, t4, t5);
    a.sltu(t0, t1, t2); a.xor_(s3, s4, s5); a.srl(a3, a4, a5); a.sra(t6, s6, s7);
    a.or_(s8, s9, s10); a.and_(s11, a6, a7); a.mul(t0, t1, t2); a.mulh(t0, t1, t2);
    a.mulhsu(t0, t1, t2); a.mulhu(t0, t1, t2); a.div(t0, t1, t2); a.divu(t0, t1, t2);
    a.rem(t0, t1, t2); a.remu(t0, t1, t2);
    a.addi(t0, t1, -2048); a.addi(t0, t1, 2047); a.slti(a0, a1, -1);
    a.sltiu(a0, a1, 255); a.xori(t2, t3, 0x7ff); a.ori(s0, s1, -2048);
    a.andi(gp, tp, 0xff);
    a.slli(t0, t1, 0); a.slli(t0, t1, 31); a.srli(t0, t1, 1); a.srli(t0, t1, 31);
    a.srai(t0, t1, 1); a.srai(t0, t1, 31);
    a.lb(a0, -2048, sp); a.lh(a1, 2047, gp); a.lw(a2, 0, tp); a.lbu(a3, 1, ra);
    a.lhu(a4, -1, s0);
    a.sb(a0, -2048, sp); a.sh(a1, 2047, gp); a.sw(a2, 4, tp);
    a.lui(t0, 0); a.lui(t0, 0xfffff); a.lui(t0, 0x2000);
    a.auipc(t1, 0); a.auipc(t1, 0xfffff);
    a.jalr(ra, t0, -4); a.jalr(zero, ra, 0);
    a.ecall(); a.ebreak(); a.fence(); a.mret();
    a.csrrw(zero, kCsrMtvec, t0); a.csrrs(t1, kCsrCycle, zero);
    a.csrrc(a0, kCsrMstatus, a1);
    // Pseudo-instructions.
    a.nop(); a.mv(s0, s1); a.li(t0, 42); a.li(t0, -42); a.li(t0, 0x12345678);
    a.li(t0, int32_t(0x80000000)); a.ret();
    a.label("target");
    a.beq(t0, t1, "target"); a.bne(t0, t1, "target"); a.blt(t0, t1, "target");
    a.bge(t0, t1, "target"); a.bltu(t0, t1, "target"); a.bgeu(t0, t1, "target");
    a.beqz(a0, "target"); a.bnez(a0, "target");
    a.jal(ra, "target"); a.j("target"); a.call("target");

    auto image = a.assemble();
    ASSERT_GT(image.size(), 70u);
    for (size_t i = 0; i < image.size(); ++i) {
        uint32_t pc = uint32_t(i) * 4;
        std::string text = disassemble(image[i], pc);
        ASSERT_EQ(text.find(".word"), std::string::npos)
            << "word " << i << " did not disassemble: " << text;
        EXPECT_EQ(reassemble(text, pc), image[i])
            << "round-trip mismatch at pc 0x" << std::hex << pc << ": " << text;
    }
}

TEST(Disasm, SystemInstructionsPrintExactly) {
    EXPECT_EQ(disassemble(0x30200073), "mret");
    Assembler a;
    a.csrrw(zero, kCsrMtvec, t0);
    a.csrrc(t1, kCsrMstatus, zero);
    auto image = a.assemble();
    EXPECT_EQ(disassemble(image[0]), "csrrw zero, 0x305, t0");
    EXPECT_EQ(disassemble(image[1]), "csrrc t1, 0x300, zero");
}

}  // namespace
}  // namespace rosebud::rv
