/// Assembler + encoder/decoder + disassembler tests, including
/// property-style immediate round-trips over the full encodable ranges.

#include <gtest/gtest.h>

#include "rv/assembler.h"
#include "rv/disasm.h"
#include "rv/isa.h"
#include "sim/log.h"
#include "sim/random.h"

namespace rosebud::rv {
namespace {

TEST(IsaCodec, ImmIRoundTrip) {
    sim::Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        int32_t imm = int32_t(rng.range(0, 4095)) - 2048;
        uint32_t insn = encode_i(imm, t0, 0, t1, kOpImm);
        EXPECT_EQ(dec_imm_i(insn), imm);
    }
}

TEST(IsaCodec, ImmSRoundTrip) {
    sim::Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
        int32_t imm = int32_t(rng.range(0, 4095)) - 2048;
        uint32_t insn = encode_s(imm, t0, t1, 2);
        EXPECT_EQ(dec_imm_s(insn), imm);
        EXPECT_EQ(dec_rs1(insn), t1);
        EXPECT_EQ(dec_rs2(insn), t0);
    }
}

TEST(IsaCodec, ImmBRoundTrip) {
    sim::Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        int32_t imm = (int32_t(rng.range(0, 4095)) - 2048) * 2;
        uint32_t insn = encode_b(imm, t0, t1, 1);
        EXPECT_EQ(dec_imm_b(insn), imm);
    }
}

TEST(IsaCodec, ImmJRoundTrip) {
    sim::Rng rng(4);
    for (int i = 0; i < 2000; ++i) {
        int32_t imm = (int32_t(rng.range(0, (1 << 20) - 1)) - (1 << 19)) * 2;
        uint32_t insn = encode_j(imm, ra);
        EXPECT_EQ(dec_imm_j(insn), imm);
        EXPECT_EQ(dec_rd(insn), ra);
    }
}

TEST(IsaCodec, ImmURoundTrip) {
    uint32_t insn = encode_u(0xfffff, t3, kOpLui);
    EXPECT_EQ(uint32_t(dec_imm_u(insn)), 0xfffff000u);
}

TEST(IsaCodec, RTypeFields) {
    uint32_t insn = encode_r(0x20, t2, t1, 5, t0, kOpReg);
    EXPECT_EQ(dec_opcode(insn), uint32_t(kOpReg));
    EXPECT_EQ(dec_rd(insn), t0);
    EXPECT_EQ(dec_rs1(insn), t1);
    EXPECT_EQ(dec_rs2(insn), t2);
    EXPECT_EQ(dec_funct3(insn), 5u);
    EXPECT_EQ(dec_funct7(insn), 0x20u);
}

TEST(Assembler, ForwardAndBackwardLabels) {
    Assembler a;
    a.label("start");
    a.beq(t0, t1, "fwd");
    a.j("start");
    a.label("fwd");
    a.nop();
    auto image = a.assemble();
    ASSERT_EQ(image.size(), 3u);
    EXPECT_EQ(dec_imm_b(image[0]), 8);       // to "fwd"
    EXPECT_EQ(dec_imm_j(image[1]), -4);      // back to "start"
}

TEST(Assembler, UndefinedLabelIsFatal) {
    Assembler a;
    a.j("nowhere");
    EXPECT_THROW(a.assemble(), sim::FatalError);
}

TEST(Assembler, DuplicateLabelIsFatal) {
    Assembler a;
    a.label("x");
    EXPECT_THROW(a.label("x"), sim::FatalError);
}

TEST(Assembler, ImmediateRangeChecked) {
    Assembler a;
    EXPECT_THROW(a.addi(t0, t0, 2048), sim::FatalError);
    EXPECT_THROW(a.addi(t0, t0, -2049), sim::FatalError);
    EXPECT_THROW(a.lw(t0, 5000, t1), sim::FatalError);
}

TEST(Assembler, BranchOutOfRangeIsFatal) {
    Assembler a;
    a.beq(t0, t1, "far");
    for (int i = 0; i < 2000; ++i) a.nop();
    a.label("far");
    EXPECT_THROW(a.assemble(), sim::FatalError);
}

TEST(Assembler, LiSingleInstructionWhenSmall) {
    Assembler a;
    a.li(t0, 100);
    EXPECT_EQ(a.instruction_count(), 1u);
    a.li(t0, 0x12345678);
    EXPECT_EQ(a.instruction_count(), 3u);
}

TEST(Assembler, HereTracksPosition) {
    Assembler a(0x100);
    EXPECT_EQ(a.here(), 0x100u);
    a.nop();
    a.nop();
    EXPECT_EQ(a.here(), 0x108u);
}

TEST(Disasm, KnownInstructions) {
    EXPECT_EQ(disassemble(encode_i(5, t0, 0, t1, kOpImm)), "addi t1, t0, 5");
    EXPECT_EQ(disassemble(encode_r(0, t2, t1, 0, t0, kOpReg)), "add t0, t1, t2");
    EXPECT_EQ(disassemble(encode_r(0x20, t2, t1, 0, t0, kOpReg)), "sub t0, t1, t2");
    EXPECT_EQ(disassemble(0x00100073), "ebreak");
    EXPECT_EQ(disassemble(0x00000073), "ecall");
    EXPECT_EQ(disassemble(encode_i(-8, sp, 2, a0, kOpLoad)), "lw a0, -8(sp)");
    EXPECT_EQ(disassemble(encode_s(12, a1, sp, 2)), "sw a1, 12(sp)");
}

TEST(Disasm, BranchTargetsAbsolute) {
    uint32_t insn = encode_b(-8, t1, t0, 0);
    EXPECT_EQ(disassemble(insn, 0x100), "beq t0, t1, 0xf8");
}

TEST(Disasm, ImageHasOneLinePerWord) {
    Assembler a;
    a.nop();
    a.li(t0, 0x12345678);
    auto image = a.assemble();
    std::string text = disassemble_image(image);
    size_t lines = std::count(text.begin(), text.end(), '\n');
    EXPECT_EQ(lines, image.size());
}

TEST(Disasm, EveryEncodableOpcodeDisassembles) {
    // Property: nothing the assembler emits disassembles to ".word".
    Assembler a;
    a.add(t0, t1, t2); a.sub(t0, t1, t2); a.sll(t0, t1, t2); a.slt(t0, t1, t2);
    a.sltu(t0, t1, t2); a.xor_(t0, t1, t2); a.srl(t0, t1, t2); a.sra(t0, t1, t2);
    a.or_(t0, t1, t2); a.and_(t0, t1, t2); a.mul(t0, t1, t2); a.mulh(t0, t1, t2);
    a.mulhsu(t0, t1, t2); a.mulhu(t0, t1, t2); a.div(t0, t1, t2); a.divu(t0, t1, t2);
    a.rem(t0, t1, t2); a.remu(t0, t1, t2);
    a.addi(t0, t1, 1); a.slti(t0, t1, 1); a.sltiu(t0, t1, 1); a.xori(t0, t1, 1);
    a.ori(t0, t1, 1); a.andi(t0, t1, 1); a.slli(t0, t1, 1); a.srli(t0, t1, 1);
    a.srai(t0, t1, 1);
    a.lb(t0, 0, t1); a.lh(t0, 0, t1); a.lw(t0, 0, t1); a.lbu(t0, 0, t1);
    a.lhu(t0, 0, t1); a.sb(t0, 0, t1); a.sh(t0, 0, t1); a.sw(t0, 0, t1);
    a.lui(t0, 1); a.auipc(t0, 1);
    a.jalr(t0, t1, 0); a.ecall(); a.ebreak(); a.fence(); a.csrrs(t0, kCsrCycle, zero);
    a.label("l");
    a.beq(t0, t1, "l"); a.bne(t0, t1, "l"); a.blt(t0, t1, "l"); a.bge(t0, t1, "l");
    a.bltu(t0, t1, "l"); a.bgeu(t0, t1, "l"); a.jal(ra, "l");
    auto image = a.assemble();
    for (size_t i = 0; i < image.size(); ++i) {
        std::string d = disassemble(image[i], uint32_t(i * 4));
        EXPECT_EQ(d.find(".word"), std::string::npos) << d;
    }
}

}  // namespace
}  // namespace rosebud::rv
