/// Load balancer tests (policies, slot conservation, host channel, the
/// inline reassembler) and broadcast-network tests (fan-out, ordering,
/// blocking, round-robin fairness, latency bands).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "lb/load_balancer.h"
#include "msg/broadcast.h"
#include "net/headers.h"
#include "net/tracegen.h"
#include "sim/kernel.h"
#include "sim/stats.h"

namespace rosebud {
namespace {

rpu::SlotConfig
cfg_slots(uint32_t count) {
    rpu::SlotConfig c;
    c.count = count;
    c.base = rpu::kPmemBase;
    c.size = 16384;
    return c;
}

net::PacketPtr
tcp_pkt(uint32_t src_ip, uint16_t sport, uint32_t seq = 0, uint32_t size = 64) {
    net::PacketBuilder b;
    b.ipv4(src_ip, 0x0a000002).tcp(sport, 80, seq).frame_size(size);
    return b.build();
}

struct LbFixture {
    sim::Stats stats;
    lb::LoadBalancer lb;

    explicit LbFixture(lb::LoadBalancer::Config cfg) : lb(stats, cfg) {
        for (unsigned i = 0; i < cfg.rpu_count; ++i) {
            lb.on_slot_config(uint8_t(i), cfg_slots(4));
        }
    }
};

TEST(LoadBalancerRR, RotatesOverAllRpus) {
    LbFixture f({.rpu_count = 4, .policy = lb::Policy::kRoundRobin});
    std::vector<uint8_t> order;
    for (int i = 0; i < 8; ++i) {
        auto p = tcp_pkt(1, 1000);
        ASSERT_TRUE(f.lb.try_assign(p));
        order.push_back(p->dest_rpu);
    }
    EXPECT_EQ(order, (std::vector<uint8_t>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(LoadBalancerRR, SkipsRpusWithoutSlots) {
    LbFixture f({.rpu_count = 2, .policy = lb::Policy::kRoundRobin});
    // Exhaust RPU 0's slots.
    for (int i = 0; i < 8; ++i) {
        auto p = tcp_pkt(1, 1000);
        ASSERT_TRUE(f.lb.try_assign(p));
    }
    EXPECT_EQ(f.lb.free_slots(0), 0u);
    EXPECT_EQ(f.lb.free_slots(1), 0u);
    auto p = tcp_pkt(1, 1000);
    EXPECT_FALSE(f.lb.try_assign(p));  // everything full
    f.lb.on_slot_free(1, 2);
    ASSERT_TRUE(f.lb.try_assign(p));
    EXPECT_EQ(p->dest_rpu, 1);
    EXPECT_EQ(p->dest_slot, 2);
}

TEST(LoadBalancerRR, SlotConservation) {
    LbFixture f({.rpu_count = 4, .policy = lb::Policy::kRoundRobin});
    sim::Rng rng(3);
    std::vector<std::pair<uint8_t, uint8_t>> outstanding;
    for (int step = 0; step < 2000; ++step) {
        if (rng.chance(0.6)) {
            auto p = tcp_pkt(uint32_t(rng.next()), uint16_t(rng.next()));
            if (f.lb.try_assign(p)) outstanding.push_back({p->dest_rpu, p->dest_slot});
        } else if (!outstanding.empty()) {
            size_t i = rng.below(outstanding.size());
            f.lb.on_slot_free(outstanding[i].first, outstanding[i].second);
            outstanding.erase(outstanding.begin() + long(i));
        }
        uint32_t free_total = 0;
        for (unsigned r = 0; r < 4; ++r) free_total += f.lb.free_slots(uint8_t(r));
        EXPECT_EQ(free_total + outstanding.size(), 16u);
    }
    // No slot handed out twice.
    std::set<std::pair<uint8_t, uint8_t>> unique(outstanding.begin(), outstanding.end());
    EXPECT_EQ(unique.size(), outstanding.size());
}

TEST(LoadBalancerHash, FlowAffinity) {
    LbFixture f({.rpu_count = 8, .policy = lb::Policy::kHash});
    std::map<uint32_t, uint8_t> flow_to_rpu;
    sim::Rng rng(4);
    for (int i = 0; i < 500; ++i) {
        uint32_t src = 100 + uint32_t(rng.below(20));  // 20 flows
        auto p = tcp_pkt(src, 1234);
        if (!f.lb.try_assign(p)) {
            // Slot exhaustion: free everything and retry.
            for (unsigned r = 0; r < 8; ++r) f.lb.on_slot_config(uint8_t(r), cfg_slots(4));
            ASSERT_TRUE(f.lb.try_assign(p));
        }
        EXPECT_TRUE(p->hash_prepended);
        EXPECT_EQ(p->lb_hash, net::packet_flow_hash(*p));
        auto [it, fresh] = flow_to_rpu.emplace(src, p->dest_rpu);
        if (!fresh) EXPECT_EQ(it->second, p->dest_rpu) << "flow moved RPUs";
    }
}

TEST(LoadBalancerHash, StrictAffinityBlocksWhenRpuFull) {
    LbFixture f({.rpu_count = 2, .policy = lb::Policy::kHash});
    auto p = tcp_pkt(42, 999);
    ASSERT_TRUE(f.lb.try_assign(p));
    uint8_t home = p->dest_rpu;
    // Fill the home RPU.
    int assigned = 1;
    while (true) {
        auto q = tcp_pkt(42, 999);
        if (!f.lb.try_assign(q)) break;
        EXPECT_EQ(q->dest_rpu, home);
        ++assigned;
    }
    EXPECT_EQ(assigned, 4);  // exactly the slot count
    // The other RPU still has free slots, but the flow must wait.
    EXPECT_EQ(f.lb.free_slots(home ^ 1), 4u);
}

TEST(LoadBalancerLeastLoaded, PicksMostFreeSlots) {
    LbFixture f({.rpu_count = 3, .policy = lb::Policy::kLeastLoaded});
    // Drain RPU 0 to 1 slot and RPU 1 to 2 slots.
    for (int i = 0; i < 3; ++i) f.lb.request_slot(0);
    for (int i = 0; i < 2; ++i) f.lb.request_slot(1);
    auto p = tcp_pkt(1, 1);
    ASSERT_TRUE(f.lb.try_assign(p));
    EXPECT_EQ(p->dest_rpu, 2);
}

TEST(LoadBalancerCustom, SteersByUserPolicy) {
    // The Conclusion's cloud-sharing scenario: a provider policy pins
    // traffic classes to RPU subsets.
    sim::Stats stats;
    lb::LoadBalancer::Config cfg;
    cfg.rpu_count = 4;
    cfg.policy = lb::Policy::kCustom;
    cfg.custom_steer = [](const net::Packet& pkt) -> uint32_t {
        auto parsed = net::parse_packet(pkt);
        return (parsed && parsed->has_tcp && parsed->tcp.dst_port == 80) ? 0x3 : 0xc;
    };
    lb::LoadBalancer lb(stats, cfg);
    for (unsigned i = 0; i < 4; ++i) lb.on_slot_config(uint8_t(i), cfg_slots(4));

    for (int i = 0; i < 4; ++i) {
        net::PacketBuilder b;
        b.ipv4(1, 2).tcp(1000, 80).frame_size(64);
        auto p = b.build();
        ASSERT_TRUE(lb.try_assign(p));
        EXPECT_LT(p->dest_rpu, 2);  // web traffic -> tenant on RPUs 0-1
    }
    for (int i = 0; i < 4; ++i) {
        net::PacketBuilder b;
        b.ipv4(1, 2).tcp(1000, 443).frame_size(64);
        auto p = b.build();
        ASSERT_TRUE(lb.try_assign(p));
        EXPECT_GE(p->dest_rpu, 2);  // everything else -> RPUs 2-3
    }
}

TEST(LoadBalancerCustom, ZeroMaskDefersPacket) {
    sim::Stats stats;
    lb::LoadBalancer::Config cfg;
    cfg.rpu_count = 2;
    cfg.policy = lb::Policy::kCustom;
    cfg.custom_steer = [](const net::Packet&) -> uint32_t { return 0; };
    lb::LoadBalancer lb(stats, cfg);
    for (unsigned i = 0; i < 2; ++i) lb.on_slot_config(uint8_t(i), cfg_slots(4));
    auto p = tcp_pkt(1, 1);
    EXPECT_FALSE(lb.try_assign(p));
}

TEST(LoadBalancer, RecvMaskExcludesRpus) {
    LbFixture f({.rpu_count = 4, .policy = lb::Policy::kRoundRobin});
    f.lb.host_write(lb::kLbRegRecvMask, 0b0101);
    for (int i = 0; i < 8; ++i) {
        auto p = tcp_pkt(1, 1);
        ASSERT_TRUE(f.lb.try_assign(p));
        EXPECT_TRUE(p->dest_rpu == 0 || p->dest_rpu == 2);
    }
}

TEST(LoadBalancer, HostChannelReadsStatus) {
    LbFixture f({.rpu_count = 4, .policy = lb::Policy::kHash});
    EXPECT_EQ(f.lb.host_read(lb::kLbRegFreeSlotsBase + 4), 4u);
    f.lb.request_slot(1);
    EXPECT_EQ(f.lb.host_read(lb::kLbRegFreeSlotsBase + 4), 3u);
    EXPECT_EQ(f.lb.host_read(lb::kLbRegPolicy), uint32_t(lb::Policy::kHash));
    f.lb.host_write(lb::kLbRegRecvMask, 0x3);
    EXPECT_EQ(f.lb.host_read(lb::kLbRegRecvMask), 0x3u);
}

TEST(LoadBalancer, FlushClearsSlots) {
    LbFixture f({.rpu_count = 2, .policy = lb::Policy::kRoundRobin});
    f.lb.host_write(lb::kLbRegFlushRpu, 1);
    EXPECT_EQ(f.lb.free_slots(1), 0u);
    EXPECT_EQ(f.lb.free_slots(0), 4u);
}

TEST(LoadBalancer, RequestSlotForLoopback) {
    LbFixture f({.rpu_count = 2, .policy = lb::Policy::kRoundRobin});
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(f.lb.request_slot(1).has_value());
    EXPECT_FALSE(f.lb.request_slot(1).has_value());
    EXPECT_FALSE(f.lb.request_slot(9).has_value());  // bad rpu
}

TEST(LoadBalancer, ResourcesMatchPaperRows) {
    sim::Stats stats;
    lb::LoadBalancer rr16(stats, {.rpu_count = 16});
    lb::LoadBalancer rr8(stats, {.rpu_count = 8});
    lb::LoadBalancer hash8(stats, {.rpu_count = 8, .policy = lb::Policy::kHash});
    EXPECT_NEAR(double(rr16.resources().luts), 8221.0, 8221 * 0.05);
    EXPECT_NEAR(double(rr8.resources().luts), 7580.0, 7580 * 0.05);
    EXPECT_NEAR(double(hash8.resources().luts), 10467.0, 10467 * 0.05);
    EXPECT_EQ(hash8.resources().bram, 26u);
}

// --- reassembler -------------------------------------------------------------------

struct ReasmFixture {
    sim::Stats stats;
    lb::LoadBalancer lb;
    ReasmFixture()
        : lb(stats, {.rpu_count = 4,
                     .policy = lb::Policy::kRoundRobin,
                     .reassembler = true}) {}
};

TEST(Reassembler, InOrderPassesThrough) {
    ReasmFixture f;
    uint32_t seq = 1000;
    for (int i = 0; i < 5; ++i) {
        auto p = tcp_pkt(7, 7, seq, 200);
        seq += 200 - 54;
        auto out = f.lb.reassemble(p);
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(out[0], p);
    }
}

TEST(Reassembler, RepairsAdjacentSwap) {
    ReasmFixture f;
    uint32_t payload = 200 - 54;
    auto p0 = tcp_pkt(7, 7, 1000, 200);
    auto p1 = tcp_pkt(7, 7, 1000 + payload, 200);
    auto p2 = tcp_pkt(7, 7, 1000 + 2 * payload, 200);
    EXPECT_EQ(f.lb.reassemble(p0).size(), 1u);
    // p2 arrives before p1: held.
    EXPECT_EQ(f.lb.reassemble(p2).size(), 0u);
    // p1 fills the gap: both released in order.
    auto out = f.lb.reassemble(p1);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], p1);
    EXPECT_EQ(out[1], p2);
}

TEST(Reassembler, NonTcpPassesThrough) {
    ReasmFixture f;
    net::PacketBuilder b;
    b.ipv4(1, 2).udp(5, 6).frame_size(64);
    auto p = b.build();
    EXPECT_EQ(f.lb.reassemble(p).size(), 1u);
}

TEST(Reassembler, StaleSegmentPassesThrough) {
    ReasmFixture f;
    auto p0 = tcp_pkt(9, 9, 5000, 200);
    f.lb.reassemble(p0);
    auto dup = tcp_pkt(9, 9, 4000, 200);  // old retransmission
    EXPECT_EQ(f.lb.reassemble(dup).size(), 1u);
}

TEST(Reassembler, BufferOverflowFlushes) {
    sim::Stats stats;
    lb::LoadBalancer small(stats, {.rpu_count = 4,
                                   .policy = lb::Policy::kRoundRobin,
                                   .reassembler = true,
                                   .reorder_buffer = 2});
    auto p0 = tcp_pkt(9, 9, 1000, 200);
    small.reassemble(p0);
    // Three future segments with growing gaps; buffer holds 2.
    EXPECT_EQ(small.reassemble(tcp_pkt(9, 9, 5000, 200)).size(), 0u);
    EXPECT_EQ(small.reassemble(tcp_pkt(9, 9, 9000, 200)).size(), 0u);
    auto out = small.reassemble(tcp_pkt(9, 9, 13000, 200));
    EXPECT_EQ(out.size(), 3u);  // everything flushed
    EXPECT_GT(stats.get("lb.reassembler.overflow"), 0u);
}

// --- broadcast network ----------------------------------------------------------------

struct BcastFixture {
    sim::Kernel kernel;
    sim::Stats stats;
    msg::BroadcastNetwork net;
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> received;

    explicit BcastFixture(unsigned n,
                          msg::BroadcastNetwork::Config cfg = msg::BroadcastNetwork::Config{})
        : net(kernel, stats,
              [&] {
                  cfg.rpu_count = n;
                  return cfg;
              }()),
          received(n) {
        for (unsigned i = 0; i < n; ++i) {
            net.set_deliver(i, [this, i](uint32_t off, uint32_t val) {
                received[i].push_back({off, val});
            });
        }
    }
};

TEST(Broadcast, DeliversToAllSimultaneously) {
    BcastFixture f(4);
    ASSERT_TRUE(f.net.try_send(0, 0x10, 0xabcd));
    f.kernel.run(40);
    for (unsigned i = 0; i < 4; ++i) {
        ASSERT_EQ(f.received[i].size(), 1u) << i;
        EXPECT_EQ(f.received[i][0], (std::pair<uint32_t, uint32_t>{0x10, 0xabcd}));
    }
    EXPECT_EQ(f.net.delivered(), 1u);
}

TEST(Broadcast, OrderingPreservedPerSender) {
    BcastFixture f(2);
    for (uint32_t v = 0; v < 10; ++v) ASSERT_TRUE(f.net.try_send(0, 0, v));
    f.kernel.run(400);
    ASSERT_EQ(f.received[1].size(), 10u);
    for (uint32_t v = 0; v < 10; ++v) EXPECT_EQ(f.received[1][v].second, v);
}

TEST(Broadcast, FifoDepthBlocksSender) {
    BcastFixture f(2);
    unsigned accepted = 0;
    while (f.net.try_send(0, 0, accepted)) ++accepted;
    EXPECT_EQ(accepted, 18u);  // 16 FIFO + 2 PR border registers
    f.kernel.run(2);
    EXPECT_TRUE(f.net.try_send(0, 0, 99));  // drained one
}

TEST(Broadcast, RoundRobinFairUnderSaturation) {
    BcastFixture f(4);
    // Saturate all senders; count deliveries per sender (encode in value).
    for (unsigned r = 0; r < 4; ++r) {
        for (int i = 0; i < 18; ++i) ASSERT_TRUE(f.net.try_send(uint8_t(r), 0, r));
    }
    f.kernel.run(4 * 18 * 2 + 100);
    std::map<uint32_t, int> per_sender;
    for (auto& [off, val] : f.received[0]) per_sender[val]++;
    for (unsigned r = 0; r < 4; ++r) EXPECT_EQ(per_sender[r], 18) << r;
}

TEST(Broadcast, SparseLatencyInPaperBand) {
    BcastFixture f(16);
    sim::Sampler lat;
    f.net.set_delivery_probe([&](uint32_t, uint32_t value, sim::Cycle now) {
        lat.add(sim::cycles_to_ns(now - value));
    });
    sim::Cycle t = 100;
    for (int i = 0; i < 50; ++i) {
        f.kernel.run(t - f.kernel.now());
        ASSERT_TRUE(f.net.try_send(uint8_t(i % 16), 0, uint32_t(f.kernel.now())));
        t += 500;
    }
    f.kernel.run(200);
    // Paper: 72-92 ns for sparse messages; allow the enqueue cycle.
    EXPECT_GE(lat.min(), 60.0);
    EXPECT_LE(lat.max(), 110.0);
}

TEST(Broadcast, GrantThrottleLimitsSustainedRate) {
    BcastFixture f(2);
    // Feed sender 0 continuously for 1000 cycles.
    uint64_t sent = 0;
    for (int c = 0; c < 1000; ++c) {
        if (f.net.try_send(0, 0, 1)) ++sent;
        f.kernel.step();
    }
    f.kernel.run(100);
    // Sustained grant rate is 10/13 per cycle (paper's above-ideal drain).
    EXPECT_NEAR(double(f.net.delivered()), 1000.0 * 10 / 13, 40.0);
}

}  // namespace
}  // namespace rosebud
