/// \file
/// Lockstep equivalence suite for the time-decoupled kernel (DESIGN.md §16)
/// plus the cluster front-end models built on it.
///
/// The load-bearing property is bit-identical final state: a decoupled run
/// over a certified ShardPlan must reach exactly the fingerprint the
/// barrier-synchronous kernel reaches on the same workload, for every
/// shard count, executor mode, and parallel-tick composition — and the
/// dynamic cross-checks must actually catch a lookahead claim the runtime
/// does not honor (the negative direction, without which the positive
/// tests prove nothing).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/cluster.h"
#include "core/system.h"
#include "dist/cluster.h"
#include "firmware/programs.h"
#include "lint/shard.h"
#include "net/flow.h"
#include "net/tracegen.h"
#include "obs/shardcheck.h"
#include "sim/shard.h"

namespace rosebud {
namespace {

constexpr sim::Cycle kRun = 10'000;

struct RunResult {
    uint64_t fingerprint = 0;
    uint64_t sink_frames = 0;
    uint64_t sink_bytes = 0;
    bool decoupled = false;
};

std::unique_ptr<System> build_system(unsigned rpus, bool hw_reassembler = false) {
    SystemConfig cfg;
    cfg.rpu_count = rpus;
    cfg.hw_reassembler = hw_reassembler;
    auto sys = std::make_unique<System>(cfg);
    fwlib::Program fw = fwlib::forwarder();
    sys->host().load_firmware_all(fw.image, fw.entry);
    sys->host().boot_all();
    for (unsigned port = 0; port < 2; ++port) {
        net::TrafficSpec tspec;
        tspec.packet_size = 256;
        tspec.seed = 7u * 2654435761u + port;
        auto gen = std::make_shared<net::TraceGenerator>(tspec, nullptr, nullptr);
        dist::TrafficSource::Config src;
        src.port = port;
        src.load = 0.7;
        sys->add_source(src, [gen] { return gen->next(); });
    }
    return sys;
}

RunResult run_workload(unsigned shards, unsigned workers,
                       sim::ShardSpec::Exec exec, sim::Cycle cycles = kRun,
                       bool hw_reassembler = false) {
    std::unique_ptr<System> sys = build_system(8, hw_reassembler);
    if (shards > 1) {
        sys->set_decouple_exec(exec);
        sys->set_decouple_shards(shards, workers);
    }
    sys->run_cycles(cycles);
    RunResult r;
    r.fingerprint = sys->state_fingerprint();
    for (unsigned port = 0; port < 2; ++port) {
        r.sink_frames += sys->sink(port).frames();
        r.sink_bytes += sys->sink(port).bytes();
    }
    r.decoupled = sys->decoupled_active();
    return r;
}

// --- lockstep equivalence: barrier vs time-decoupled ------------------------

TEST(Decoupled, EquivalenceAcrossShardCountsAndExecutors) {
    const RunResult barrier = run_workload(0, 0, sim::ShardSpec::Exec::kAuto);
    ASSERT_GT(barrier.sink_frames, 0u);

    struct Case {
        unsigned shards;
        unsigned workers;
        sim::ShardSpec::Exec exec;
        const char* name;
    };
    const Case cases[] = {
        {2, 1, sim::ShardSpec::Exec::kCoop, "2-shard coop"},
        {4, 1, sim::ShardSpec::Exec::kCoop, "4-shard coop"},
        {2, 1, sim::ShardSpec::Exec::kThreads, "2-shard threads"},
        {4, 1, sim::ShardSpec::Exec::kThreads, "4-shard threads"},
        // Parallel-tick composition: the DUT shard's tick phase split
        // over 2 workers on top of the decoupled schedule.
        {4, 2, sim::ShardSpec::Exec::kThreads, "4-shard 2-worker threads"},
    };
    for (const Case& c : cases) {
        SCOPED_TRACE(c.name);
        const RunResult dec = run_workload(c.shards, c.workers, c.exec);
        EXPECT_TRUE(dec.decoupled)
            << "decoupled executor failed to install for " << c.name;
        EXPECT_EQ(dec.fingerprint, barrier.fingerprint);
        EXPECT_EQ(dec.sink_frames, barrier.sink_frames);
        EXPECT_EQ(dec.sink_bytes, barrier.sink_bytes);
    }
}

TEST(Decoupled, ShardsOneIsTheNullPlan) {
    const RunResult barrier = run_workload(0, 0, sim::ShardSpec::Exec::kAuto);
    const RunResult null_plan = run_workload(1, 0, sim::ShardSpec::Exec::kAuto);
    EXPECT_FALSE(null_plan.decoupled);
    EXPECT_EQ(null_plan.fingerprint, barrier.fingerprint);
    EXPECT_EQ(null_plan.sink_frames, barrier.sink_frames);
}

TEST(Decoupled, HwReassemblerFallsBackToBarrier) {
    // The inline reorder engine is a structural obstacle: the request must
    // warn, fall back, and still produce the barrier kernel's exact state.
    const RunResult barrier =
        run_workload(0, 0, sim::ShardSpec::Exec::kAuto, kRun, true);
    const RunResult dec =
        run_workload(4, 1, sim::ShardSpec::Exec::kCoop, kRun, true);
    EXPECT_FALSE(dec.decoupled);
    EXPECT_EQ(dec.fingerprint, barrier.fingerprint);
}

// --- negative: a lookahead claim the runtime does not honor is caught -------

TEST(Decoupled, UnderstatedLookaheadIsCaught) {
    // Doctor a certified plan so every cut data edge claims far more
    // lookahead than the netlist actually provides, then let the dynamic
    // recorder watch a barrier run. If the cross-check cannot flag this
    // fabricated certificate, it could not flag a real certifier bug
    // either.
    std::unique_ptr<System> sys = build_system(8);
    lint::ShardPlan plan = sys->shard_plan(2);
    ASSERT_TRUE(plan.sound);
    ASSERT_FALSE(plan.cuts.empty());
    for (lint::ShardCut& c : plan.cuts) c.edge.latency += 99;

    obs::ShardLatencyRecorder rec(sys->kernel(), plan, nullptr,
                                  /*fault_on_undercut=*/false);
    sys->kernel().set_telemetry(&rec);
    sys->run_cycles(kRun);
    sys->kernel().set_telemetry(nullptr);

    EXPECT_FALSE(rec.ok());
    bool undercut_seen = false;
    for (const obs::CutLatency& c : rec.observations())
        if (c.undercut) undercut_seen = true;
    EXPECT_TRUE(undercut_seen);
}

TEST(Decoupled, CutChannelStatsExposeEarlyRelease) {
    // Channel-level version of the same property: the decoupled pass of
    // obs::run_shard_check trips on min_latency < certified, so a drain
    // that releases an entry before the certified bound must be visible
    // in the stats.
    sim::CutChannel<int> good("good.net", 3);
    good.push(10, 1);
    good.drain_upto(12, [](sim::Cycle, int) {});  // released at 13: lat 3
    EXPECT_GE(good.stats().min_latency, good.stats().certified);

    sim::CutChannel<int> bad("bad.net", 3);
    bad.push(10, 1);
    bad.drain_upto(10, [](sim::Cycle, int) {});  // released at 11: lat 1
    const sim::CutChannelStats st = bad.stats();
    EXPECT_EQ(st.delivered, 1u);
    EXPECT_LT(st.min_latency, st.certified);
}

TEST(Decoupled, ShardCheckDecoupledPass) {
    obs::ShardCheckSpec spec;
    spec.rpu_count = 8;
    spec.shards = 2;
    spec.decouple = 2;
    spec.run_cycles = 8'000;
    const obs::ShardCheckResult res = obs::run_shard_check(spec);
    EXPECT_TRUE(res.ok);
    EXPECT_TRUE(res.decoupled_ran);
    EXPECT_TRUE(res.decoupled_ok);
    EXPECT_EQ(res.decoupled_fingerprint, res.barrier_fingerprint);
    ASSERT_FALSE(res.channels.empty());
    uint64_t delivered = 0;
    for (const sim::CutChannelStats& ch : res.channels) {
        delivered += ch.delivered;
        if (ch.delivered > 0) {
            EXPECT_GE(ch.min_latency, ch.certified);
        }
    }
    EXPECT_GT(delivered, 0u);
}

// --- certifier verdict stability (satellite: 8-way no-safe-cut) -------------

TEST(Decoupled, EightWayVerdictIsStable) {
    std::unique_ptr<System> sys = build_system(16);
    const lint::ShardPlan a = sys->shard_plan(8);
    const lint::ShardPlan b = sys->shard_plan(8);
    EXPECT_FALSE(a.sound);
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_NE(a.verdict.find("no safe 8-way cut"), std::string::npos);
    EXPECT_NE(a.verdict.find("cheapest registerization"), std::string::npos);
    EXPECT_EQ(a.cheapest_registerization, b.cheapest_registerization);
    EXPECT_GE(a.unlocked_atoms, 8u);
    ASSERT_EQ(a.blockers.size(), a.blocker_multiplicity.size());
    for (unsigned m : a.blocker_multiplicity) EXPECT_GE(m, 1u);
}

// --- cluster front-end models ----------------------------------------------

TEST(Cluster, EcmpSharderIsFlowConsistent) {
    dist::EcmpSharder sharder(4);
    net::TrafficSpec tspec;
    tspec.packet_size = 256;
    tspec.seed = 99;
    net::TraceGenerator gen(tspec, nullptr, nullptr);
    for (int i = 0; i < 2'000; ++i) {
        net::PacketPtr pkt = gen.next();
        ASSERT_TRUE(pkt);
        const unsigned board = sharder.route(*pkt);
        ASSERT_LT(board, 4u);
        // Pure lookup agrees with the accounting route, and repeating
        // either is stable — the flow-consistency contract.
        EXPECT_EQ(board, sharder.board_for(*pkt));
        EXPECT_EQ(board, net::packet_flow_hash(*pkt) % 4);
    }
    EXPECT_EQ(sharder.total_frames(), 2'000u);
    // Many flows must spread over every board without gross imbalance.
    EXPECT_LT(sharder.imbalance(), 0.5);
}

TEST(Cluster, InterBoardLinkModelsSerializationAndQueueing) {
    dist::InterBoardLink::Config cfg;
    cfg.gbps = 100.0;
    cfg.base_latency = 175;
    dist::InterBoardLink link(cfg);

    // 100G at 250 MHz moves 50 B/cycle: a 500 B frame serializes in 10.
    const sim::Cycle first = link.transfer(1'000, 500);
    EXPECT_EQ(first, 1'000 + 10 + 175);
    // A same-cycle second frame queues behind the first serialization.
    const sim::Cycle second = link.transfer(1'000, 500);
    EXPECT_EQ(second, first + 10);
    EXPECT_EQ(link.frames(), 2u);
    EXPECT_EQ(link.bytes_carried(), 1'000u);
    EXPECT_GE(link.worst_latency(), 175u);
    const double util = link.utilization(2'000);
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
}

TEST(Cluster, TwoBoardFingerprintsMatchSingleBoardReferences) {
    exp::ClusterParams p;
    p.boards = 2;
    p.rpu_count = 8;
    p.decouple_shards = 4;
    p.exec = sim::ShardSpec::Exec::kCoop;
    p.warmup = 1'000;
    p.window = 8'000;
    const exp::ClusterResult res = exp::run_cluster(p);
    ASSERT_EQ(res.boards.size(), 2u);
    EXPECT_TRUE(res.fingerprints_match);
    EXPECT_TRUE(res.decoupled_active);
    EXPECT_GT(res.aggregate_gbps, 0.0);
    EXPECT_GT(res.sharded_frames, 0u);
    for (const exp::ClusterBoardResult& b : res.boards) {
        EXPECT_TRUE(b.fingerprint_match);
        EXPECT_EQ(b.fingerprint, b.reference_fingerprint);
    }
}

}  // namespace
}  // namespace rosebud
