/// Distribution-fabric and traffic-endpoint tests: MAC FIFO drops,
/// token-bucket pacing, serialization rates, backpressure chains,
/// loopback channel overhead, and latency accounting.

#include <gtest/gtest.h>

#include "core/system.h"
#include "firmware/programs.h"
#include "net/headers.h"
#include "rpu/descriptor.h"
#include "rv/assembler.h"

namespace rosebud::dist {
namespace {

net::PacketPtr
udp_pkt(uint32_t size, uint64_t id = 0) {
    net::PacketBuilder b;
    b.ipv4(0x0a000001, 0x0a000002).udp(1, 2).frame_size(size);
    auto p = b.build();
    p->id = id;
    return p;
}

struct Booted {
    System sys;
    explicit Booted(unsigned rpus = 4) : sys(make(rpus)) {
        auto fw = fwlib::forwarder();
        sys.host().load_firmware_all(fw.image, fw.entry);
        sys.host().boot_all();
        sys.run_cycles(300);
    }
    static SystemConfig make(unsigned rpus) {
        SystemConfig cfg;
        cfg.rpu_count = rpus;
        return cfg;
    }
};

TEST(Fabric, MacRxFifoOverflowDrops) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    cfg.fabric.mac_rx_fifo_bytes = 4096;
    System sys(cfg);  // no firmware: nothing drains the FIFO
    unsigned accepted = 0;
    for (int i = 0; i < 100; ++i) {
        if (sys.fabric().mac_rx(0, udp_pkt(1024))) ++accepted;
    }
    EXPECT_EQ(accepted, 4u);  // 4 KB FIFO, 1 KB frames
    EXPECT_EQ(sys.stats().get("port0.rx_fifo_drops"), 96u);
    EXPECT_EQ(sys.stats().get("port0.rx_frames"), 100u);  // counted pre-drop
}

TEST(Fabric, HostQueueBounded) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    cfg.fabric.host_queue_packets = 2;
    System sys(cfg);
    EXPECT_TRUE(sys.fabric().host_inject(udp_pkt(64)));
    EXPECT_TRUE(sys.fabric().host_inject(udp_pkt(64)));
    EXPECT_FALSE(sys.fabric().host_inject(udp_pkt(64)));
}

TEST(TrafficSourceTest, SaturatedSourceHitsLineRate) {
    Booted f;
    uint64_t generated = 0;
    f.sys.add_source({.port = 0, .line_gbps = 100.0, .load = 1.0},
                     [&] { ++generated; return udp_pkt(512); });
    f.sys.run_cycles(10000);  // 40 us
    // 100 Gbps line at 512+24 bytes per frame = ~23.3 Mpps -> ~933 frames.
    double expected = 100e9 / (536 * 8) * 40e-6;
    EXPECT_NEAR(double(f.sys.stats().get("port0.rx_frames")), expected, expected * 0.02);
}

TEST(TrafficSourceTest, LoadFractionScalesRate) {
    Booted f;
    f.sys.add_source({.port = 0, .line_gbps = 100.0, .load = 0.25},
                     [] { return udp_pkt(512); });
    f.sys.run_cycles(10000);
    double expected = 0.25 * 100e9 / (536 * 8) * 40e-6;
    EXPECT_NEAR(double(f.sys.stats().get("port0.rx_frames")), expected, expected * 0.05);
}

TEST(TrafficSourceTest, PpsCapEnforced) {
    Booted f;
    f.sys.add_source({.port = 0, .line_gbps = 100.0, .load = 1.0, .max_pps = 1e6},
                     [] { return udp_pkt(64); });
    f.sys.run_cycles(25000);  // 100 us
    EXPECT_NEAR(double(f.sys.stats().get("port0.rx_frames")), 100.0, 8.0);
}

TEST(TrafficSourceTest, MaxPacketsStopsGeneration) {
    Booted f;
    auto& src = f.sys.add_source({.port = 0, .load = 1.0, .max_packets = 17},
                                 [] { return udp_pkt(64); });
    f.sys.run_cycles(5000);
    EXPECT_EQ(src.offered(), 17u);
    EXPECT_EQ(f.sys.stats().get("port0.rx_frames"), 17u);
}

TEST(Fabric, ForwardingPreservesAllBytesUnderLoad) {
    Booted f;
    uint64_t id = 0;
    f.sys.add_source({.port = 0, .load = 0.5, .max_packets = 200},
                     [&] { return udp_pkt(300, id++); });
    std::vector<uint64_t> seen;
    f.sys.fabric().set_mac_tx_sink(1, [&](net::PacketPtr p) {
        EXPECT_EQ(p->size(), 300u);
        seen.push_back(p->id);
    });
    f.sys.run_cycles(60000);
    ASSERT_EQ(seen.size(), 200u);
    // Round-robin over RPUs may reorder slightly across RPUs but every
    // packet arrives exactly once.
    std::sort(seen.begin(), seen.end());
    for (uint64_t i = 0; i < 200; ++i) EXPECT_EQ(seen[i], i);
}

TEST(Fabric, LatencyAccountingMatchesSerialization) {
    Booted f(16);
    f.sys.add_source({.port = 0, .load = 0.02, .max_packets = 50},
                     [] { return udp_pkt(64); });
    f.sys.run_cycles(300000);
    ASSERT_GT(f.sys.sink(1).latency().count(), 10u);
    double mean_us = f.sys.sink(1).latency().mean() / 1e3;
    // Eq. 1 at 64 B: ~0.81 us.
    EXPECT_NEAR(mean_us, 0.81, 0.08);
}

TEST(Fabric, LoopbackChannelCountsHeaderOverhead) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    auto fw = fwlib::two_step_forwarder(4);
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(300);
    sys.host().set_recv_mask(0x3);

    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(sys.fabric().mac_rx(0, udp_pkt(128, uint64_t(i))));
        sys.run_cycles(2000);
    }
    EXPECT_EQ(sys.stats().get("loopback.frames"), 10u);
    EXPECT_EQ(sys.stats().get("loopback.bytes"), 1280u);
    EXPECT_EQ(sys.sink(0).frames() + sys.sink(1).frames(), 10u);
}

TEST(Fabric, SwitchingResourcesMatchPaperRows) {
    SystemConfig cfg16, cfg8;
    cfg16.rpu_count = 16;
    cfg8.rpu_count = 8;
    System s16(cfg16), s8(cfg8);
    EXPECT_NEAR(double(s16.fabric().switching_resources().luts), 86234.0, 86234 * 0.02);
    EXPECT_NEAR(double(s8.fabric().switching_resources().luts), 48402.0, 48402 * 0.02);
    EXPECT_NEAR(double(s16.fabric().switching_resources().regs), 123654.0,
                123654 * 0.02);
    EXPECT_EQ(s16.fabric().switching_resources().uram, 64u);
    EXPECT_EQ(s8.fabric().switching_resources().uram, 32u);
    EXPECT_NEAR(double(s16.fabric().interconnect_resources().luts), 2793.0, 60.0);
    EXPECT_NEAR(double(s8.fabric().interconnect_resources().luts), 2964.0, 60.0);
}

TEST(FabricPcie, HostChannelBandwidthBounded) {
    // Route ALL traffic to the host and check the PCIe cap holds.
    SystemConfig cfg;
    cfg.rpu_count = 4;
    cfg.fabric.pcie_gbps = 20.0;  // deliberately small for the test
    System sys(cfg);
    // Firmware that sends everything to port 2 (the host).
    rv::Assembler a;
    a.lui(rv::gp, 0x2000);
    a.li(rv::t0, 32);
    a.sw(rv::t0, rpu::kRegSlotCount, rv::gp);
    a.lui(rv::t0, 0x1000);
    a.sw(rv::t0, rpu::kRegSlotBase, rv::gp);
    a.lui(rv::t0, 0x4);
    a.sw(rv::t0, rpu::kRegSlotSize, rv::gp);
    a.sw(rv::zero, rpu::kRegSlotCommit, rv::gp);
    a.label("loop");
    a.lw(rv::a0, rpu::kRegRecvLow, rv::gp);
    a.beqz(rv::a0, "loop");
    a.sw(rv::zero, rpu::kRegRecvRelease, rv::gp);
    a.andi(rv::a0, rv::a0, -16);
    a.ori(rv::a0, rv::a0, 2);  // port = host
    a.sw(rv::a0, rpu::kRegSendLow, rv::gp);
    a.sw(rv::zero, rpu::kRegSendHigh, rv::gp);
    a.j("loop");
    sys.host().load_firmware_all(a.assemble());
    sys.host().boot_all();
    sys.run_cycles(300);
    uint64_t host_bytes = 0;
    sys.host().set_rx_handler([&](net::PacketPtr p) { host_bytes += p->size(); });

    sys.add_source({.port = 0, .load = 1.0}, [] { return udp_pkt(1024); });
    sys.run_cycles(25000);
    uint64_t warm = host_bytes;
    sys.run_cycles(50000);  // 200 us window
    double gbps = double(host_bytes - warm) * 8.0 / (50000.0 / 250e6) / 1e9;
    EXPECT_NEAR(gbps, 20.0, 1.5);  // capped by the PCIe model, not the 100G line
}

TEST(FabricPcie, TagExhaustionBackpressures) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    cfg.fabric.pcie_gbps = 1.0;  // drain almost nothing
    cfg.fabric.pcie_tags = 4;
    System sys(cfg);
    rv::Assembler a;
    a.lui(rv::gp, 0x2000);
    a.li(rv::t0, 32);
    a.sw(rv::t0, rpu::kRegSlotCount, rv::gp);
    a.lui(rv::t0, 0x1000);
    a.sw(rv::t0, rpu::kRegSlotBase, rv::gp);
    a.lui(rv::t0, 0x4);
    a.sw(rv::t0, rpu::kRegSlotSize, rv::gp);
    a.sw(rv::zero, rpu::kRegSlotCommit, rv::gp);
    a.label("loop");
    a.lw(rv::a0, rpu::kRegRecvLow, rv::gp);
    a.beqz(rv::a0, "loop");
    a.sw(rv::zero, rpu::kRegRecvRelease, rv::gp);
    a.andi(rv::a0, rv::a0, -16);
    a.ori(rv::a0, rv::a0, 2);
    a.sw(rv::a0, rpu::kRegSendLow, rv::gp);
    a.sw(rv::zero, rpu::kRegSendHigh, rv::gp);
    a.j("loop");
    sys.host().load_firmware_all(a.assemble());
    sys.host().boot_all();
    sys.run_cycles(300);
    sys.host().set_rx_handler([](net::PacketPtr) {});
    for (int i = 0; i < 64; ++i) sys.fabric().mac_rx(0, udp_pkt(512));
    sys.run_cycles(20000);
    EXPECT_GT(sys.stats().get("host.tag_stall"), 0u);
    // Nothing lost: slow drain, but conservation holds eventually.
    sys.run_cycles(1200000);
    EXPECT_EQ(sys.stats().get("host.rx_frames"), 64u);
}

TEST(Fabric, BadPortIsFatal) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    EXPECT_THROW(sys.fabric().mac_rx(2, udp_pkt(64)), sim::FatalError);
}

TEST(SystemTest, RpuCountValidation) {
    SystemConfig bad;
    bad.rpu_count = 6;  // not a multiple of 4
    EXPECT_THROW(System{bad}, sim::FatalError);
    bad.rpu_count = 0;
    EXPECT_THROW(System{bad}, sim::FatalError);
}

}  // namespace
}  // namespace rosebud::dist
