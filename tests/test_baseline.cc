/// Software-baseline tests: the Snort-like model's functional matching
/// (cross-validated against the Pigasus accelerator on identical traffic),
/// its calibrated throughput plateau, and the original-Pigasus reference.

#include <gtest/gtest.h>

#include "accel/pigasus.h"
#include "baseline/snort_model.h"
#include "net/tracegen.h"

namespace rosebud::baseline {
namespace {

TEST(Snort, PlateauMatchesPaperRange) {
    sim::Rng rng(1);
    auto rules = net::IdsRuleSet::synthesize(64, rng);
    SnortModel snort(rules);
    // Paper Section 7.1.3: 4.7-5.6 MPPS across packet sizes.
    for (uint32_t size : {64u, 256u, 800u, 1024u, 2048u}) {
        double mpps = snort.mpps_for_size(size);
        EXPECT_GE(mpps, 4.6) << size;
        EXPECT_LE(mpps, 5.7) << size;
    }
    // Monotonically decreasing with size (scan cost).
    EXPECT_GT(snort.mpps_for_size(64), snort.mpps_for_size(2048));
}

TEST(Snort, RamdiskExperimentGainIsModest) {
    // Paper: removing AF_PACKET (ramdisk replay) took 60 -> 70 Gbps at
    // 2048 B — proof the network stack was not the primary bottleneck.
    sim::Rng rng(1);
    auto rules = net::IdsRuleSet::synthesize(64, rng);
    SnortModel::Config with;
    SnortModel::Config without = with;
    without.use_afpacket = false;
    SnortModel a(rules, with), b(rules, without);
    double g_with = a.mpps_for_size(2048) * 2048 * 8 / 1e3;
    double g_without = b.mpps_for_size(2048) * 2048 * 8 / 1e3;
    EXPECT_GT(g_without, g_with);
    EXPECT_NEAR(g_without / g_with, 70.0 / 60.0, 0.06);
}

TEST(Snort, RunReportsFunctionalMatches) {
    sim::Rng rng(2);
    auto rules = net::IdsRuleSet::synthesize(32, rng);
    SnortModel snort(rules);
    net::TrafficSpec spec;
    spec.packet_size = 512;
    spec.attack_fraction = 0.1;
    spec.seed = 2;
    net::TraceGenerator gen(spec, &rules);
    auto result = snort.run(gen, 2000);
    EXPECT_EQ(result.packets, 2000u);
    EXPECT_NEAR(double(result.matched), 200.0, 60.0);
    EXPECT_GT(result.gbps, 0.0);
}

TEST(Snort, ThroughputCappedByOfferedLine) {
    sim::Rng rng(2);
    auto rules = net::IdsRuleSet::synthesize(8, rng);
    SnortModel::Config turbo;
    turbo.cores = 100000;  // absurd CPU: the 200G line must cap it
    SnortModel snort(rules, turbo);
    net::TrafficSpec spec;
    spec.packet_size = 1024;
    net::TraceGenerator gen(spec, &rules);
    auto result = snort.run(gen, 10);
    EXPECT_NEAR(result.mpps, net::line_rate_pps(1024, 200.0) / 1e6, 0.01);
}

TEST(Snort, AgreesWithPigasusAcceleratorOnSameTraffic) {
    // The cross-validation property at the heart of Figure 8: the software
    // baseline and the hardware matcher implement the same detection
    // semantics.
    sim::Rng rng(3);
    auto rules = net::IdsRuleSet::synthesize(48, rng);
    SnortModel snort(rules);
    accel::PigasusMatcher pig(rules);

    net::TrafficSpec spec;
    spec.packet_size = 800;
    spec.attack_fraction = 0.2;
    spec.udp_fraction = 0.2;
    spec.seed = 3;
    net::TraceGenerator gen(spec, &rules);
    for (int i = 0; i < 1500; ++i) {
        auto p = gen.next();
        auto parsed = net::parse_packet(*p);
        ASSERT_TRUE(parsed.has_value());
        if (parsed->payload_offset == 0) continue;
        uint16_t sport = parsed->has_tcp ? parsed->tcp.src_port : parsed->udp.src_port;
        uint16_t dport = parsed->has_tcp ? parsed->tcp.dst_port : parsed->udp.dst_port;
        uint32_t raw = uint32_t(sport >> 8) | uint32_t(sport & 0xff) << 8 |
                       uint32_t(dport >> 8) << 16 | uint32_t(dport & 0xff) << 24;
        bool pig_hit = !pig.match_payload(p->data.data() + parsed->payload_offset,
                                          parsed->payload_len, raw, parsed->has_tcp)
                            .empty();
        EXPECT_EQ(pig_hit, snort.packet_matches(*p)) << "packet " << i;
    }
}

TEST(PigasusOriginal, HundredGigReference) {
    EXPECT_LT(pigasus_original_gbps(64), 100.0);
    EXPECT_NEAR(pigasus_original_gbps(9000), 100.0, 1.0);
    // Rosebud's headline: twice the original Pigasus at 800 B.
    EXPECT_NEAR(pigasus_original_gbps(800) * 2.0, 194.2, 1.0);
}

}  // namespace
}  // namespace rosebud::baseline
