/// Unit tests for the golden oracle's reference stages: each stage is an
/// independent re-implementation of a device function, checked here
/// against hand-computed vectors and (where a device-side functional
/// entry point exists) cross-checked against the device implementation
/// on random inputs.

#include <gtest/gtest.h>

#include "accel/pigasus.h"
#include "net/flow.h"
#include "net/headers.h"
#include "net/rules.h"
#include "net/tracegen.h"
#include "oracle/oracle.h"
#include "sim/random.h"

using rosebud::oracle::DataplaneOracle;
using rosebud::oracle::OracleConfig;
using rosebud::oracle::Pipeline;
using rosebud::oracle::Prediction;

namespace net = rosebud::net;
namespace accel = rosebud::accel;
namespace lb = rosebud::lb;
namespace sim = rosebud::sim;

// --- prefix match -----------------------------------------------------------

TEST(OraclePrefixMatch, HandVectors) {
    net::Blacklist bl;
    bl.add(net::parse_ipv4_addr("203.0.113.7"), 32);
    bl.add(net::parse_ipv4_addr("198.51.100.0"), 24);
    bl.add(net::parse_ipv4_addr("16.0.0.0"), 4);

    EXPECT_TRUE(DataplaneOracle::ref_prefix_match(bl, net::parse_ipv4_addr("203.0.113.7")));
    EXPECT_FALSE(DataplaneOracle::ref_prefix_match(bl, net::parse_ipv4_addr("203.0.113.8")));
    // /24: the whole last octet matches, the neighbors do not.
    EXPECT_TRUE(DataplaneOracle::ref_prefix_match(bl, net::parse_ipv4_addr("198.51.100.0")));
    EXPECT_TRUE(DataplaneOracle::ref_prefix_match(bl, net::parse_ipv4_addr("198.51.100.255")));
    EXPECT_FALSE(DataplaneOracle::ref_prefix_match(bl, net::parse_ipv4_addr("198.51.101.0")));
    EXPECT_FALSE(DataplaneOracle::ref_prefix_match(bl, net::parse_ipv4_addr("198.51.99.255")));
    // /4 covers 16.0.0.0 - 31.255.255.255.
    EXPECT_TRUE(DataplaneOracle::ref_prefix_match(bl, net::parse_ipv4_addr("16.0.0.0")));
    EXPECT_TRUE(DataplaneOracle::ref_prefix_match(bl, net::parse_ipv4_addr("31.255.255.255")));
    EXPECT_FALSE(DataplaneOracle::ref_prefix_match(bl, net::parse_ipv4_addr("32.0.0.0")));
    EXPECT_FALSE(DataplaneOracle::ref_prefix_match(bl, net::parse_ipv4_addr("15.255.255.255")));
}

TEST(OraclePrefixMatch, ZeroLengthPrefixMatchesEverything) {
    net::Blacklist bl;
    bl.add(0, 0);
    EXPECT_TRUE(DataplaneOracle::ref_prefix_match(bl, 0));
    EXPECT_TRUE(DataplaneOracle::ref_prefix_match(bl, 0xffffffff));
}

TEST(OraclePrefixMatch, AgreesWithDeviceLookup) {
    sim::Rng rng(7);
    net::Blacklist bl = net::Blacklist::synthesize(64, rng);
    for (int i = 0; i < 2000; ++i) {
        uint32_t ip = uint32_t(rng.next());
        EXPECT_EQ(DataplaneOracle::ref_prefix_match(bl, ip), bl.contains(ip)) << ip;
    }
    // Every entry itself must match.
    for (const auto& e : bl.entries()) {
        EXPECT_TRUE(DataplaneOracle::ref_prefix_match(bl, e.prefix));
    }
}

// --- CRC32C / flow hash -----------------------------------------------------

TEST(OracleFlowHash, Crc32cCheckValue) {
    // The canonical CRC32C check value (RFC 3720 appendix / Castagnoli).
    const uint8_t msg[9] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    EXPECT_EQ(DataplaneOracle::ref_crc32c(msg, 9), 0xE3069283u);
    EXPECT_EQ(net::crc32c(msg, 9), 0xE3069283u);
}

TEST(OracleFlowHash, Crc32cAgreesWithTableDriven) {
    sim::Rng rng(11);
    for (int len = 0; len < 64; ++len) {
        std::vector<uint8_t> buf(static_cast<size_t>(len), 0);
        for (auto& b : buf) b = uint8_t(rng.next());
        EXPECT_EQ(DataplaneOracle::ref_crc32c(buf.data(), buf.size()),
                  net::crc32c(buf.data(), buf.size()));
    }
}

TEST(OracleFlowHash, AgreesWithPacketFlowHash) {
    sim::Rng rng(13);
    for (int i = 0; i < 400; ++i) {
        net::PacketBuilder b;
        uint32_t src = uint32_t(rng.next());
        uint32_t dst = uint32_t(rng.next());
        uint16_t sp = uint16_t(rng.range(1, 65535));
        uint16_t dp = uint16_t(rng.range(1, 65535));
        b.ipv4(src, dst);
        if (i % 2) {
            b.tcp(sp, dp, 1);
        } else {
            b.udp(sp, dp);
        }
        b.payload_str("flow-hash-check");
        b.frame_size(96);
        net::PacketPtr p = b.build();
        EXPECT_EQ(DataplaneOracle::ref_flow_hash(p->data), net::packet_flow_hash(*p));
    }
}

TEST(OracleFlowHash, SymmetricAcrossDirections) {
    net::PacketBuilder fwd;
    fwd.ipv4(net::parse_ipv4_addr("10.1.2.3"), net::parse_ipv4_addr("10.9.8.7"));
    fwd.tcp(1111, 2222, 5);
    fwd.payload_str("x");
    fwd.frame_size(64);

    net::PacketBuilder rev;
    rev.ipv4(net::parse_ipv4_addr("10.9.8.7"), net::parse_ipv4_addr("10.1.2.3"));
    rev.tcp(2222, 1111, 5);
    rev.payload_str("x");
    rev.frame_size(64);

    uint32_t hf = DataplaneOracle::ref_flow_hash(fwd.build()->data);
    uint32_t hr = DataplaneOracle::ref_flow_hash(rev.build()->data);
    EXPECT_EQ(hf, hr);
    EXPECT_NE(hf, 0u);
}

TEST(OracleFlowHash, NonIpAndTruncatedFramesHashToZero) {
    std::vector<uint8_t> arp(64, 0);
    arp[12] = 0x08;
    arp[13] = 0x06;  // EtherType ARP
    EXPECT_EQ(DataplaneOracle::ref_flow_hash(arp), 0u);

    std::vector<uint8_t> runt(10, 0);
    EXPECT_EQ(DataplaneOracle::ref_flow_hash(runt), 0u);
}

// --- hash steering ----------------------------------------------------------

TEST(OracleHashSteer, NthSetBit) {
    // eligible = {1, 3, 6} -> index hash % 3 into that list.
    EXPECT_EQ(DataplaneOracle::ref_hash_steer(0, 0b01001010, 8), 1u);
    EXPECT_EQ(DataplaneOracle::ref_hash_steer(1, 0b01001010, 8), 3u);
    EXPECT_EQ(DataplaneOracle::ref_hash_steer(2, 0b01001010, 8), 6u);
    EXPECT_EQ(DataplaneOracle::ref_hash_steer(3, 0b01001010, 8), 1u);
    // Mask bits above rpu_count are ignored.
    EXPECT_EQ(DataplaneOracle::ref_hash_steer(0, 0xffffffff, 4), 0u);
    EXPECT_EQ(DataplaneOracle::ref_hash_steer(5, 0xffffffff, 4), 1u);
    // No eligible RPU.
    EXPECT_EQ(DataplaneOracle::ref_hash_steer(123, 0, 8), 0xffu);
}

// --- string / rule matching -------------------------------------------------

namespace {

net::IdsRule
make_rule(uint32_t sid, net::RuleProto proto, std::optional<uint16_t> dport,
          std::vector<std::pair<std::string, bool>> contents) {
    net::IdsRule r;
    r.sid = sid;
    r.proto = proto;
    r.dst_port = dport;
    for (auto& [s, nocase] : contents) {
        net::ContentPattern c;
        c.bytes.assign(s.begin(), s.end());
        c.nocase = nocase;
        r.contents.push_back(std::move(c));
    }
    return r;
}

}  // namespace

TEST(OracleRuleMatch, HandVectors) {
    net::IdsRuleSet rules;
    rules.add(make_rule(100, net::RuleProto::kTcp, 80, {{"evil", false}}));
    rules.add(make_rule(101, net::RuleProto::kUdp, std::nullopt, {{"BadThing", true}}));
    rules.add(make_rule(102, net::RuleProto::kAny, std::nullopt,
                        {{"part-one", false}, {"part-two", false}}));

    auto match = [&](const std::string& payload, uint16_t dport, bool tcp) {
        return DataplaneOracle::ref_rule_match(
            rules, reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
            dport, tcp);
    };

    EXPECT_EQ(match("pure evil here", 80, true), (std::vector<uint32_t>{100}));
    // Wrong port: no match.
    EXPECT_TRUE(match("pure evil here", 81, true).empty());
    // Wrong protocol: no match.
    EXPECT_TRUE(match("pure evil here", 80, false).empty());
    // Case-sensitive content must not fold.
    EXPECT_TRUE(match("pure EVIL here", 80, true).empty());

    // nocase matches any casing, UDP only.
    EXPECT_EQ(match("xxBADTHINGxx", 5, false), (std::vector<uint32_t>{101}));
    EXPECT_EQ(match("xxbadthingxx", 5, false), (std::vector<uint32_t>{101}));
    EXPECT_TRUE(match("xxbadthingxx", 5, true).empty());

    // Both contents must be present, in any order/position.
    EXPECT_EQ(match("part-two ... part-one", 9, true), (std::vector<uint32_t>{102}));
    EXPECT_TRUE(match("part-one only", 9, true).empty());

    // Multiple rules, ascending sids.
    EXPECT_EQ(match("evil part-one part-two", 80, true),
              (std::vector<uint32_t>{100, 102}));
}

TEST(OracleRuleMatch, AgreesWithPigasusMatcher) {
    sim::Rng rng(21);
    net::IdsRuleSet rules = net::IdsRuleSet::synthesize(32, rng);
    accel::PigasusMatcher matcher(rules);

    // Random payloads seeded with real rule contents so matches happen.
    for (int i = 0; i < 300; ++i) {
        std::vector<uint8_t> payload(200);
        for (auto& b : payload) b = uint8_t(rng.range(0x20, 0x7e));
        const net::IdsRule& r = rules.at(rng.below(rules.size()));
        size_t off = 0;
        for (const auto& c : r.contents) {
            if (off + c.bytes.size() > payload.size()) break;
            std::copy(c.bytes.begin(), c.bytes.end(), payload.begin() + off);
            off += c.bytes.size();
        }
        bool tcp = rng.chance(0.5);
        uint16_t dport = r.dst_port ? *r.dst_port : uint16_t(rng.range(1, 65535));
        // Raw port word as firmware passes it: network-order bytes read LE.
        uint8_t port_bytes[4];
        net::store_be16(port_bytes, 999);
        net::store_be16(port_bytes + 2, dport);
        uint32_t raw_ports = uint32_t(port_bytes[0]) | uint32_t(port_bytes[1]) << 8 |
                             uint32_t(port_bytes[2]) << 16 |
                             uint32_t(port_bytes[3]) << 24;

        EXPECT_EQ(DataplaneOracle::ref_rule_match(rules, payload.data(), payload.size(),
                                                  dport, tcp),
                  matcher.match_payload(payload.data(), payload.size(), raw_ports, tcp));
    }
}

// --- NAT checksum + mapping structure ---------------------------------------

TEST(OracleNat, ChecksumFixupMatchesFullRecompute) {
    sim::Rng rng(31);
    for (int i = 0; i < 200; ++i) {
        // Build a real IPv4 header, then rewrite the source address and
        // compare the incremental fixup to a from-scratch checksum.
        net::PacketBuilder b;
        uint32_t src = 0x0a000000 | uint32_t(rng.below(1 << 24));
        uint32_t dst = uint32_t(rng.next());
        b.ipv4(src, dst);
        b.udp(1234, 80);
        b.payload_str("checksum");
        b.frame_size(64);
        std::vector<uint8_t> f = b.build()->data;

        ASSERT_EQ(net::internet_checksum(&f[14], 20), 0);  // builder checksum valid

        uint32_t new_src = 0xc6336401;
        uint16_t fixed = net::checksum_fixup32(net::load_be16(&f[24]), src, new_src);
        net::store_be32(&f[26], new_src);
        net::store_be16(&f[24], fixed);
        EXPECT_EQ(net::internet_checksum(&f[14], 20), 0) << "fixup broke the checksum";
    }
}

TEST(OracleNat, OutboundPredictionAndStructuralCheck) {
    OracleConfig cfg;
    cfg.pipeline = Pipeline::kNat;
    cfg.lb_policy = lb::Policy::kRoundRobin;
    cfg.rpu_count = 8;
    DataplaneOracle oracle(cfg);

    net::PacketBuilder b;
    b.ipv4(net::parse_ipv4_addr("10.1.2.3"), net::parse_ipv4_addr("192.0.2.50"));
    b.tcp(4321, 443, 7);
    b.payload_str("nat-me");
    b.frame_size(80);
    std::vector<uint8_t> frame = b.build()->data;

    Prediction p = oracle.predict(frame, net::Iface::kPort0);
    ASSERT_EQ(p.outcome, Prediction::Outcome::kForwardWire);
    EXPECT_EQ(p.out_iface, net::Iface::kPort1);
    ASSERT_TRUE(p.nat_outbound);
    ASSERT_TRUE(p.exact_bytes);
    ASSERT_EQ(p.wildcards.size(), 1u);
    EXPECT_EQ(p.wildcards[0].offset, 34u);

    // Source IP rewritten to the external address, checksum still valid.
    EXPECT_EQ(net::load_be32(&p.out_bytes[26]), cfg.nat.external_ip);
    EXPECT_EQ(net::internet_checksum(&p.out_bytes[14], 20), 0);

    // A device output with any in-slice port passes...
    std::vector<uint8_t> out = p.out_bytes;
    net::store_be16(&out[34], uint16_t(cfg.nat.port_base + 17));
    std::string why;
    EXPECT_TRUE(oracle.check_output(p, frame, out, false, &why)) << why;
    // ...a port outside the engine's slice fails...
    net::store_be16(&out[34], uint16_t(cfg.nat.port_base - 1));
    EXPECT_FALSE(oracle.check_output(p, frame, out, false, &why));
    // ...and so does any stray byte flip.
    net::store_be16(&out[34], uint16_t(cfg.nat.port_base));
    out[50] ^= 1;
    EXPECT_FALSE(oracle.check_output(p, frame, out, false, &why));
}

TEST(OracleNat, InboundStructuralCheck) {
    OracleConfig cfg;
    cfg.pipeline = Pipeline::kNat;
    DataplaneOracle oracle(cfg);

    net::PacketBuilder b;
    b.ipv4(net::parse_ipv4_addr("192.0.2.50"), cfg.nat.external_ip);
    b.tcp(443, uint16_t(cfg.nat.port_base + 3), 9);
    b.payload_str("reply");
    b.frame_size(80);
    std::vector<uint8_t> frame = b.build()->data;

    Prediction p = oracle.predict(frame, net::Iface::kPort1);
    ASSERT_TRUE(p.nat_inbound);
    EXPECT_EQ(p.out_iface, net::Iface::kPort0);

    // Simulate the device's reverse rewrite: dst -> internal, with the
    // RFC 1624 incremental checksum update.
    std::vector<uint8_t> out = frame;
    uint32_t int_ip = net::parse_ipv4_addr("10.7.7.7");
    uint16_t fixed = net::checksum_fixup32(net::load_be16(&frame[24]),
                                           cfg.nat.external_ip, int_ip);
    net::store_be32(&out[30], int_ip);
    net::store_be16(&out[24], fixed);
    net::store_be16(&out[36], 4321);
    std::string why;
    EXPECT_TRUE(oracle.check_output(p, frame, out, false, &why)) << why;

    // Rewriting to a non-internal address is a divergence.
    std::vector<uint8_t> bad = frame;
    uint32_t ext = net::parse_ipv4_addr("192.0.2.99");
    net::store_be32(&bad[30], ext);
    net::store_be16(&bad[24], net::checksum_fixup32(net::load_be16(&frame[24]),
                                                    cfg.nat.external_ip, ext));
    EXPECT_FALSE(oracle.check_output(p, frame, bad, false, &why));

    // A stale (non-incremental) checksum is a divergence.
    std::vector<uint8_t> stale = out;
    net::store_be16(&stale[24], net::load_be16(&frame[24]));
    EXPECT_FALSE(oracle.check_output(p, frame, stale, false, &why));
}

// --- end-to-end prediction shapes -------------------------------------------

TEST(OraclePredict, ForwarderEchoesHashWordUnderHashPolicy) {
    OracleConfig cfg;
    cfg.pipeline = Pipeline::kForwarder;
    cfg.lb_policy = lb::Policy::kHash;
    DataplaneOracle oracle(cfg);

    net::PacketBuilder b;
    b.ipv4(net::parse_ipv4_addr("10.0.0.1"), net::parse_ipv4_addr("10.0.0.2"));
    b.udp(1000, 2000);
    b.payload_str("fwd");
    b.frame_size(64);
    std::vector<uint8_t> frame = b.build()->data;

    Prediction p = oracle.predict(frame, net::Iface::kPort1);
    EXPECT_EQ(p.out_iface, net::Iface::kPort0);
    EXPECT_TRUE(p.hash_prepended);
    ASSERT_EQ(p.out_bytes.size(), frame.size() + 4);
    uint32_t le = uint32_t(p.out_bytes[0]) | uint32_t(p.out_bytes[1]) << 8 |
                  uint32_t(p.out_bytes[2]) << 16 | uint32_t(p.out_bytes[3]) << 24;
    EXPECT_EQ(le, p.lb_hash);
    EXPECT_TRUE(std::equal(frame.begin(), frame.end(), p.out_bytes.begin() + 4));
}

TEST(OraclePredict, FirewallDropsBlacklistedAndNonIp) {
    net::Blacklist bl;
    bl.add(net::parse_ipv4_addr("203.0.113.0"), 24);
    OracleConfig cfg;
    cfg.pipeline = Pipeline::kFirewall;
    cfg.blacklist = &bl;
    DataplaneOracle oracle(cfg);

    net::PacketBuilder bad;
    bad.ipv4(net::parse_ipv4_addr("203.0.113.200"), net::parse_ipv4_addr("10.0.0.1"));
    bad.tcp(1, 2, 3);
    bad.payload_str("x");
    bad.frame_size(64);
    Prediction p = oracle.predict(bad.build()->data, net::Iface::kPort0);
    EXPECT_EQ(p.outcome, Prediction::Outcome::kDrop);
    EXPECT_EQ(p.drop_reason, Prediction::DropReason::kBlacklistedSrc);

    std::vector<uint8_t> arp(64, 0);
    arp[12] = 0x08;
    arp[13] = 0x06;
    p = oracle.predict(arp, net::Iface::kPort0);
    EXPECT_EQ(p.outcome, Prediction::Outcome::kDrop);
    EXPECT_EQ(p.drop_reason, Prediction::DropReason::kNonIp);

    net::PacketBuilder ok;
    ok.ipv4(net::parse_ipv4_addr("10.5.5.5"), net::parse_ipv4_addr("10.0.0.1"));
    ok.tcp(1, 2, 3);
    ok.payload_str("x");
    ok.frame_size(64);
    std::vector<uint8_t> frame = ok.build()->data;
    p = oracle.predict(frame, net::Iface::kPort0);
    EXPECT_EQ(p.outcome, Prediction::Outcome::kForwardWire);
    EXPECT_EQ(p.out_bytes, frame);
}

TEST(OraclePredict, PigasusHostRecordLayouts) {
    net::IdsRuleSet rules;
    rules.add(make_rule(700, net::RuleProto::kTcp, std::nullopt, {{"attack!", false}}));

    // Hardware-reorder pipeline: frame padded to 4 B, then sid words.
    OracleConfig hw;
    hw.pipeline = Pipeline::kPigasusHwReorder;
    hw.rules = &rules;
    DataplaneOracle hw_oracle(hw);

    net::PacketBuilder b;
    b.ipv4(net::parse_ipv4_addr("10.1.1.1"), net::parse_ipv4_addr("10.2.2.2"));
    b.tcp(1111, 80, 1);
    b.payload_str("..attack!..");
    b.frame_size(65);  // deliberately unaligned
    std::vector<uint8_t> frame = b.build()->data;
    ASSERT_EQ(frame.size() % 4, 1u);

    Prediction p = hw_oracle.predict(frame, net::Iface::kPort0);
    ASSERT_EQ(p.outcome, Prediction::Outcome::kDeliverHost);
    ASSERT_EQ(p.matched_sids, (std::vector<uint32_t>{700}));

    size_t padded = (frame.size() + 3) & ~size_t(3);
    std::vector<uint8_t> record(padded + 4, 0xee);  // pad bytes arbitrary
    std::copy(frame.begin(), frame.end(), record.begin());
    record[padded + 0] = 700 & 0xff;
    record[padded + 1] = 700 >> 8;
    record[padded + 2] = 0;
    record[padded + 3] = 0;
    std::string why;
    EXPECT_TRUE(hw_oracle.check_output(p, frame, record, true, &why)) << why;

    // Wrong sid fails; truncated record fails.
    std::vector<uint8_t> wrong = record;
    wrong[padded] ^= 1;
    EXPECT_FALSE(hw_oracle.check_output(p, frame, wrong, true, &why));
    std::vector<uint8_t> shorter(record.begin(), record.end() - 4);
    EXPECT_FALSE(hw_oracle.check_output(p, frame, shorter, true, &why));

    // Software-reorder pipeline: pad computed over the hashed length,
    // hash stripped; a punt record (hash word ++ frame) is also legal.
    OracleConfig sw;
    sw.pipeline = Pipeline::kPigasusSwReorder;
    sw.lb_policy = lb::Policy::kHash;
    sw.rules = &rules;
    DataplaneOracle sw_oracle(sw);

    Prediction q = sw_oracle.predict(frame, net::Iface::kPort0);
    ASSERT_EQ(q.outcome, Prediction::Outcome::kDeliverHost);
    ASSERT_TRUE(q.may_punt_to_host);

    size_t sw_padded = ((frame.size() + 4 + 3) & ~size_t(3)) - 4;
    std::vector<uint8_t> sw_record(sw_padded + 4, 0xee);
    std::copy(frame.begin(), frame.end(), sw_record.begin());
    sw_record[sw_padded + 0] = 700 & 0xff;
    sw_record[sw_padded + 1] = 700 >> 8;
    sw_record[sw_padded + 2] = 0;
    sw_record[sw_padded + 3] = 0;
    EXPECT_TRUE(sw_oracle.check_output(q, frame, sw_record, true, &why)) << why;

    std::vector<uint8_t> punt(frame.size() + 4);
    punt[0] = uint8_t(q.lb_hash);
    punt[1] = uint8_t(q.lb_hash >> 8);
    punt[2] = uint8_t(q.lb_hash >> 16);
    punt[3] = uint8_t(q.lb_hash >> 24);
    std::copy(frame.begin(), frame.end(), punt.begin() + 4);
    EXPECT_TRUE(sw_oracle.check_output(q, frame, punt, true, &why)) << why;

    // Punt with a corrupted hash word fails.
    punt[0] ^= 0xff;
    EXPECT_FALSE(sw_oracle.check_output(q, frame, punt, true, &why));
}
