/// End-to-end integration tests: forwarder firmware on the full system.

#include <gtest/gtest.h>

#include "core/system.h"
#include "firmware/programs.h"
#include "net/headers.h"

namespace rosebud {
namespace {

net::PacketPtr
make_test_packet(uint32_t size, uint64_t id) {
    net::PacketBuilder b;
    b.ipv4(0x0a000001, 0x0a000002).udp(1000, 2000).frame_size(size);
    auto p = b.build();
    p->id = id;
    return p;
}

TEST(SystemForwarding, BootsAndConfiguresSlots) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(200);

    for (unsigned i = 0; i < sys.rpu_count(); ++i) {
        EXPECT_FALSE(sys.rpu(i).core_halted()) << "rpu " << i;
        EXPECT_FALSE(sys.rpu(i).core_faulted()) << "rpu " << i;
        EXPECT_EQ(sys.rpu(i).slot_config().count, 32u) << "rpu " << i;
        EXPECT_EQ(sys.lb().free_slots(uint8_t(i)), 32u) << "rpu " << i;
    }
}

TEST(SystemForwarding, ForwardsOnePacket) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(200);

    auto pkt = make_test_packet(128, 7);
    ASSERT_TRUE(sys.fabric().mac_rx(0, pkt));
    sys.run_cycles(2000);

    EXPECT_EQ(sys.sink(1).frames(), 1u);  // port 0 in -> port 1 out
    EXPECT_EQ(sys.sink(0).frames(), 0u);
}

TEST(SystemForwarding, ForwardedBytesAreIdentical) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(200);

    auto pkt = make_test_packet(256, 9);
    std::vector<uint8_t> original = pkt->data;

    net::PacketPtr got;
    sys.fabric().set_mac_tx_sink(1, [&](net::PacketPtr p) { got = p; });
    ASSERT_TRUE(sys.fabric().mac_rx(0, pkt));
    sys.run_cycles(2000);

    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->data, original);
    EXPECT_EQ(got->id, 9u);
}

TEST(SystemForwarding, ManyPacketsAllForwardedAndSlotsRecycled) {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(200);

    const unsigned kCount = 500;
    unsigned injected = 0;
    uint64_t next_id = 0;
    for (unsigned cycle = 0; injected < kCount && cycle < 200000; ++cycle) {
        if (cycle % 3 == 0 && injected < kCount) {
            if (sys.fabric().mac_rx(injected % 2, make_test_packet(200, next_id++))) {
                ++injected;
            }
        }
        sys.run_cycles(1);
    }
    sys.run_cycles(20000);

    EXPECT_EQ(injected, kCount);
    EXPECT_EQ(sys.sink(0).frames() + sys.sink(1).frames(), kCount);
    // All slots returned to the LB.
    for (unsigned i = 0; i < sys.rpu_count(); ++i) {
        EXPECT_EQ(sys.lb().free_slots(uint8_t(i)), 32u) << "rpu " << i;
        EXPECT_EQ(sys.rpu(i).occupancy(), 0u) << "rpu " << i;
    }
}

}  // namespace
}  // namespace rosebud
