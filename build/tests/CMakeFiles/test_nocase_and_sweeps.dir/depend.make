# Empty dependencies file for test_nocase_and_sweeps.
# This may be replaced when dependencies are built.
