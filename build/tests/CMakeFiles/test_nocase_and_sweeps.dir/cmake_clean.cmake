file(REMOVE_RECURSE
  "CMakeFiles/test_nocase_and_sweeps.dir/test_nocase_and_sweeps.cc.o"
  "CMakeFiles/test_nocase_and_sweeps.dir/test_nocase_and_sweeps.cc.o.d"
  "test_nocase_and_sweeps"
  "test_nocase_and_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nocase_and_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
