# Empty compiler generated dependencies file for test_lb_msg.
# This may be replaced when dependencies are built.
