file(REMOVE_RECURSE
  "CMakeFiles/test_lb_msg.dir/test_lb_msg.cc.o"
  "CMakeFiles/test_lb_msg.dir/test_lb_msg.cc.o.d"
  "test_lb_msg"
  "test_lb_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
