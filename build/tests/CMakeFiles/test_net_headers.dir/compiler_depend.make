# Empty compiler generated dependencies file for test_net_headers.
# This may be replaced when dependencies are built.
