file(REMOVE_RECURSE
  "CMakeFiles/test_net_headers.dir/test_net_headers.cc.o"
  "CMakeFiles/test_net_headers.dir/test_net_headers.cc.o.d"
  "test_net_headers"
  "test_net_headers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_headers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
