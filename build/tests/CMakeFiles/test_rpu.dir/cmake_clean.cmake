file(REMOVE_RECURSE
  "CMakeFiles/test_rpu.dir/test_rpu.cc.o"
  "CMakeFiles/test_rpu.dir/test_rpu.cc.o.d"
  "test_rpu"
  "test_rpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
