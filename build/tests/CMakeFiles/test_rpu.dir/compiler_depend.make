# Empty compiler generated dependencies file for test_rpu.
# This may be replaced when dependencies are built.
