# Empty dependencies file for test_net_tracegen.
# This may be replaced when dependencies are built.
