file(REMOVE_RECURSE
  "CMakeFiles/test_net_tracegen.dir/test_net_tracegen.cc.o"
  "CMakeFiles/test_net_tracegen.dir/test_net_tracegen.cc.o.d"
  "test_net_tracegen"
  "test_net_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
