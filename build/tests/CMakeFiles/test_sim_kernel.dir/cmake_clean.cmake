file(REMOVE_RECURSE
  "CMakeFiles/test_sim_kernel.dir/test_sim_kernel.cc.o"
  "CMakeFiles/test_sim_kernel.dir/test_sim_kernel.cc.o.d"
  "test_sim_kernel"
  "test_sim_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
