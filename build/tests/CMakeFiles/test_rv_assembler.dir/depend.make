# Empty dependencies file for test_rv_assembler.
# This may be replaced when dependencies are built.
