file(REMOVE_RECURSE
  "CMakeFiles/test_rv_assembler.dir/test_rv_assembler.cc.o"
  "CMakeFiles/test_rv_assembler.dir/test_rv_assembler.cc.o.d"
  "test_rv_assembler"
  "test_rv_assembler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rv_assembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
