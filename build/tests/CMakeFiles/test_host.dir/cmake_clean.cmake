file(REMOVE_RECURSE
  "CMakeFiles/test_host.dir/test_host.cc.o"
  "CMakeFiles/test_host.dir/test_host.cc.o.d"
  "test_host"
  "test_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
