# Empty compiler generated dependencies file for test_system_invariants.
# This may be replaced when dependencies are built.
