file(REMOVE_RECURSE
  "CMakeFiles/test_system_invariants.dir/test_system_invariants.cc.o"
  "CMakeFiles/test_system_invariants.dir/test_system_invariants.cc.o.d"
  "test_system_invariants"
  "test_system_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
