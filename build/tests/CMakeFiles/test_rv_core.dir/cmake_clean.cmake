file(REMOVE_RECURSE
  "CMakeFiles/test_rv_core.dir/test_rv_core.cc.o"
  "CMakeFiles/test_rv_core.dir/test_rv_core.cc.o.d"
  "test_rv_core"
  "test_rv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
