# Empty dependencies file for test_rv_core.
# This may be replaced when dependencies are built.
