file(REMOVE_RECURSE
  "CMakeFiles/test_firmware.dir/test_firmware.cc.o"
  "CMakeFiles/test_firmware.dir/test_firmware.cc.o.d"
  "test_firmware"
  "test_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
