file(REMOVE_RECURSE
  "CMakeFiles/test_resources.dir/test_resources.cc.o"
  "CMakeFiles/test_resources.dir/test_resources.cc.o.d"
  "test_resources"
  "test_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
