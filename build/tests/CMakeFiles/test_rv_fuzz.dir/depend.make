# Empty dependencies file for test_rv_fuzz.
# This may be replaced when dependencies are built.
