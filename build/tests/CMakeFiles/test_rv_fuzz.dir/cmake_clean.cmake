file(REMOVE_RECURSE
  "CMakeFiles/test_rv_fuzz.dir/test_rv_fuzz.cc.o"
  "CMakeFiles/test_rv_fuzz.dir/test_rv_fuzz.cc.o.d"
  "test_rv_fuzz"
  "test_rv_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rv_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
