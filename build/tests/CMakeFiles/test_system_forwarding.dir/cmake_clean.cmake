file(REMOVE_RECURSE
  "CMakeFiles/test_system_forwarding.dir/test_system_forwarding.cc.o"
  "CMakeFiles/test_system_forwarding.dir/test_system_forwarding.cc.o.d"
  "test_system_forwarding"
  "test_system_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
