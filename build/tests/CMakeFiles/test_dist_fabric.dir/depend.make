# Empty dependencies file for test_dist_fabric.
# This may be replaced when dependencies are built.
