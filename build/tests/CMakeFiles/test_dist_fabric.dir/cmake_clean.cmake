file(REMOVE_RECURSE
  "CMakeFiles/test_dist_fabric.dir/test_dist_fabric.cc.o"
  "CMakeFiles/test_dist_fabric.dir/test_dist_fabric.cc.o.d"
  "test_dist_fabric"
  "test_dist_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
