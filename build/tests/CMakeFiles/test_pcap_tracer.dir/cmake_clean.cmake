file(REMOVE_RECURSE
  "CMakeFiles/test_pcap_tracer.dir/test_pcap_tracer.cc.o"
  "CMakeFiles/test_pcap_tracer.dir/test_pcap_tracer.cc.o.d"
  "test_pcap_tracer"
  "test_pcap_tracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcap_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
