# Empty dependencies file for test_net_flow_rules.
# This may be replaced when dependencies are built.
