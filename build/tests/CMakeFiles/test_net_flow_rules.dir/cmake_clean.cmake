file(REMOVE_RECURSE
  "CMakeFiles/test_net_flow_rules.dir/test_net_flow_rules.cc.o"
  "CMakeFiles/test_net_flow_rules.dir/test_net_flow_rules.cc.o.d"
  "test_net_flow_rules"
  "test_net_flow_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_flow_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
