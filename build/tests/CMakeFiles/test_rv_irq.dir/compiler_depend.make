# Empty compiler generated dependencies file for test_rv_irq.
# This may be replaced when dependencies are built.
