file(REMOVE_RECURSE
  "CMakeFiles/test_rv_irq.dir/test_rv_irq.cc.o"
  "CMakeFiles/test_rv_irq.dir/test_rv_irq.cc.o.d"
  "test_rv_irq"
  "test_rv_irq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rv_irq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
