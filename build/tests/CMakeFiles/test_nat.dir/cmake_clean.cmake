file(REMOVE_RECURSE
  "CMakeFiles/test_nat.dir/test_nat.cc.o"
  "CMakeFiles/test_nat.dir/test_nat.cc.o.d"
  "test_nat"
  "test_nat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
