file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cycles.dir/bench_fig9_cycles.cc.o"
  "CMakeFiles/bench_fig9_cycles.dir/bench_fig9_cycles.cc.o.d"
  "bench_fig9_cycles"
  "bench_fig9_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
