# Empty dependencies file for bench_fig9_cycles.
# This may be replaced when dependencies are built.
