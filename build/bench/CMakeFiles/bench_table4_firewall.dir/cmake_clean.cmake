file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_firewall.dir/bench_table4_firewall.cc.o"
  "CMakeFiles/bench_table4_firewall.dir/bench_table4_firewall.cc.o.d"
  "bench_table4_firewall"
  "bench_table4_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
