# Empty dependencies file for bench_fig8_ips.
# This may be replaced when dependencies are built.
