file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ips.dir/bench_fig8_ips.cc.o"
  "CMakeFiles/bench_fig8_ips.dir/bench_fig8_ips.cc.o.d"
  "bench_fig8_ips"
  "bench_fig8_ips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
