# Empty dependencies file for bench_fig7c_latency.
# This may be replaced when dependencies are built.
