# Empty compiler generated dependencies file for bench_fig7_forwarding.
# This may be replaced when dependencies are built.
