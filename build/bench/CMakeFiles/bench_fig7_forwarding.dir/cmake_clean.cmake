file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_forwarding.dir/bench_fig7_forwarding.cc.o"
  "CMakeFiles/bench_fig7_forwarding.dir/bench_fig7_forwarding.cc.o.d"
  "bench_fig7_forwarding"
  "bench_fig7_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
