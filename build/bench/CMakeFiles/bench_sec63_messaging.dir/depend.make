# Empty dependencies file for bench_sec63_messaging.
# This may be replaced when dependencies are built.
