
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sec63_messaging.cc" "bench/CMakeFiles/bench_sec63_messaging.dir/bench_sec63_messaging.cc.o" "gcc" "bench/CMakeFiles/bench_sec63_messaging.dir/bench_sec63_messaging.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rosebud_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rosebud_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/rosebud_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/rosebud_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/rosebud_host.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/rosebud_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/rosebud_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/firmware/CMakeFiles/rosebud_firmware.dir/DependInfo.cmake"
  "/root/repo/build/src/rpu/CMakeFiles/rosebud_rpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rosebud_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/rv/CMakeFiles/rosebud_rv.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rosebud_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rosebud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
