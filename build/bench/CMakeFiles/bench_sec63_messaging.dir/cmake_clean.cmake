file(REMOVE_RECURSE
  "CMakeFiles/bench_sec63_messaging.dir/bench_sec63_messaging.cc.o"
  "CMakeFiles/bench_sec63_messaging.dir/bench_sec63_messaging.cc.o.d"
  "bench_sec63_messaging"
  "bench_sec63_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec63_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
