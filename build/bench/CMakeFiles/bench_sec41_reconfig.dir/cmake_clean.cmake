file(REMOVE_RECURSE
  "CMakeFiles/bench_sec41_reconfig.dir/bench_sec41_reconfig.cc.o"
  "CMakeFiles/bench_sec41_reconfig.dir/bench_sec41_reconfig.cc.o.d"
  "bench_sec41_reconfig"
  "bench_sec41_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec41_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
