# Empty compiler generated dependencies file for bench_sec41_reconfig.
# This may be replaced when dependencies are built.
