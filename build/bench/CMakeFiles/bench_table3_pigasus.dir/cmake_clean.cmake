file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_pigasus.dir/bench_table3_pigasus.cc.o"
  "CMakeFiles/bench_table3_pigasus.dir/bench_table3_pigasus.cc.o.d"
  "bench_table3_pigasus"
  "bench_table3_pigasus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_pigasus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
