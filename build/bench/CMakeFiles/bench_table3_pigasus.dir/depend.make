# Empty dependencies file for bench_table3_pigasus.
# This may be replaced when dependencies are built.
