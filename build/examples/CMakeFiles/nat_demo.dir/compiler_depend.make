# Empty compiler generated dependencies file for nat_demo.
# This may be replaced when dependencies are built.
