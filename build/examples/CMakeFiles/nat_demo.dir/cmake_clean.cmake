file(REMOVE_RECURSE
  "CMakeFiles/nat_demo.dir/nat_demo.cpp.o"
  "CMakeFiles/nat_demo.dir/nat_demo.cpp.o.d"
  "nat_demo"
  "nat_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
