# Empty dependencies file for nat_demo.
# This may be replaced when dependencies are built.
