file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant.dir/multi_tenant.cpp.o"
  "CMakeFiles/multi_tenant.dir/multi_tenant.cpp.o.d"
  "multi_tenant"
  "multi_tenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
