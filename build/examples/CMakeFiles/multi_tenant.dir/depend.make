# Empty dependencies file for multi_tenant.
# This may be replaced when dependencies are built.
