file(REMOVE_RECURSE
  "CMakeFiles/rosebud_cli.dir/rosebud_cli.cpp.o"
  "CMakeFiles/rosebud_cli.dir/rosebud_cli.cpp.o.d"
  "rosebud_cli"
  "rosebud_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
