# Empty dependencies file for rosebud_cli.
# This may be replaced when dependencies are built.
