# Empty dependencies file for chain_demo.
# This may be replaced when dependencies are built.
