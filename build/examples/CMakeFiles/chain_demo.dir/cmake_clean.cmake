file(REMOVE_RECURSE
  "CMakeFiles/chain_demo.dir/chain_demo.cpp.o"
  "CMakeFiles/chain_demo.dir/chain_demo.cpp.o.d"
  "chain_demo"
  "chain_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
