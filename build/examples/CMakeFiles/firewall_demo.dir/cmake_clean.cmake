file(REMOVE_RECURSE
  "CMakeFiles/firewall_demo.dir/firewall_demo.cpp.o"
  "CMakeFiles/firewall_demo.dir/firewall_demo.cpp.o.d"
  "firewall_demo"
  "firewall_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
