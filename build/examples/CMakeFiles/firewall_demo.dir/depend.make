# Empty dependencies file for firewall_demo.
# This may be replaced when dependencies are built.
