file(REMOVE_RECURSE
  "CMakeFiles/ids_demo.dir/ids_demo.cpp.o"
  "CMakeFiles/ids_demo.dir/ids_demo.cpp.o.d"
  "ids_demo"
  "ids_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
