# Empty compiler generated dependencies file for ids_demo.
# This may be replaced when dependencies are built.
