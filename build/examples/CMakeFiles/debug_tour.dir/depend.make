# Empty dependencies file for debug_tour.
# This may be replaced when dependencies are built.
