file(REMOVE_RECURSE
  "CMakeFiles/debug_tour.dir/debug_tour.cpp.o"
  "CMakeFiles/debug_tour.dir/debug_tour.cpp.o.d"
  "debug_tour"
  "debug_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
