file(REMOVE_RECURSE
  "CMakeFiles/live_reconfigure.dir/live_reconfigure.cpp.o"
  "CMakeFiles/live_reconfigure.dir/live_reconfigure.cpp.o.d"
  "live_reconfigure"
  "live_reconfigure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_reconfigure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
