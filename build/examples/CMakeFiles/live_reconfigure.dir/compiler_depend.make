# Empty compiler generated dependencies file for live_reconfigure.
# This may be replaced when dependencies are built.
