file(REMOVE_RECURSE
  "CMakeFiles/rosebud_net.dir/flow.cc.o"
  "CMakeFiles/rosebud_net.dir/flow.cc.o.d"
  "CMakeFiles/rosebud_net.dir/headers.cc.o"
  "CMakeFiles/rosebud_net.dir/headers.cc.o.d"
  "CMakeFiles/rosebud_net.dir/packet.cc.o"
  "CMakeFiles/rosebud_net.dir/packet.cc.o.d"
  "CMakeFiles/rosebud_net.dir/patmatch.cc.o"
  "CMakeFiles/rosebud_net.dir/patmatch.cc.o.d"
  "CMakeFiles/rosebud_net.dir/pcap.cc.o"
  "CMakeFiles/rosebud_net.dir/pcap.cc.o.d"
  "CMakeFiles/rosebud_net.dir/rules.cc.o"
  "CMakeFiles/rosebud_net.dir/rules.cc.o.d"
  "CMakeFiles/rosebud_net.dir/tracegen.cc.o"
  "CMakeFiles/rosebud_net.dir/tracegen.cc.o.d"
  "librosebud_net.a"
  "librosebud_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
