
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/flow.cc" "src/net/CMakeFiles/rosebud_net.dir/flow.cc.o" "gcc" "src/net/CMakeFiles/rosebud_net.dir/flow.cc.o.d"
  "/root/repo/src/net/headers.cc" "src/net/CMakeFiles/rosebud_net.dir/headers.cc.o" "gcc" "src/net/CMakeFiles/rosebud_net.dir/headers.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/rosebud_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/rosebud_net.dir/packet.cc.o.d"
  "/root/repo/src/net/patmatch.cc" "src/net/CMakeFiles/rosebud_net.dir/patmatch.cc.o" "gcc" "src/net/CMakeFiles/rosebud_net.dir/patmatch.cc.o.d"
  "/root/repo/src/net/pcap.cc" "src/net/CMakeFiles/rosebud_net.dir/pcap.cc.o" "gcc" "src/net/CMakeFiles/rosebud_net.dir/pcap.cc.o.d"
  "/root/repo/src/net/rules.cc" "src/net/CMakeFiles/rosebud_net.dir/rules.cc.o" "gcc" "src/net/CMakeFiles/rosebud_net.dir/rules.cc.o.d"
  "/root/repo/src/net/tracegen.cc" "src/net/CMakeFiles/rosebud_net.dir/tracegen.cc.o" "gcc" "src/net/CMakeFiles/rosebud_net.dir/tracegen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rosebud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
