# Empty dependencies file for rosebud_net.
# This may be replaced when dependencies are built.
