file(REMOVE_RECURSE
  "librosebud_net.a"
)
