file(REMOVE_RECURSE
  "CMakeFiles/rosebud_dist.dir/fabric.cc.o"
  "CMakeFiles/rosebud_dist.dir/fabric.cc.o.d"
  "CMakeFiles/rosebud_dist.dir/traffic.cc.o"
  "CMakeFiles/rosebud_dist.dir/traffic.cc.o.d"
  "librosebud_dist.a"
  "librosebud_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
