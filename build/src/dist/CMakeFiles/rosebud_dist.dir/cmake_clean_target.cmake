file(REMOVE_RECURSE
  "librosebud_dist.a"
)
