# Empty compiler generated dependencies file for rosebud_dist.
# This may be replaced when dependencies are built.
