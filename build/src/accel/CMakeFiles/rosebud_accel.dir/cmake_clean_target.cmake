file(REMOVE_RECURSE
  "librosebud_accel.a"
)
