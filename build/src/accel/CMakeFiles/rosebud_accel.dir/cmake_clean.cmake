file(REMOVE_RECURSE
  "CMakeFiles/rosebud_accel.dir/firewall.cc.o"
  "CMakeFiles/rosebud_accel.dir/firewall.cc.o.d"
  "CMakeFiles/rosebud_accel.dir/nat.cc.o"
  "CMakeFiles/rosebud_accel.dir/nat.cc.o.d"
  "CMakeFiles/rosebud_accel.dir/pigasus.cc.o"
  "CMakeFiles/rosebud_accel.dir/pigasus.cc.o.d"
  "librosebud_accel.a"
  "librosebud_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
