# Empty dependencies file for rosebud_accel.
# This may be replaced when dependencies are built.
