file(REMOVE_RECURSE
  "librosebud_host.a"
)
