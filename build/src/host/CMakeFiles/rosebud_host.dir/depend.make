# Empty dependencies file for rosebud_host.
# This may be replaced when dependencies are built.
