file(REMOVE_RECURSE
  "CMakeFiles/rosebud_host.dir/host.cc.o"
  "CMakeFiles/rosebud_host.dir/host.cc.o.d"
  "librosebud_host.a"
  "librosebud_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
