file(REMOVE_RECURSE
  "CMakeFiles/rosebud_msg.dir/broadcast.cc.o"
  "CMakeFiles/rosebud_msg.dir/broadcast.cc.o.d"
  "librosebud_msg.a"
  "librosebud_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
