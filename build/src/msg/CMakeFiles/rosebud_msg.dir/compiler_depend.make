# Empty compiler generated dependencies file for rosebud_msg.
# This may be replaced when dependencies are built.
