file(REMOVE_RECURSE
  "librosebud_msg.a"
)
