file(REMOVE_RECURSE
  "CMakeFiles/rosebud_core.dir/experiments.cc.o"
  "CMakeFiles/rosebud_core.dir/experiments.cc.o.d"
  "CMakeFiles/rosebud_core.dir/system.cc.o"
  "CMakeFiles/rosebud_core.dir/system.cc.o.d"
  "CMakeFiles/rosebud_core.dir/tracer.cc.o"
  "CMakeFiles/rosebud_core.dir/tracer.cc.o.d"
  "librosebud_core.a"
  "librosebud_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
