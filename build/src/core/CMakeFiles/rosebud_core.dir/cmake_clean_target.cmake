file(REMOVE_RECURSE
  "librosebud_core.a"
)
