# Empty dependencies file for rosebud_core.
# This may be replaced when dependencies are built.
