file(REMOVE_RECURSE
  "CMakeFiles/rosebud_baseline.dir/snort_model.cc.o"
  "CMakeFiles/rosebud_baseline.dir/snort_model.cc.o.d"
  "librosebud_baseline.a"
  "librosebud_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
