file(REMOVE_RECURSE
  "librosebud_baseline.a"
)
