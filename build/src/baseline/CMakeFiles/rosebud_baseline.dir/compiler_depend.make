# Empty compiler generated dependencies file for rosebud_baseline.
# This may be replaced when dependencies are built.
