file(REMOVE_RECURSE
  "librosebud_rpu.a"
)
