file(REMOVE_RECURSE
  "CMakeFiles/rosebud_rpu.dir/rpu.cc.o"
  "CMakeFiles/rosebud_rpu.dir/rpu.cc.o.d"
  "librosebud_rpu.a"
  "librosebud_rpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_rpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
