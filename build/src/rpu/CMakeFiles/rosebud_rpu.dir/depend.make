# Empty dependencies file for rosebud_rpu.
# This may be replaced when dependencies are built.
