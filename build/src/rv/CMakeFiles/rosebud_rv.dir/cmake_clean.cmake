file(REMOVE_RECURSE
  "CMakeFiles/rosebud_rv.dir/assembler.cc.o"
  "CMakeFiles/rosebud_rv.dir/assembler.cc.o.d"
  "CMakeFiles/rosebud_rv.dir/core.cc.o"
  "CMakeFiles/rosebud_rv.dir/core.cc.o.d"
  "CMakeFiles/rosebud_rv.dir/disasm.cc.o"
  "CMakeFiles/rosebud_rv.dir/disasm.cc.o.d"
  "librosebud_rv.a"
  "librosebud_rv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_rv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
