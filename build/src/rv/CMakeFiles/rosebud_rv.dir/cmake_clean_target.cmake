file(REMOVE_RECURSE
  "librosebud_rv.a"
)
