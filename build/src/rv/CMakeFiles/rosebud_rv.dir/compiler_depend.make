# Empty compiler generated dependencies file for rosebud_rv.
# This may be replaced when dependencies are built.
