
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rv/assembler.cc" "src/rv/CMakeFiles/rosebud_rv.dir/assembler.cc.o" "gcc" "src/rv/CMakeFiles/rosebud_rv.dir/assembler.cc.o.d"
  "/root/repo/src/rv/core.cc" "src/rv/CMakeFiles/rosebud_rv.dir/core.cc.o" "gcc" "src/rv/CMakeFiles/rosebud_rv.dir/core.cc.o.d"
  "/root/repo/src/rv/disasm.cc" "src/rv/CMakeFiles/rosebud_rv.dir/disasm.cc.o" "gcc" "src/rv/CMakeFiles/rosebud_rv.dir/disasm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rosebud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
