file(REMOVE_RECURSE
  "CMakeFiles/rosebud_mem.dir/memory.cc.o"
  "CMakeFiles/rosebud_mem.dir/memory.cc.o.d"
  "librosebud_mem.a"
  "librosebud_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
