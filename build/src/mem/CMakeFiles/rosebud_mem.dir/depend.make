# Empty dependencies file for rosebud_mem.
# This may be replaced when dependencies are built.
