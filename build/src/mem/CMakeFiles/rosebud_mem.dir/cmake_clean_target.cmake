file(REMOVE_RECURSE
  "librosebud_mem.a"
)
