file(REMOVE_RECURSE
  "CMakeFiles/rosebud_sim.dir/kernel.cc.o"
  "CMakeFiles/rosebud_sim.dir/kernel.cc.o.d"
  "CMakeFiles/rosebud_sim.dir/log.cc.o"
  "CMakeFiles/rosebud_sim.dir/log.cc.o.d"
  "CMakeFiles/rosebud_sim.dir/resources.cc.o"
  "CMakeFiles/rosebud_sim.dir/resources.cc.o.d"
  "CMakeFiles/rosebud_sim.dir/stats.cc.o"
  "CMakeFiles/rosebud_sim.dir/stats.cc.o.d"
  "librosebud_sim.a"
  "librosebud_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
