file(REMOVE_RECURSE
  "librosebud_sim.a"
)
