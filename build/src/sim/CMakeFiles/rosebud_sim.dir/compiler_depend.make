# Empty compiler generated dependencies file for rosebud_sim.
# This may be replaced when dependencies are built.
