# Empty dependencies file for rosebud_firmware.
# This may be replaced when dependencies are built.
