
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firmware/programs.cc" "src/firmware/CMakeFiles/rosebud_firmware.dir/programs.cc.o" "gcc" "src/firmware/CMakeFiles/rosebud_firmware.dir/programs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rv/CMakeFiles/rosebud_rv.dir/DependInfo.cmake"
  "/root/repo/build/src/rpu/CMakeFiles/rosebud_rpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rosebud_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rosebud_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rosebud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
