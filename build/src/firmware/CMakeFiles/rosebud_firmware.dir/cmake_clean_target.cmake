file(REMOVE_RECURSE
  "librosebud_firmware.a"
)
