file(REMOVE_RECURSE
  "CMakeFiles/rosebud_firmware.dir/programs.cc.o"
  "CMakeFiles/rosebud_firmware.dir/programs.cc.o.d"
  "librosebud_firmware.a"
  "librosebud_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
