file(REMOVE_RECURSE
  "librosebud_lb.a"
)
