# Empty dependencies file for rosebud_lb.
# This may be replaced when dependencies are built.
