file(REMOVE_RECURSE
  "CMakeFiles/rosebud_lb.dir/load_balancer.cc.o"
  "CMakeFiles/rosebud_lb.dir/load_balancer.cc.o.d"
  "librosebud_lb.a"
  "librosebud_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosebud_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
